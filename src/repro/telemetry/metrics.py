"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Prometheus-shaped but dependency-free. Two deliberate restrictions keep
exports deterministic and replay-comparable:

* **fixed bucket edges** — histogram buckets are frozen at creation (no
  adaptive/HDR resizing), so two same-seed runs bucket identical samples
  identically and their exports compare byte for byte;
* **sorted export order** — metrics serialize sorted by name then label
  set, never by insertion or dict order.

Label values are stringified on observation; a metric name must keep one
type and (for histograms) one bucket layout for the whole process.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import TelemetryError

#: Default histogram edges (seconds): 100 µs .. ~100 s in half-decade steps.
#: Chosen to straddle the simulated collectives (sub-millisecond chunk
#: sends up to multi-second degraded rounds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4,
    3.16e-4,
    1e-3,
    3.16e-3,
    1e-2,
    3.16e-2,
    1e-1,
    3.16e-1,
    1.0,
    3.16,
    10.0,
    31.6,
    100.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    """Prometheus float formatting: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base class: a named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text

    def _series(self) -> Iterable[Tuple[LabelKey, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def _series(self) -> Iterable[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge(Metric):
    """A point-in-time value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Replace the labelled series' value."""
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def _series(self) -> Iterable[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.total = 0.0


class Histogram(Metric):
    """Sample distribution over fixed, creation-time bucket edges."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ):
        super().__init__(name, help_text)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise TelemetryError(f"histogram {name}: needs at least one bucket edge")
        if any(later <= earlier for later, earlier in zip(edges[1:], edges)) or any(
            not math.isfinite(e) for e in edges
        ):
            raise TelemetryError(f"histogram {name}: bucket edges must be finite and increasing")
        self.buckets = edges
        self._values: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one sample into the labelled series."""
        key = _label_key(labels)
        series = self._values.get(key)
        if series is None:
            series = self._values[key] = _HistogramSeries(len(self.buckets))
        index = len(self.buckets)  # +Inf bucket
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        series.bucket_counts[index] += 1
        series.count += 1
        series.total += value

    def count(self, **labels: Any) -> int:
        """Number of samples in one labelled series."""
        series = self._values.get(_label_key(labels))
        return series.count if series else 0

    def _series(self) -> Iterable[Tuple[LabelKey, _HistogramSeries]]:
        return sorted(self._values.items())


class MetricsRegistry:
    """Get-or-create registry of metrics with deterministic export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type, **kwargs: Any) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {kind.kind}"
                )
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter."""
        return self._get(name, Counter, help_text=help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge, help_text=help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram.

        A second caller must pass the same bucket edges (or rely on the
        first registration) — silently merging layouts would corrupt the
        distribution.
        """
        metric = self._get(name, Histogram, help_text=help_text, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise TelemetryError(f"histogram {name!r} re-registered with different buckets")
        return metric

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able snapshot, deterministically ordered.

        Shape: ``{name: {"kind", "help", "series": [{"labels", ...}]}}``
        with histogram series carrying ``buckets`` (edges), ``counts``
        (per-bucket, last = +Inf), ``count`` and ``sum``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            series_list: List[Dict[str, Any]] = []
            for key, value in metric._series():
                labels = {k: v for k, v in key}
                if isinstance(metric, Histogram):
                    series_list.append(
                        {
                            "labels": labels,
                            "buckets": list(metric.buckets),
                            "counts": list(value.bucket_counts),
                            "count": value.count,
                            "sum": value.total,
                        }
                    )
                else:
                    series_list.append({"labels": labels, "value": value})
            out[name] = {
                "kind": metric.kind,
                "help": metric.help_text,
                "series": series_list,
            }
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, value in metric._series():
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for edge, bucket in zip(
                        [*metric.buckets, math.inf], value.bucket_counts
                    ):
                        cumulative += bucket
                        le = _label_text(key, f'le="{_fmt(edge)}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{_label_text(key)} {_fmt(value.total)}")
                    lines.append(f"{name}_count{_label_text(key)} {value.count}")
                else:
                    lines.append(f"{name}{_label_text(key)} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")
