"""Fault detection and recovery planning (Sec. IV-C.2).

After phase 1 completes, workers still not ready after ``T_fault`` —
five times the duration since the fastest worker became ready — are
declared faulty and excluded from the training group. Remaining workers
proceed with the current iteration's update, and the data loader is told
to redistribute shards so the global batch size stays constant (the
redistribution itself lives in :mod:`repro.training.data`).

For comparison, PyTorch Elastic needs a 15 s keep-alive timeout plus a
full job restart; AdapCC's path is graph reconstruction only (Fig. 19c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CoordinationError

#: The paper's multiplier on (now - fastest ready time).
FAULT_THRESHOLD_MULTIPLIER = 5.0
#: PyTorch Elastic's keep-alive window, for the comparison benches.
PYTORCH_ELASTIC_TIMEOUT_SECONDS = 15.0


@dataclass
class FaultReport:
    """Outcome of one fault-detection pass."""

    faulty_ranks: List[int]
    survivors: List[int]
    threshold_seconds: float
    detected_at: float

    @property
    def any_faults(self) -> bool:
        """Whether any worker was declared faulty."""
        return bool(self.faulty_ranks)


class FaultDetector:
    """Applies the T_fault rule to a set of (possibly absent) ready times."""

    def __init__(self, multiplier: float = FAULT_THRESHOLD_MULTIPLIER):
        if multiplier <= 0:
            raise CoordinationError("fault multiplier must be positive")
        self.multiplier = multiplier

    def threshold(self, fastest_ready: float, phase1_end: float) -> float:
        """T_fault: 5× the duration since the fastest worker became ready,
        counted from phase-1 completion."""
        if phase1_end < fastest_ready:
            raise CoordinationError("phase 1 cannot end before the fastest worker is ready")
        return self.multiplier * (phase1_end - fastest_ready)

    def detect(
        self,
        ready_times: Dict[int, Optional[float]],
        participants: Sequence[int],
        fastest_ready: float,
        phase1_end: float,
    ) -> FaultReport:
        """Classify workers as faulty or surviving.

        ``ready_times[rank]`` is the worker's (possibly future) ready time,
        or ``None`` for a worker that will never report (crash).
        """
        deadline = phase1_end + self.threshold(fastest_ready, phase1_end)
        faulty: List[int] = []
        survivors: List[int] = []
        for rank in participants:
            ready = ready_times.get(rank, None)
            if ready is None or ready > deadline:
                faulty.append(rank)
            else:
                survivors.append(rank)
        # ``participants`` is typically just the late workers; an empty
        # survivors list here only means every *straggler* is faulty — the
        # active workers continue. Whole-group exhaustion is checked by the
        # trainer.
        return FaultReport(
            faulty_ranks=faulty,
            survivors=survivors,
            threshold_seconds=deadline - phase1_end,
            detected_at=deadline,
        )
