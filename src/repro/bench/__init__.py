"""Measurement harness shared by the benchmarks in ``benchmarks/``."""

from repro.bench.harness import (
    BenchEnvironment,
    measure_algorithm_bandwidth,
    measure_training,
)
from repro.bench.report import (
    Series,
    Table,
    bench_dir,
    geometric_mean,
    write_bench_payload,
)

__all__ = [
    "BenchEnvironment",
    "Series",
    "Table",
    "bench_dir",
    "geometric_mean",
    "measure_algorithm_bandwidth",
    "measure_training",
    "write_bench_payload",
]
