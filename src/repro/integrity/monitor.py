"""The integrity monitor: detection ledger, suspicion, and conviction.

One :class:`IntegrityMonitor` per chaos run plugs into the data-plane tap
(:func:`~repro.integrity.channel.data_plane`) and keeps the whole
detect→localize→convict state machine:

* every delivered chunk is counted and (when checksums are on) verified
  against the sender's CRC32 stamp — a mismatch is a **checksum
  failure** that directly names the guilty link;
* after each collective, :meth:`check_collective` runs the cross-rank
  digest exchange — every output's linear digest must equal the sum of
  the contributors' input digests, and all outputs must agree;
* a digest-only detection (nothing named by hop checksums) triggers
  :meth:`run_localization`: seeded known-payload probes through the same
  tap, binary-searched by :class:`~repro.integrity.localize.
  BinarySearchLocalizer`;
* each localization that names a link feeds the **repeat-offender
  ledger** (:meth:`suspect`); reaching ``conviction_threshold`` convicts
  the link — the caller then quarantines it and re-synthesizes.

Every step lands in the :class:`IntegrityLog` (plain dicts, exportable
as JSONL and linted by ``python -m repro.analysis --integrity``) and in
the ``integrity_*`` metrics group of the telemetry registry. All record
timestamps are sim-clock floats and all randomness is seeded, so
same-seed runs produce byte-identical logs and exports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.integrity.channel import PROBE_TAG, data_plane
from repro.integrity.checksums import (
    DIGEST_RTOL,
    digests_match,
    payload_checksum,
    payload_digest,
)
from repro.integrity.localize import BinarySearchLocalizer, LocalizationResult
from repro.telemetry.core import hub as telemetry_hub

#: Integrity-log record types.
CONFIG_RECORD = "integrity-config"
CHECKSUM_RECORD = "checksum-mismatch"
DIGEST_RECORD = "digest-mismatch"
PROBE_ROUND_RECORD = "probe-round"
LOCALIZATION_RECORD = "localization"
SUSPICION_RECORD = "suspicion"
CONVICTION_RECORD = "conviction"
QUARANTINE_RECORD = "quarantine"
RESYNTHESIS_RECORD = "integrity-resynthesis"
RETRY_RECORD = "integrity-retry"
SUMMARY_RECORD = "integrity-summary"


class IntegrityError(ReproError):
    """Integrity-layer misuse: bad configuration or impossible requests."""


@dataclass(frozen=True)
class IntegrityConfig:
    """Tunables of the detection/localization/healing loop."""

    enabled: bool = True
    #: Per-hop CRC32 stamping/verification in the chunk pipeline.
    checksums: bool = True
    #: End-of-collective cross-rank digest exchange.
    digests: bool = True
    digest_rtol: float = DIGEST_RTOL
    #: Probes per candidate link inside one localization round.
    probe_repeats: int = 2
    #: Elements per probe payload.
    probe_length: int = 64
    #: Independent localizations naming a link before it is convicted.
    conviction_threshold: int = 2
    #: Times a corrupted iteration is re-run before giving up on it.
    max_retries: int = 3
    #: Whether a conviction masks the link's capacity in the topology.
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.probe_repeats < 1:
            raise IntegrityError("probe_repeats must be >= 1")
        if self.probe_length < 1:
            raise IntegrityError("probe_length must be >= 1")
        if self.conviction_threshold < 1:
            raise IntegrityError("conviction_threshold must be >= 1")
        if self.max_retries < 0:
            raise IntegrityError("max_retries must be >= 0")
        if self.digest_rtol < 0:
            raise IntegrityError("digest_rtol must be >= 0")

    def header(self) -> Dict[str, Any]:
        """The log's config record payload."""
        return {
            "type": CONFIG_RECORD,
            "checksums": self.checksums,
            "digests": self.digests,
            "digest_rtol": self.digest_rtol,
            "probe_repeats": self.probe_repeats,
            "probe_length": self.probe_length,
            "conviction_threshold": self.conviction_threshold,
            "max_retries": self.max_retries,
            "quarantine": self.quarantine,
        }


class IntegrityLog:
    """Append-only record list with deterministic JSONL export."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self.records.append(record)
        return record

    def of_type(self, record_type: str) -> List[Dict[str, Any]]:
        """All records of one type, in emission order."""
        return [r for r in self.records if r.get("type") == record_type]

    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per line (byte-stable per seed)."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.records
        ) + ("\n" if self.records else "")

    def __len__(self) -> int:
        return len(self.records)


def strategy_link_names(strategy) -> List[str]:
    """Every link a strategy's flows cross, both directions, sorted.

    The reduce stage walks the flow paths forward; an AllReduce's
    broadcast stage walks them backward — so a digest-only corruption
    verdict implicates each hop in both directions.
    """
    links = set()
    for sub in strategy.subcollectives:
        for flow in sub.flows:
            for i, j in flow.edges:
                links.add(f"{i}->{j}")
                links.add(f"{j}->{i}")
    return sorted(links)


class IntegrityMonitor:
    """Detection state machine over the data-plane tap (see module doc)."""

    def __init__(
        self,
        config: Optional[IntegrityConfig] = None,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or IntegrityConfig()
        self.seed = seed
        self.clock = clock or (lambda: 0.0)
        self.log = IntegrityLog()
        self.log.append(self.config.header())
        self.iteration = 0
        #: Pipeline chunks routed through the tap / verified against a stamp.
        self.units_seen = 0
        self.units_verified = 0
        #: Hop-checksum failures, in detection order (probe traffic excluded).
        self.hop_failures: List[Dict[str, Any]] = []
        #: Digest-exchange failures, in detection order.
        self.digest_failures: List[Dict[str, Any]] = []
        #: link -> number of localizations that named it.
        self.suspicion: Dict[str, int] = {}
        #: Links convicted by the repeat-offender ledger, in order.
        self.convicted: List[str] = []
        self.localizer = BinarySearchLocalizer(repeats=self.config.probe_repeats)
        self.probe_rounds_total = 0
        self.probes_total = 0
        self._probe_counter = 0

    # -- tap callbacks ---------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Stamp subsequent records with the running iteration."""
        self.iteration = iteration

    def stamp(self, payload: np.ndarray) -> Optional[int]:
        """The sender-side checksum stamp (``None`` with checksums off)."""
        if not self.config.checksums:
            return None
        return payload_checksum(payload)

    def observe_delivery(
        self,
        link: str,
        chunk: int,
        stamp: Optional[int],
        wire: np.ndarray,
        *,
        tag: str = "",
        now: float = 0.0,
    ) -> None:
        """Receive-side verification of one delivered chunk."""
        if tag.startswith(PROBE_TAG):
            # Probe traffic verifies end-to-end in the localizer; keep it
            # out of the pipeline coverage and failure ledgers.
            return
        self.units_seen += 1
        if stamp is None:
            return
        self.units_verified += 1
        if payload_checksum(wire) == stamp:
            return
        failure = {
            "type": CHECKSUM_RECORD,
            "time": now,
            "iteration": self.iteration,
            "link": link,
            "chunk": chunk,
            "tag": tag,
        }
        self.hop_failures.append(failure)
        self.log.append(dict(failure))
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                CHECKSUM_RECORD, now, category="integrity", track="integrity",
                link=link, chunk=chunk, tag=tag, iteration=self.iteration,
            )
            telemetry.metrics.counter(
                "integrity_checksum_failures_total",
                "per-hop CRC32 verification failures",
            ).inc(link=link)

    # -- digest exchange -------------------------------------------------------

    def check_collective(
        self,
        input_digests: Dict[int, float],
        outputs: Dict[int, np.ndarray],
        *,
        site: str = "runner",
        now: float = 0.0,
    ) -> List[Dict[str, Any]]:
        """The end-of-collective cross-rank digest exchange.

        ``input_digests`` carries every contributor's linear input digest;
        each rank's output digest must equal their sum (linearity of the
        reduction) and all outputs must agree with each other. Returns
        the mismatch records appended for this collective.
        """
        if not self.config.digests or not outputs:
            return []
        expected = float(sum(input_digests[rank] for rank in sorted(input_digests)))
        mismatches: List[Dict[str, Any]] = []
        for rank in sorted(outputs):
            observed = payload_digest(outputs[rank])
            if digests_match(expected, observed, self.config.digest_rtol):
                continue
            record = {
                "type": DIGEST_RECORD,
                "time": now,
                "iteration": self.iteration,
                "rank": rank,
                "site": site,
                "expected": expected,
                "observed": observed,
            }
            mismatches.append(record)
            self.digest_failures.append(record)
            self.log.append(dict(record))
            telemetry = telemetry_hub()
            if telemetry.enabled:
                telemetry.instant(
                    DIGEST_RECORD, now, category="integrity", track="integrity",
                    rank=rank, site=site, iteration=self.iteration,
                )
                telemetry.metrics.counter(
                    "integrity_digest_mismatches_total",
                    "end-of-collective digest-exchange failures",
                ).inc(site=site)
        return mismatches

    # -- localization ----------------------------------------------------------

    def _probe_payload(self) -> np.ndarray:
        """A fresh seeded probe payload (deterministic per probe index)."""
        self._probe_counter += 1
        rng = np.random.default_rng((self.seed, 0x1F, self._probe_counter))
        return rng.integers(1, 64, self.config.probe_length).astype(np.float64)

    def run_localization(self, candidates: Sequence[str]) -> LocalizationResult:
        """Binary-search the implicated ``candidates`` with live probes.

        Probes are real deliveries through the data-plane tap (tagged
        :data:`~repro.integrity.channel.PROBE_TAG`), so they are subject
        to the same corruption schedule as the traffic they stand in for;
        a probe is *dirty* when its payload comes back bitwise-changed.
        """
        plane = data_plane()

        def probe(link: str, round_index: int, repeat: int) -> bool:
            sent = self._probe_payload()
            delivered = plane.deliver(
                link,
                repeat,
                sent,
                tag=f"{PROBE_TAG}:r{round_index}",
                now=self.clock(),
            )
            return not np.array_equal(delivered, sent)

        result = self.localizer.localize(candidates, probe)
        self.probe_rounds_total += result.rounds
        self.probes_total += result.probes
        now = self.clock()
        for round_index, (batch, dirty) in enumerate(result.history, start=1):
            self.log.append(
                {
                    "type": PROBE_ROUND_RECORD,
                    "time": now,
                    "iteration": self.iteration,
                    "round": round_index,
                    "probed_links": list(batch),
                    "dirty_links": list(dirty),
                }
            )
        self.log.append(
            {
                "type": LOCALIZATION_RECORD,
                "time": now,
                "iteration": self.iteration,
                "candidates": int(result.candidates),
                "rounds": int(result.rounds),
                "probes": int(result.probes),
                "link": result.link,
                "within_bound": result.within_bound,
            }
        )
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.metrics.counter(
                "integrity_probe_rounds_total",
                "localization probe rounds executed",
            ).inc(result.rounds)
            telemetry.metrics.counter(
                "integrity_probes_total", "localization probes issued"
            ).inc(result.probes)
        return result

    # -- repeat-offender ledger ------------------------------------------------

    def suspect(self, link: str, evidence: str, *, now: float = 0.0) -> bool:
        """Count one localization/checksum verdict against ``link``.

        Returns ``True`` when this suspicion crosses the conviction
        threshold (once per link — a convicted link is not re-convicted).
        """
        self.suspicion[link] = self.suspicion.get(link, 0) + 1
        count = self.suspicion[link]
        self.log.append(
            {
                "type": SUSPICION_RECORD,
                "time": now,
                "iteration": self.iteration,
                "link": link,
                "count": count,
                "evidence": evidence,
            }
        )
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.metrics.gauge(
                "integrity_suspicion", "repeat-offender suspicion per link"
            ).set(count, link=link)
        if link in self.convicted or count < self.config.conviction_threshold:
            return False
        self.convicted.append(link)
        self.log.append(
            {
                "type": CONVICTION_RECORD,
                "time": now,
                "iteration": self.iteration,
                "link": link,
                "suspicion": count,
            }
        )
        if telemetry.enabled:
            telemetry.instant(
                CONVICTION_RECORD, now, category="integrity", track="integrity",
                link=link, suspicion=count, iteration=self.iteration,
            )
            telemetry.metrics.counter(
                "integrity_convictions_total", "links convicted of corruption"
            ).inc(link=link)
        return True

    # -- healing bookkeeping (called by the runner) ----------------------------

    def record_quarantine(self, link: str, *, now: float = 0.0) -> None:
        """Log one capacity-masking quarantine."""
        self.log.append(
            {
                "type": QUARANTINE_RECORD,
                "time": now,
                "iteration": self.iteration,
                "link": link,
            }
        )
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                QUARANTINE_RECORD, now, category="integrity", track="integrity",
                link=link, iteration=self.iteration,
            )
            telemetry.metrics.counter(
                "integrity_quarantines_total", "links quarantined in the topology"
            ).inc(link=link)

    def record_resynthesis(self, link: str, *, now: float = 0.0) -> None:
        """Log the two-phase re-synthesis a quarantine drove."""
        self.log.append(
            {
                "type": RESYNTHESIS_RECORD,
                "time": now,
                "iteration": self.iteration,
                "link": link,
            }
        )

    def record_retry(self, attempt: int, *, now: float = 0.0) -> None:
        """Log one corrupted-iteration retry."""
        self.log.append(
            {
                "type": RETRY_RECORD,
                "time": now,
                "iteration": self.iteration,
                "attempt": attempt,
            }
        )
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.metrics.counter(
                "integrity_retries_total", "corrupted iterations re-executed"
            ).inc()

    def finish(self, *, now: float = 0.0) -> Dict[str, Any]:
        """Append and return the summary record (checksum coverage etc.)."""
        return self.log.append(
            {
                "type": SUMMARY_RECORD,
                "time": now,
                "units_seen": self.units_seen,
                "units_verified": self.units_verified,
                "hop_failures": len(self.hop_failures),
                "digest_failures": len(self.digest_failures),
                "probe_rounds": self.probe_rounds_total,
                "probes": self.probes_total,
                "suspicion": {k: self.suspicion[k] for k in sorted(self.suspicion)},
                "convicted": list(self.convicted),
            }
        )
