"""Baseline communication backends the paper compares against (Sec. VI-B).

Each backend produces :class:`repro.synthesis.strategy.Strategy` objects
executed on the *same* simulator and executor as AdapCC, so comparisons
isolate strategy quality — exactly what the paper's evaluation measures.
The models encode each system's documented behaviour and the handicaps the
paper observes (single inter-server channel, empirical bandwidth tables,
fixed chunk sizes, unpipelined stages); see each module's docstring.
"""

from repro.baselines.common import Backend, make_backend, available_backends
from repro.baselines.adapcc_backend import AdapCCBackend
from repro.baselines.nccl import NcclBackend
from repro.baselines.msccl import MscclBackend
from repro.baselines.blink import BlinkBackend

__all__ = [
    "AdapCCBackend",
    "Backend",
    "BlinkBackend",
    "MscclBackend",
    "NcclBackend",
    "available_backends",
    "make_backend",
]
