"""Edge-case tests across modules (paths thinner-covered elsewhere)."""

import numpy as np
import pytest

from repro.errors import SimulationError, SynthesisError
from repro.hardware import Cluster, GPU, make_homo_cluster
from repro.hardware.presets import A100_GPU
from repro.simulation import Simulator
from repro.simulation.primitives import AnyOf, first_value
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.synthesis.chunking import chunk_candidates
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


class TestSimulationEdges:
    def test_first_value_unpacks(self):
        assert first_value((2, "payload")) == "payload"

    def test_any_of_empty_succeeds_immediately(self):
        sim = Simulator()
        event = AnyOf(sim, [])
        sim.run()
        assert event.processed
        assert event.value == (None, None)

    def test_any_of_propagates_failure(self):
        sim = Simulator()
        bad = sim.event()
        any_event = AnyOf(sim, [bad])
        caught = []

        def waiter(sim):
            try:
                yield any_event
            except ValueError:
                caught.append(True)

        sim.process(waiter(sim))
        bad.fail(ValueError("boom"))
        sim.run()
        assert caught == [True]

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_step_on_empty_queue_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)


class TestHardwareEdges:
    def test_gpu_display_name(self):
        gpu = GPU(A100_GPU, rank=5, instance_id=1, local_index=1)
        assert gpu.name == "i1g1"

    def test_pcie_bus_lookup_missing_switch(self):
        from repro.errors import TopologyError

        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=1))
        with pytest.raises(TopologyError):
            cluster.pcie_bus(0, 99)


class TestChunkCandidates:
    def test_small_partition_single_candidate(self):
        candidates = chunk_candidates(1000.0)
        assert candidates == [1000.0]

    def test_grid_is_monotone_and_capped(self):
        candidates = chunk_candidates(100e6)
        assert candidates == sorted(candidates)
        assert candidates[-1] == 100e6

    def test_invalid_inputs(self):
        with pytest.raises(SynthesisError):
            chunk_candidates(0)
        with pytest.raises(SynthesisError):
            chunk_candidates(1e6, min_chunk=10, max_chunk=5)


class TestExecutorKernelToggle:
    def test_kernel_disabled_is_faster(self):
        """kernel_enabled=False removes the aggregation kernel time."""
        from repro.runtime.executor import ChunkPipeline, MODE_MERGE
        from repro.synthesis.strategy import Flow

        def run(kernel_enabled):
            sim = Simulator()
            cluster = Cluster(sim, make_homo_cluster(num_servers=1))
            topo = LogicalTopology.from_cluster(cluster)
            flows = [
                (0, Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)])),
                (1, Flow(gpu_node(2), gpu_node(0), [gpu_node(2), gpu_node(0)])),
            ]
            payloads = {i: [np.ones(4)] * 8 for i in range(2)}

            def source(flow_idx, k):
                return sim.timeout(0.0), (lambda: payloads[flow_idx][k])

            pipeline = ChunkPipeline(
                topo,
                flows,
                num_chunks=8,
                chunk_bytes=[1e6] * 8,
                chunk_source=source,
                mode=MODE_MERGE,
                aggregates_at=lambda n: n == gpu_node(0),
                kernel_enabled=kernel_enabled,
            )
            sim.run_until_complete(pipeline.start())
            return sim.now

        assert run(False) < run(True)


class TestNetworkxExport:
    def test_nominal_vs_estimate_export(self):
        from repro.network.cost_model import AlphaBeta

        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        topo = LogicalTopology.from_cluster(cluster)
        topo.set_estimate(nic_node(0), nic_node(1), AlphaBeta(1e-5, 1e-9))
        with_est = topo.to_networkx(use_estimates=True)
        without = topo.to_networkx(use_estimates=False)
        assert with_est.get_edge_data(nic_node(0), nic_node(1))["bandwidth"] == pytest.approx(1e9)
        assert without.get_edge_data(nic_node(0), nic_node(1))["bandwidth"] > 1e9


class TestSynthesizerScreeningEquivalence:
    def test_screening_matches_exhaustive_quality(self):
        """The two-stage search must land within a few percent of the
        exhaustive family x chunk product."""
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=4))
        topo = LogicalTopology.from_cluster(cluster)
        fast = Synthesizer(topo, SynthesizerConfig(screening=True)).synthesize(
            Primitive.ALLREDUCE, 64e6, range(16)
        )
        exhaustive = Synthesizer(topo, SynthesizerConfig(screening=False)).synthesize(
            Primitive.ALLREDUCE, 64e6, range(16)
        )
        assert fast.predicted_time <= 1.10 * exhaustive.predicted_time
