"""Two-phase (prepare/commit) strategy transitions.

Installing a re-synthesized strategy after an eviction or rejoin used to
be a fiat: the coordinator swapped plans and assumed every rank followed.
A coordinator crash in the middle of that swap leaves ranks on *mixed*
plans — some executing the new routing graph, some the old — which is
exactly the state the bit-identical aggregation invariant cannot survive.

The transition protocol makes the swap transactional:

1. **prepare** — the coordinator journals the proposed membership, then
   asks every reachable live worker to ack it *under the current epoch*
   (stale-epoch acks are fenced and do not count);
2. **commit** — once a majority of the proposed members have acked, the
   commit record is journaled and the strategy becomes the one committed
   plan every rank executes;
3. **rollback** — a coordinator crash between prepare and commit leaves a
   dangling prepare in the journal. The next coordinator's replay finds
   it and journals a rollback: the group stays on the last *committed*
   strategy, and the new coordinator re-runs prepare/commit from scratch
   under its own epoch.

The ``--recovery`` lint pass checks the journal side of this contract:
every commit has a same-epoch prepare with a quorum of acks, and every
rollback refers to a prepare that never committed.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import RecoveryError
from repro.recovery.lease import EpochFence
from repro.recovery.log import EventLog
from repro.telemetry.core import hub as telemetry_hub


class TransitionState(Enum):
    """Lifecycle of one strategy transition."""

    IDLE = "idle"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"


#: All states, in lifecycle order (exported for tests and docs).
TRANSITION_STATES = tuple(TransitionState)


def quorum_size(members: Sequence[int]) -> int:
    """Majority of the proposed membership (floor(n/2) + 1)."""
    return len(members) // 2 + 1


class StrategyTransition:
    """Drives prepare/commit/rollback against one journal."""

    def __init__(self, log: EventLog, fence: EpochFence):
        self.log = log
        self.fence = fence
        self.state = TransitionState.IDLE
        self._next_transition = 0
        self._prepared_id: Optional[int] = None
        self._prepared_members: Tuple[int, ...] = ()
        self._prepared_acks: Tuple[int, ...] = ()
        self.commits = 0
        self.rollbacks = 0

    def prepare(
        self,
        epoch: int,
        coordinator: int,
        now: float,
        members: Sequence[int],
        ack_epochs: Iterable[Tuple[int, int]],
    ) -> int:
        """Phase 1: journal the proposal and collect epoch-checked acks.

        ``ack_epochs`` yields ``(rank, epoch_the_rank_last_saw)`` pairs
        for the workers the coordinator could reach; an ack composed under
        a stale epoch is fenced rather than counted.
        """
        if self.state is TransitionState.PREPARED:
            raise RecoveryError("a transition is already prepared; commit or roll back")
        transition = self._next_transition
        self._next_transition += 1
        proposed = tuple(sorted(members))
        self.log.append(
            epoch,
            coordinator,
            "strategy-prepare",
            now,
            transition=transition,
            members=proposed,
        )
        acks = []
        for rank, seen_epoch in ack_epochs:
            if not self.fence.admit(seen_epoch, epoch, now, "prepare-ack", sender=rank):
                continue
            acks.append(rank)
            self.log.append(
                epoch,
                coordinator,
                "prepare-ack",
                now,
                transition=transition,
                rank=rank,
            )
        self.state = TransitionState.PREPARED
        self._prepared_id = transition
        self._prepared_members = proposed
        self._prepared_acks = tuple(sorted(acks))
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "strategy-prepare",
                now,
                category="recovery",
                track="recovery",
                transition=transition,
                epoch=epoch,
                members=list(proposed),
                acks=list(self._prepared_acks),
            )
        return transition

    def commit(self, epoch: int, coordinator: int, now: float) -> Tuple[int, ...]:
        """Phase 2: journal the commit; requires a quorum of acks."""
        if self.state is not TransitionState.PREPARED or self._prepared_id is None:
            raise RecoveryError("commit without a prepared transition")
        needed = quorum_size(self._prepared_members)
        if len(self._prepared_acks) < needed:
            raise RecoveryError(
                f"transition {self._prepared_id}: {len(self._prepared_acks)} acks "
                f"< quorum {needed} of {len(self._prepared_members)} members"
            )
        self.log.append(
            epoch,
            coordinator,
            "strategy-commit",
            now,
            transition=self._prepared_id,
            members=self._prepared_members,
            acks=self._prepared_acks,
        )
        committed = self._prepared_members
        self.state = TransitionState.COMMITTED
        self.commits += 1
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "strategy-commit",
                now,
                category="recovery",
                track="recovery",
                transition=self._prepared_id,
                epoch=epoch,
                members=list(committed),
            )
            telemetry.metrics.counter(
                "recovery_transitions_total", "two-phase strategy transitions"
            ).inc(outcome="committed")
        self._prepared_id = None
        self._prepared_acks = ()
        return committed

    def rollback(
        self,
        epoch: int,
        coordinator: int,
        now: float,
        transition: Optional[int] = None,
        reason: str = "coordinator-crash",
    ) -> None:
        """Abandon a prepared (or replay-recovered dangling) transition.

        ``transition`` defaults to the locally prepared one; a newly
        elected coordinator passes the dangling id its replay surfaced.
        """
        if transition is None:
            transition = self._prepared_id
        if transition is None:
            raise RecoveryError("rollback without a prepared transition")
        self.log.append(
            epoch,
            coordinator,
            "strategy-rollback",
            now,
            transition=transition,
            reason=reason,
        )
        self.state = TransitionState.ROLLED_BACK
        self.rollbacks += 1
        self._prepared_id = None
        self._prepared_acks = ()
        # A rolled-back id is spent: replays must never reuse it.
        self._next_transition = max(self._next_transition, transition + 1)
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "strategy-rollback",
                now,
                category="recovery",
                track="recovery",
                transition=transition,
                epoch=epoch,
                reason=reason,
            )
            telemetry.metrics.counter(
                "recovery_rollbacks_total",
                "prepared strategy transitions abandoned",
            ).inc(reason=reason)
