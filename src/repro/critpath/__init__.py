"""Critical-path tracing and bottleneck attribution over telemetry runs.

Three surfaces:

* :func:`analyze_run` / :func:`analyze_spans` — the engine: join exported
  chunk spans into an execution DAG (strategy-derived when a
  :class:`~repro.synthesis.strategy.Strategy` is given, inferred
  otherwise), walk the critical path, attribute time to links, ranks,
  and stages with slack analysis;
* :class:`CritpathConsumer` — streaming attribution on the live
  :class:`~repro.telemetry.core.TelemetryHub`, feeding the observe
  watchdog's targeted re-probes;
* ``python -m repro.critpath`` — deterministic JSON/text reports from an
  exported JSONL run (byte-identical across same-seed runs).
"""

from repro.critpath.consumer import CritpathConsumer
from repro.critpath.engine import (
    REPORT_KIND,
    REPORT_SCHEMA,
    ChunkSpan,
    analyze_run,
    analyze_spans,
    extract_chunk_spans,
    extract_readiness,
    render_report,
    report_to_json,
)

__all__ = [
    "REPORT_KIND",
    "REPORT_SCHEMA",
    "ChunkSpan",
    "CritpathConsumer",
    "analyze_run",
    "analyze_spans",
    "extract_chunk_spans",
    "extract_readiness",
    "render_report",
    "report_to_json",
]
