"""Tests for routing families and flow construction."""

import pytest

from repro.hardware import Cluster, make_hetero_cluster, make_homo_cluster
from repro.network.cost_model import AlphaBeta
from repro.simulation import Simulator
from repro.synthesis.routing import (
    TREE_FAMILIES,
    alltoall_flows,
    broadcast_flows,
    flat_star,
    gpu_pair_bandwidth,
    hierarchical_chain,
    hierarchical_star,
    hierarchical_tree,
    hop_path,
    reduce_flows,
    tree_flow_paths,
    tree_interior_ranks,
    widest_tree,
)
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


@pytest.fixture
def hetero():
    sim = Simulator()
    cluster = Cluster(sim, make_hetero_cluster())  # 2 A100 + 2 V100 servers
    return LogicalTopology.from_cluster(cluster)


@pytest.fixture
def homo():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    return LogicalTopology.from_cluster(cluster)


def check_tree(tree, participants, root):
    """Every participant reaches the root; no cycles."""
    assert tree[root] == root
    for rank in participants:
        seen = set()
        current = rank
        while current != root:
            assert current not in seen
            seen.add(current)
            current = tree[current]


class TestHopPath:
    def test_same_instance_direct(self, homo):
        assert hop_path(homo, 0, 1) == [gpu_node(0), gpu_node(1)]

    def test_cross_instance_via_nics(self, homo):
        assert hop_path(homo, 0, 4) == [
            gpu_node(0),
            nic_node(0),
            nic_node(1),
            gpu_node(4),
        ]


class TestFamilies:
    @pytest.mark.parametrize("family_name", sorted(TREE_FAMILIES))
    def test_all_families_produce_valid_trees(self, hetero, family_name):
        participants = list(range(16))
        tree = TREE_FAMILIES[family_name](hetero, participants, root=0)
        check_tree(tree, participants, 0)
        assert set(tree) == set(participants)

    @pytest.mark.parametrize("family_name", sorted(TREE_FAMILIES))
    def test_families_respect_nonzero_root(self, hetero, family_name):
        participants = list(range(16))
        tree = TREE_FAMILIES[family_name](hetero, participants, root=9)
        check_tree(tree, participants, 9)

    def test_flat_star_all_point_to_root(self, homo):
        tree = flat_star(homo, list(range(8)), root=3)
        assert all(parent == 3 for rank, parent in tree.items() if rank != 3)

    def test_hierarchical_tree_weak_nics_are_leaves(self, hetero):
        """V100 servers (50 Gbps) must not forward other instances' traffic."""
        participants = list(range(16))
        tree = hierarchical_tree(hetero, participants, root=0)
        v100_ranks = set(range(8, 16))
        leaders_with_children = {
            parent for rank, parent in tree.items() if rank != parent and parent in v100_ranks
        }
        # V100 leaders may aggregate their own instance's GPUs but must not
        # parent another instance's leader.
        for rank, parent in tree.items():
            if parent in v100_ranks and rank != parent:
                # child must be on the same (V100) instance
                assert rank in v100_ranks

    def test_hierarchical_chain_weakest_at_far_end(self, hetero):
        participants = list(range(16))
        tree = hierarchical_chain(hetero, participants, root=0)
        # Walk depth of each leader: V100 leaders must be deeper than A100's.
        def depth(rank):
            d, current = 0, rank
            while tree[current] != current:
                current = tree[current]
                d += 1
            return d

        a100_leader_depth = depth(4)  # instance 1 leader
        v100_leader_depths = [depth(8), depth(12)]
        assert all(d >= a100_leader_depth for d in v100_leader_depths)

    def test_rotation_changes_leaders(self, homo):
        t0 = hierarchical_star(homo, list(range(8)), root=0, rotation=0)
        t1 = hierarchical_star(homo, list(range(8)), root=0, rotation=1)
        assert t0 != t1

    def test_widest_tree_prefers_nvlink(self, homo):
        tree = widest_tree(homo, list(range(8)), root=0)
        # Instance-0 GPUs must attach within instance 0 (NVLink >> network).
        for rank in (1, 2, 3):
            assert tree[rank] in (0, 1, 2, 3)

    def test_widest_tree_adapts_to_estimates(self, hetero):
        """Degrading a profiled link steers the widest tree away from it."""
        participants = [0, 4]
        before = widest_tree(hetero, participants, root=0)
        assert before[4] == 0
        # Degrade instance1->instance0 so badly that... rank 4 still must
        # reach rank 0 somehow; check bandwidth lookup reacts instead.
        bw_before = gpu_pair_bandwidth(hetero, 4, 0)
        hetero.set_estimate(nic_node(1), nic_node(0), AlphaBeta(1e-5, 1e-8))
        bw_after = gpu_pair_bandwidth(hetero, 4, 0)
        assert bw_after < bw_before

    def test_subset_participation(self, hetero):
        """Trees over an arbitrary subset of ranks (relay scenarios)."""
        participants = [0, 2, 5, 9, 13]
        for family_name, family in TREE_FAMILIES.items():
            tree = family(hetero, participants, root=5)
            check_tree(tree, participants, 5)
            assert set(tree) == set(participants)


class TestFlows:
    def test_reduce_flows_one_per_nonroot(self, homo):
        tree = hierarchical_star(homo, list(range(8)), root=0)
        flows = reduce_flows(homo, tree, 0)
        assert len(flows) == 7
        assert all(f.dst == gpu_node(0) for f in flows)

    def test_broadcast_flows_are_reversed(self, homo):
        tree = hierarchical_star(homo, list(range(8)), root=0)
        reduce_paths = {f.src: f.path for f in reduce_flows(homo, tree, 0)}
        for flow in broadcast_flows(homo, tree, 0):
            assert flow.src == gpu_node(0)
            assert flow.path == list(reversed(reduce_paths[flow.dst]))

    def test_flow_paths_traverse_existing_edges(self, hetero):
        tree = hierarchical_tree(hetero, list(range(16)), root=0)
        for flow in reduce_flows(hetero, tree, 0):
            hetero.path_edges(flow.path)  # raises if any edge is missing

    def test_interior_ranks(self, homo):
        tree = {0: 0, 1: 0, 2: 1, 3: 1}
        assert tree_interior_ranks(tree, 0) == [0, 1]

    def test_tree_paths_reject_cycle(self, homo):
        bad = {0: 0, 1: 2, 2: 1}
        with pytest.raises(Exception):
            tree_flow_paths(homo, bad, 0)

    def test_alltoall_all_ordered_pairs(self, homo):
        flows = alltoall_flows(homo, list(range(4)))
        assert len(flows) == 12
        pairs = {(f.src.index, f.dst.index) for f in flows}
        assert len(pairs) == 12
