"""Property-based tests for the recovery control plane.

The claims here are universally quantified over generated fault plans, not
checked on hand-picked seeds: *any* plan that crashes and partitions the
acting coordinator must (a) keep every iteration's aggregation bitwise
exact — coordinator faults live purely on the control plane and never
touch tensors — and (b) leave a journal in which exactly one coordinator
acts per epoch, with epochs contiguous from 1. Both are asserted through
the same :func:`lint_recovery` contract CI gates on, plus direct journal
inspection so a lint regression cannot mask a protocol one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint_recovery import lint_recovery
from repro.chaos import ChaosRunner, FaultPlan
from repro.hardware import make_homo_cluster

WORLD = 4
SPECS = make_homo_cluster(num_servers=2, gpus_per_server=2)


def make_plan(seed, crash_rate, partition_rate):
    """Coordinator-fault-only plans: the worker-fault families are off so
    every example isolates the control-plane recovery machinery."""
    return FaultPlan.generate(
        seed=seed,
        world=WORLD,
        iterations=4,
        straggler_rate=0.0,
        crash_rate=0.0,
        coordinator_crash_rate=crash_rate,
        partition_rate=partition_rate,
    )


class TestRecoveryProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_any_coordinator_fault_plan_stays_exact(self, seed):
        plan = make_plan(seed, crash_rate=0.6, partition_rate=0.4)
        runner = ChaosRunner(SPECS, plan, length=256)
        report = runner.run()
        assert report.all_exact
        assert lint_recovery(runner.control_plane.log) == []

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_exactly_one_coordinator_per_epoch(self, seed):
        plan = make_plan(seed, crash_rate=0.7, partition_rate=0.3)
        runner = ChaosRunner(SPECS, plan, length=256)
        runner.run()
        leader_of = {}
        for record in runner.control_plane.log.records:
            leader_of.setdefault(record.epoch, record.coordinator)
            assert record.coordinator == leader_of[record.epoch]
        # Epochs are contiguous from 1: a skipped epoch would mean a lease
        # was granted without ever being journaled.
        assert sorted(leader_of) == list(range(1, max(leader_of) + 1))
        assert runner.control_plane.elections == max(leader_of) - 1

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_rate=st.floats(min_value=0.0, max_value=1.0),
        partition_rate=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_generation_is_seed_deterministic(self, seed, crash_rate, partition_rate):
        a = make_plan(seed, crash_rate, partition_rate)
        b = make_plan(seed, crash_rate, partition_rate)
        assert a.signature() == b.signature()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_plans_are_well_formed(self, seed):
        plan = make_plan(seed, crash_rate=0.8, partition_rate=0.8)
        crash_iterations = [c.iteration for c in plan.coordinator_crashes]
        assert len(crash_iterations) == len(set(crash_iterations))
        for partition in plan.partitions:
            # Partitions isolate a strict minority — the reachable rest
            # must still form a commit quorum — inside the plan window.
            assert 0 < len(partition.ranks) <= (WORLD - 1) // 2
            assert 0 <= partition.iteration < partition.heal_iteration <= plan.iterations
