"""Shared test configuration."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_analysis_cache(tmp_path, monkeypatch):
    """Keep analysis-CLI invocations from writing a cache into the repo.

    ``python -m repro.analysis`` caches findings under
    ``.repro-analysis-cache/`` by default; tests that call ``main()``
    directly would otherwise create that directory in the working tree.
    """
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE", str(tmp_path / "analysis-cache"))
