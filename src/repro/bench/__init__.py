"""Measurement harness shared by the benchmarks in ``benchmarks/``."""

from repro.bench.harness import (
    BenchEnvironment,
    measure_algorithm_bandwidth,
    measure_training,
)
from repro.bench.report import Series, Table, geometric_mean

__all__ = [
    "BenchEnvironment",
    "Series",
    "Table",
    "geometric_mean",
    "measure_algorithm_bandwidth",
    "measure_training",
]
