"""Determinism and failure-mode tests for the parallel bench sweep.

The sweep's contract: ``--jobs N`` is an implementation detail. The
aggregate payload — and, with ``REPRO_BENCH_DIR`` set, every per-cell side
payload — must be byte-identical to a serial run, and a failing cell must
fail the whole sweep loudly rather than leave a partial aggregate behind.
"""

import json

import pytest

import repro.bench.report as report
from repro.bench.grid import cell_id, iter_cells
from repro.bench.sweep import ENV_POISON, SweepError, run_sweep
from repro.bench.__main__ import main as bench_main

#: One-figure quick grid (2 cells): the smallest sweep that still
#: exercises fan-out, merge and payload replay.
NAMES = ["fig11"]


def _fresh_payload_counts(monkeypatch):
    """Give this test its own payload-collision counters."""
    monkeypatch.setattr(report, "_payload_counts", {})


def _dir_contents(directory):
    return {
        path.name: path.read_bytes() for path in sorted(directory.iterdir())
    }


class TestSweepDeterminism:
    def test_serial_matches_parallel_bytes(self, tmp_path, monkeypatch):
        """jobs=1 and jobs=2 agree byte-for-byte, payload dir included."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"

        _fresh_payload_counts(monkeypatch)
        monkeypatch.setenv("REPRO_BENCH_DIR", str(serial_dir))
        serial_payload, serial_timings = run_sweep(NAMES, quick=True, jobs=1)

        _fresh_payload_counts(monkeypatch)
        monkeypatch.setenv("REPRO_BENCH_DIR", str(parallel_dir))
        parallel_payload, parallel_timings = run_sweep(NAMES, quick=True, jobs=2)

        serial_bytes = json.dumps(serial_payload, sort_keys=True, indent=2)
        parallel_bytes = json.dumps(parallel_payload, sort_keys=True, indent=2)
        assert serial_bytes == parallel_bytes
        assert _dir_contents(serial_dir) == _dir_contents(parallel_dir)
        # Wall-clock timings are host noise and must stay out of the
        # byte-compared payload; they come back through the side channel.
        assert "timings" not in serial_payload
        assert set(serial_timings) == set(parallel_timings)

    def test_repeated_serial_runs_are_byte_stable(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        first, _ = run_sweep(NAMES, quick=True, jobs=1)
        second, _ = run_sweep(NAMES, quick=True, jobs=1)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_every_cell_gets_a_bottleneck_attribution(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        payload, _ = run_sweep(NAMES, quick=True, jobs=1)
        for figure in payload["figures"].values():
            assert set(figure["bottlenecks"]) == set(figure["cells"])
            for link in figure["bottlenecks"].values():
                assert link is None or "->" in link

    def test_timings_cover_every_cell(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        _payload, timings = run_sweep(NAMES, quick=True, jobs=1)
        expected = {cell_id(*cell) for cell in iter_cells(NAMES, quick=True)}
        assert set(timings) == expected
        assert all(seconds > 0.0 for seconds in timings.values())


class TestPoisonedWorker:
    def test_poisoned_cell_fails_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.setenv(ENV_POISON, "fig11|A100:(4,4)|adapcc")
        with pytest.raises(SweepError, match="poisoned cell"):
            run_sweep(NAMES, quick=True, jobs=2)

    def test_poisoned_serial_run_fails_too(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.setenv(ENV_POISON, "fig11|A100:(4,4)|nccl")
        with pytest.raises(RuntimeError, match="poisoned cell"):
            run_sweep(NAMES, quick=True, jobs=1)

    def test_cli_writes_no_partial_aggregate(self, tmp_path, monkeypatch):
        """A poisoned sweep exits non-zero and writes nothing at all."""
        monkeypatch.setenv(ENV_POISON, "fig11|A100:(4,4)|adapcc")
        payload_dir = tmp_path / "payloads"
        monkeypatch.setenv("REPRO_BENCH_DIR", str(payload_dir))
        output = tmp_path / "aggregate.json"
        rc = bench_main(
            [
                "--quick",
                "--figures",
                "fig11",
                "--jobs",
                "2",
                "--output",
                str(output),
            ]
        )
        assert rc == 1
        assert not output.exists()
        assert not payload_dir.exists()


class TestCliJobs:
    def test_jobs_flag_produces_identical_aggregate_file(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.delenv(ENV_POISON, raising=False)
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert (
            bench_main(
                [
                    "--quick",
                    "--figures",
                    "fig11",
                    "--output",
                    str(serial),
                ]
            )
            == 0
        )
        assert (
            bench_main(
                [
                    "--quick",
                    "--figures",
                    "fig11",
                    "--jobs",
                    "2",
                    "--output",
                    str(parallel),
                ]
            )
            == 0
        )
        assert serial.read_bytes() == parallel.read_bytes()

    def test_rejects_nonpositive_jobs(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--quick", "--jobs", "0", "--output", str(tmp_path / "x")])
