"""Tests for adaptive relay control: ski-rental, behaviour tuples,
coordinator two-phase execution, and fault recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoordinationError
from repro.hardware import Cluster, MB, make_hetero_cluster, make_homo_cluster
from repro.relay import (
    AdaptiveAllReduce,
    BehaviorTuple,
    BreakEvenPolicy,
    Coordinator,
    FaultDetector,
    behavior_tuples,
    estimate_collective_seconds,
)
from repro.relay.ski_rental import aggregate_bandwidth, collective_volume
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.synthesis.strategy import Flow, SubCollective
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


def make_env(specs=None):
    sim = Simulator()
    cluster = Cluster(sim, specs or make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    return topo, Synthesizer(topo)


def make_inputs(ranks, length, seed=0):
    rng = np.random.default_rng(seed)
    return {r: rng.integers(0, 50, length).astype(np.float64) for r in ranks}


class TestSkiRental:
    def test_break_even_rule(self):
        policy = BreakEvenPolicy()
        assert not policy.should_proceed(0.004, 0.010)
        assert policy.should_proceed(0.010, 0.010)
        assert policy.should_proceed(0.020, 0.010)

    def test_negative_costs_rejected(self):
        with pytest.raises(CoordinationError):
            BreakEvenPolicy().should_proceed(-1, 1)

    def test_bad_cycle_rejected(self):
        with pytest.raises(CoordinationError):
            BreakEvenPolicy(cycle_seconds=0)

    def test_collective_volume_rules(self):
        assert collective_volume(Primitive.ALLREDUCE, 100.0, 8) == 1400.0  # 2(N-1)S
        assert collective_volume(Primitive.ALLTOALL, 100.0, 8) == 800.0  # N*S
        assert collective_volume(Primitive.BROADCAST, 100.0, 8) == 100.0  # S

    def test_estimate_uses_graph_bandwidth(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, 8 * MB, range(8))
        estimate = estimate_collective_seconds(
            topo, strategy, Primitive.ALLREDUCE, 8 * MB, 8
        )
        assert 0 < estimate < 1.0
        assert aggregate_bandwidth(topo, strategy) > 1e9

    def test_single_worker_estimate_is_zero(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, 8 * MB, range(8))
        assert estimate_collective_seconds(topo, strategy, Primitive.ALLREDUCE, 8 * MB, 1) == 0.0

    @settings(max_examples=200, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=100.0),
        buy=st.floats(min_value=1e-6, max_value=100.0),
    )
    def test_property_two_competitive(self, delay, buy):
        """The classical guarantee: online cost <= 2x offline optimum."""
        policy = BreakEvenPolicy()
        online = policy.online_cost(delay, buy)
        optimum = policy.offline_optimum(delay, buy)
        assert online <= 2 * optimum + 1e-12


class TestBehaviorTuples:
    def make_chain_sc(self):
        """Fig. 7's shape: g3 -> g2 -> g1 -> g0 chain reduce to root g0
        (all on one instance so hops are direct)."""
        flows = [
            Flow(gpu_node(3), gpu_node(0), [gpu_node(3), gpu_node(2), gpu_node(1), gpu_node(0)]),
            Flow(gpu_node(2), gpu_node(0), [gpu_node(2), gpu_node(1), gpu_node(0)]),
            Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)]),
        ]
        return SubCollective(
            index=0,
            size=100.0,
            chunk_size=100.0,
            flows=flows,
            aggregation={gpu_node(0): True, gpu_node(1): True, gpu_node(2): True},
            root=gpu_node(0),
        )

    def test_all_active_chain(self):
        sc = self.make_chain_sc()
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 1, 2, 3})
        assert tuples[3].as_tuple() == (True, False, False, True)  # leaf: send only
        assert tuples[2].as_tuple() == (True, True, True, True)
        assert tuples[1].as_tuple() == (True, True, True, True)
        assert tuples[0].as_tuple() == (True, True, True, False)  # root: no send

    def test_fig7_relay_gpu1(self):
        """The paper's Fig. 7(b): GPU1 relays between GPU2/GPU3 and GPU0."""
        sc = self.make_chain_sc()
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 2, 3})
        # GPU1 is a relay with one active upstream branch (gpu2's subtree
        # carries both active flows merged at gpu2): pass-through.
        assert tuples[1].is_active is False
        assert tuples[1].has_recv is True
        assert tuples[1].has_kernel is False
        assert tuples[1].has_send is True

    def test_relay_with_two_active_branches_keeps_kernel(self):
        flows = [
            Flow(gpu_node(2), gpu_node(0), [gpu_node(2), gpu_node(1), gpu_node(0)]),
            Flow(gpu_node(3), gpu_node(0), [gpu_node(3), gpu_node(1), gpu_node(0)]),
        ]
        sc = SubCollective(
            index=0,
            size=100.0,
            chunk_size=100.0,
            flows=flows,
            aggregation={gpu_node(0): True, gpu_node(1): True},
            root=gpu_node(0),
        )
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 2, 3})
        assert tuples[1].has_kernel is True  # two active branches to merge

    def test_inactive_leaf_sends_nothing(self):
        sc = self.make_chain_sc()
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 1, 2})
        assert tuples[3].as_tuple() == (False, False, False, False)

    def test_synthesizer_disabled_aggregation_respected(self):
        sc = self.make_chain_sc()
        sc.aggregation[gpu_node(1)] = False
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 1, 2, 3})
        assert tuples[1].has_kernel is False

    def test_broadcast_never_has_kernel(self):
        flows = [
            Flow(gpu_node(0), gpu_node(2), [gpu_node(0), gpu_node(1), gpu_node(2)]),
        ]
        sc = SubCollective(index=0, size=10.0, chunk_size=10.0, flows=flows, root=gpu_node(0))
        tuples = behavior_tuples(sc, Primitive.BROADCAST, {0, 1, 2})
        assert all(not t.has_kernel for t in tuples.values())

    def test_source_with_no_recv_no_kernel(self):
        """Condition (1): a rank whose predecessors are all inactive only
        sends its local data."""
        sc = self.make_chain_sc()
        tuples = behavior_tuples(sc, Primitive.REDUCE, {0, 1})
        assert tuples[1].has_recv is False
        assert tuples[1].has_kernel is False
        assert tuples[1].has_send is True


class TestCoordinatorDecision:
    def decide(self, ready, world=8, tensor=8 * MB):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, tensor, range(world))
        return Coordinator(topo).decide(strategy, tensor, ready)

    def test_waits_when_all_nearly_ready(self):
        ready = {r: 0.001 for r in range(8)}
        decision = self.decide(ready)
        assert not decision.proceed
        assert decision.relays == []

    def test_proceeds_for_big_straggler(self):
        ready = {r: 0.0 for r in range(7)}
        ready[7] = 10.0  # ten-second straggler
        decision = self.decide(ready)
        assert decision.proceed
        assert decision.relays == [7]
        assert decision.active_ranks == list(range(7))
        assert decision.trigger_time < 1.0

    def test_never_ready_worker_forces_proceed(self):
        ready = {r: 0.0 for r in range(7)}
        ready[7] = None
        decision = self.decide(ready)
        assert decision.proceed
        assert 7 in decision.relays

    def test_all_crashed_rejected(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, MB, range(8))
        with pytest.raises(CoordinationError):
            Coordinator(topo).decide(strategy, MB, {r: None for r in range(8)})

    def test_break_even_timing(self):
        """Trigger happens roughly when waiting equals the buy estimate."""
        topo, synth = make_env()
        tensor = 8 * MB
        strategy = synth.synthesize(Primitive.ALLREDUCE, tensor, range(8))
        coordinator = Coordinator(topo)
        ready = {r: 0.0 for r in range(7)}
        ready[7] = 100.0
        decision = coordinator.decide(strategy, tensor, ready)
        assert decision.waited_seconds >= decision.buy_cost_seconds
        cycle = coordinator.policy.cycle_seconds
        assert decision.waited_seconds - decision.buy_cost_seconds <= cycle + 1e-9


class TestAdaptiveAllReduce:
    def run_adaptive(self, ready, specs=None, length=4096, seed=0):
        topo, synth = make_env(specs)
        ranks = list(range(topo.cluster.world_size))
        inputs = make_inputs(ranks, length, seed=seed)
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8, ranks)
        adaptive = AdaptiveAllReduce(topo)
        result = adaptive.run(strategy, inputs, ready)
        return ranks, inputs, result, adaptive

    def test_wait_path_exact_sum(self):
        ready = {r: 0.001 for r in range(8)}
        ranks, inputs, result, _ = self.run_adaptive(ready)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)
        assert not result.decision.proceed

    def test_two_phase_path_exact_sum(self):
        """Phase 1 + phase 2 must be bit-identical to a full collective.

        The straggler delay is chosen large enough to trigger phase 1 but
        inside the T_fault window so the worker survives into phase 2.
        """
        ready = {r: 0.0 for r in range(8)}
        ready[5] = 0.02
        ranks, inputs, result, _ = self.run_adaptive(ready)
        assert result.decision.proceed
        assert result.decision.relays == [5]
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)
        assert result.phase2_seconds > 0

    def test_adaptive_faster_than_naive_wait_for_straggler(self):
        """The headline: proceeding beats waiting when a straggler is long."""
        straggle = 2.0
        ready = {r: 0.0 for r in range(8)}
        ready[7] = straggle

        ranks, inputs, adaptive_result, _ = self.run_adaptive(ready, length=1 << 20)

        # Naive: a full collective that waits for everyone.
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, (1 << 20) * 8, ranks)
        from repro.runtime import run_allreduce

        naive = run_allreduce(topo, strategy, inputs, ready_times=ready)
        assert naive.duration >= straggle
        # Phase 1 result was available long before the straggler arrived;
        # final completion still needs phase 2, but the total should not
        # exceed naive by more than the phase-2 cost, and phase 1 finished
        # much earlier.
        assert adaptive_result.phase1_seconds < straggle

    def test_fault_path_excludes_crashed_worker(self):
        ready = {r: 0.0 for r in range(8)}
        ready[3] = None  # crashed
        ranks, inputs, result, _ = self.run_adaptive(ready)
        assert result.fault_report is not None
        assert result.fault_report.faulty_ranks == [3]
        assert 3 not in result.outputs
        expected = sum(inputs[r] for r in ranks if r != 3)
        for rank in ranks:
            if rank != 3:
                np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_fault_threshold_is_five_x(self):
        detector = FaultDetector()
        assert detector.threshold(fastest_ready=1.0, phase1_end=3.0) == pytest.approx(10.0)

    def test_all_stragglers_faulty_is_reported_not_fatal(self):
        detector = FaultDetector()
        report = detector.detect({0: None}, [0], 0.0, 1.0)
        assert report.faulty_ranks == [0]
        assert report.survivors == []

    def test_relay_statistics_collected(self):
        ready = {r: 0.0 for r in range(8)}
        ready[6] = 0.9
        _, _, result, adaptive = self.run_adaptive(ready)
        probabilities = adaptive.relay_probabilities()
        assert probabilities.get(6) == 1.0
        assert len(adaptive.rpc_samples) == 1
        assert adaptive.rpc_samples[0] > 0

    def test_rpc_latency_distribution_matches_fig19d(self):
        """90 % of RPC negotiations under 1.5 ms."""
        from repro.relay.coordinator import default_rpc_latency

        rng = np.random.default_rng(42)
        samples = np.array([default_rpc_latency(rng) for _ in range(2000)])
        assert np.quantile(samples, 0.9) < 1.5e-3
        assert samples.min() > 0


class TestFaultDetectorEdgeCases:
    def test_zero_ready_time_degenerate(self):
        """fastest_ready == phase1_end: the T_fault window collapses to
        zero, so any worker not ready by phase-1 completion is late."""
        detector = FaultDetector()
        assert detector.threshold(fastest_ready=2.0, phase1_end=2.0) == 0.0
        report = detector.detect({7: 2.0001}, [7], fastest_ready=2.0, phase1_end=2.0)
        assert report.late_ranks == [7]
        report = detector.detect({7: 2.0}, [7], fastest_ready=2.0, phase1_end=2.0)
        assert report.survivors == [7]

    def test_phase1_before_fastest_rejected(self):
        with pytest.raises(CoordinationError):
            FaultDetector().threshold(fastest_ready=3.0, phase1_end=2.0)

    def test_exactly_at_threshold_survives(self):
        """The deadline is inclusive: a worker ready at phase1_end +
        T_fault exactly is a straggler, not a fault (strict > evicts)."""
        detector = FaultDetector()
        deadline = 3.0 + detector.threshold(fastest_ready=1.0, phase1_end=3.0)
        report = detector.detect(
            {5: deadline, 6: deadline + 1e-9},
            [5, 6],
            fastest_ready=1.0,
            phase1_end=3.0,
        )
        assert report.survivors == [5]
        assert report.late_ranks == [6]

    def test_multiplier_constructor_override(self):
        detector = FaultDetector(multiplier=2.0)
        assert detector.threshold(fastest_ready=0.0, phase1_end=1.0) == pytest.approx(2.0)

    def test_multiplier_env_override(self, monkeypatch):
        from repro.relay.faults import ENV_FAULT_MULTIPLIER

        monkeypatch.setenv(ENV_FAULT_MULTIPLIER, "3.0")
        detector = FaultDetector()
        assert detector.multiplier == 3.0
        # An explicit argument still wins over the environment.
        assert FaultDetector(multiplier=7.0).multiplier == 7.0

    def test_multiplier_env_invalid_rejected(self, monkeypatch):
        from repro.relay.faults import ENV_FAULT_MULTIPLIER

        monkeypatch.setenv(ENV_FAULT_MULTIPLIER, "fast")
        with pytest.raises(CoordinationError):
            FaultDetector()

    def test_non_positive_multiplier_rejected(self):
        with pytest.raises(CoordinationError):
            FaultDetector(multiplier=0.0)

    def test_unreported_rank_gets_grace_not_eviction(self):
        """Regression: a rank with NO entry in the ready map (a worker that
        joined mid-iteration and has not negotiated yet) must not be
        declared faulty — 'never reported' is not 'reported late'."""
        detector = FaultDetector()
        report = detector.detect(
            {5: None, 6: 100.0},
            [5, 6, 7],  # rank 7 never reported
            fastest_ready=0.0,
            phase1_end=1.0,
        )
        assert report.crashed_ranks == [5]
        assert report.late_ranks == [6]
        assert report.unreported_ranks == [7]
        assert report.faulty_ranks == [5, 6]
        assert 7 not in report.faulty_ranks
        assert report.any_faults

    def test_only_unreported_means_no_faults(self):
        detector = FaultDetector()
        report = detector.detect({}, [3], fastest_ready=0.0, phase1_end=1.0)
        assert report.unreported_ranks == [3]
        assert not report.any_faults

    def test_faulty_ranks_preserve_participant_order(self):
        """Mixed crash/late faults come back in participants order, not
        grouped by kind — eviction notices follow rank order."""
        detector = FaultDetector()
        report = detector.detect(
            {1: 100.0, 2: None, 3: 100.0},
            [1, 2, 3],
            fastest_ready=0.0,
            phase1_end=1.0,
        )
        assert report.faulty_ranks == [1, 2, 3]


class TestGraceWindow:
    """The one-shot re-armable grace window rejoiners get (regression for
    the rejoin-then-straggle eviction loop)."""

    def detect(self, detector, ready):
        return detector.detect(ready, sorted(ready), fastest_ready=0.0, phase1_end=1.0)

    def test_graced_late_rank_survives_once(self):
        detector = FaultDetector()
        detector.arm_grace([6])
        report = self.detect(detector, {5: 0.5, 6: 100.0})
        assert report.graced_ranks == [6]
        assert report.survivors == [5, 6]
        assert not report.any_faults
        # The window was consumed: straggling again means eviction.
        report = self.detect(detector, {5: 0.5, 6: 100.0})
        assert report.graced_ranks == []
        assert report.late_ranks == [6]

    def test_rearm_after_second_rejoin(self):
        detector = FaultDetector()
        detector.arm_grace([6])
        assert self.detect(detector, {6: 100.0}).graced_ranks == [6]
        assert self.detect(detector, {6: 100.0}).late_ranks == [6]
        detector.arm_grace([6])
        assert self.detect(detector, {6: 100.0}).graced_ranks == [6]

    def test_crash_is_never_graced_and_leaves_window_armed(self):
        detector = FaultDetector()
        detector.arm_grace([6])
        report = self.detect(detector, {6: None})
        assert report.crashed_ranks == [6]
        assert report.graced_ranks == []
        # Grace covers slowness, not death: the window survives for the
        # eventual real rejoin.
        assert self.detect(detector, {6: 100.0}).graced_ranks == [6]

    def test_on_time_rank_keeps_its_window(self):
        detector = FaultDetector()
        detector.arm_grace([6])
        assert self.detect(detector, {6: 0.5}).survivors == [6]
        # Punctuality did not consume the window.
        assert self.detect(detector, {6: 100.0}).graced_ranks == [6]


class TestStragglerIntegration:
    """Satellite: 1 and N-1 stragglers into an 8-rank AllReduce must be
    bitwise-identical to the fault-free run, with relay ranks showing the
    paper's <isActive, hasRecv, hasKernel, hasSend> behaviour."""

    def run_case(self, straggler_ranks, delay=0.02, length=4096):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, length, seed=3)
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8, ranks)

        baseline = AdaptiveAllReduce(topo).run(
            strategy, inputs, {r: 0.0 for r in ranks}
        )
        ready = {r: (delay if r in straggler_ranks else 0.0) for r in ranks}
        result = AdaptiveAllReduce(topo).run(strategy, inputs, ready)
        return ranks, strategy, baseline, result

    def assert_bitwise_equal(self, ranks, baseline, result):
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], baseline.outputs[rank])

    def assert_relay_behavior(self, strategy, decision):
        """Each sub-collective's behaviour tuples: relays are inactive, and
        an inactive rank receiving nothing does nothing at all."""
        active = set(decision.active_ranks)
        for sc in strategy.subcollectives:
            tuples = behavior_tuples(sc, Primitive.ALLREDUCE, active)
            for rank, t in tuples.items():
                assert t.is_active == (rank in active)
                if rank in decision.relays and not t.has_recv:
                    assert not t.has_kernel and not t.has_send
                if t.has_kernel:
                    assert t.has_recv or t.is_active

    def test_single_straggler_bitwise_equal(self):
        ranks, strategy, baseline, result = self.run_case({5})
        assert result.decision.proceed
        assert result.decision.relays == [5]
        assert result.fault_report is None or not result.fault_report.any_faults
        self.assert_bitwise_equal(ranks, baseline, result)
        self.assert_relay_behavior(strategy, result.decision)

    def test_n_minus_one_stragglers_bitwise_equal(self):
        ranks, strategy, baseline, result = self.run_case(set(range(1, 8)))
        assert result.decision.proceed
        assert result.decision.relays == list(range(1, 8))
        assert result.decision.active_ranks == [0]
        self.assert_bitwise_equal(ranks, baseline, result)
        self.assert_relay_behavior(strategy, result.decision)
