"""Tests for the non-blocking collective API and gradient bucketing."""

import numpy as np
import pytest

from repro.bench.harness import BenchEnvironment
from repro.errors import CommunicatorError
from repro.hardware import Cluster, make_homo_cluster
from repro.runtime import launch_allreduce, run_allreduce
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology
from repro.training import VIT
from repro.training.trainer import Trainer, TrainerConfig


def make_env():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    return topo, Synthesizer(topo)


def make_inputs(ranks, length, seed=0):
    rng = np.random.default_rng(seed)
    return {r: rng.integers(0, 9, length).astype(np.float64) for r in ranks}


class TestLaunchAllReduce:
    def test_launch_then_drive_matches_run(self):
        ranks = list(range(8))
        inputs = make_inputs(ranks, 1024)

        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, 8192, ranks)
        pending = launch_allreduce(topo, strategy, inputs)
        topo.cluster.sim.run_until_complete(pending.done)
        launched = pending.result()

        topo2, synth2 = make_env()
        strategy2 = synth2.synthesize(Primitive.ALLREDUCE, 8192, ranks)
        ran = run_allreduce(topo2, strategy2, inputs)

        for rank in ranks:
            np.testing.assert_array_equal(launched.outputs[rank], ran.outputs[rank])
        assert launched.duration == pytest.approx(ran.duration, rel=1e-9)

    def test_result_before_completion_rejected(self):
        ranks = list(range(8))
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, 8192, ranks)
        pending = launch_allreduce(topo, strategy, make_inputs(ranks, 1024))
        with pytest.raises(CommunicatorError):
            pending.result()

    def test_two_launches_overlap_on_the_fabric(self):
        """Two concurrent 8 MB AllReduces take less than 2x one of them
        (they pipeline/overlap), but more than 1x (they share links)."""
        ranks = list(range(8))
        length = 1 << 17  # 1 MB payload
        inputs = make_inputs(ranks, length)
        scale = 8.0  # 8 MB simulated

        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8 * scale, ranks)
        solo = run_allreduce(topo, strategy, inputs, byte_scale=scale)

        topo2, synth2 = make_env()
        strategy2 = synth2.synthesize(Primitive.ALLREDUCE, length * 8 * scale, ranks)
        p1 = launch_allreduce(topo2, strategy2, inputs, byte_scale=scale)
        p2 = launch_allreduce(topo2, strategy2, inputs, byte_scale=scale)
        sim = topo2.cluster.sim
        sim.run_until_complete(sim.all_of([p1.done, p2.done]))
        both = max(p1.result().duration, p2.result().duration)

        assert both > 1.2 * solo.duration
        assert both < 2.2 * solo.duration

    def test_wrong_primitive_rejected(self):
        ranks = list(range(8))
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.REDUCE, 8192, ranks, root=0)
        with pytest.raises(CommunicatorError):
            launch_allreduce(topo, strategy, make_inputs(ranks, 1024))


class TestBucketedTraining:
    def run_trainer(self, buckets, iterations=4, seed=13):
        env = BenchEnvironment(make_homo_cluster(num_servers=2), "adapcc")
        trainer = Trainer(
            env.backend,
            VIT,
            TrainerConfig(
                iterations=iterations,
                buckets=buckets,
                adaptive_relay=False,
                seed=seed,
            ),
        )
        return trainer, trainer.run()

    def test_bucketing_overlaps_compute_and_comm(self):
        """With buckets, early gradients ship during the backward pass, so
        the iteration beats the serial compute+comm baseline."""
        _, serial = self.run_trainer(buckets=1)
        _, bucketed = self.run_trainer(buckets=4)
        assert bucketed.mean_iteration_seconds < serial.mean_iteration_seconds

    def test_bucketing_disables_relay_coordination(self):
        trainer, _ = self.run_trainer(buckets=4)
        assert trainer.adaptive is None

    def test_single_bucket_equals_default_path(self):
        trainer, report = self.run_trainer(buckets=1)
        assert report.iterations == 4
