"""Property-based tests for the chaos subsystem and the ski-rental rule.

Shared module-level environment: one 8-rank topology and one synthesized
AllReduce strategy are built once, and every hypothesis example runs a
fresh :class:`AdaptiveAllReduce` against them — the expensive part
(synthesis) is amortized, the stateful part (the executor) is not reused.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.hardware import Cluster, make_homo_cluster
from repro.relay import AdaptiveAllReduce, BreakEvenPolicy
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology

WORLD = 8
LENGTH = 512

_SIM = Simulator()
_CLUSTER = Cluster(_SIM, make_homo_cluster(num_servers=2, gpus_per_server=4))
_TOPOLOGY = LogicalTopology.from_cluster(_CLUSTER)
_STRATEGY = Synthesizer(_TOPOLOGY).synthesize(
    Primitive.ALLREDUCE, LENGTH * 8, range(WORLD)
)


class TestSkiRentalProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=100.0),
        buy=st.floats(min_value=1e-6, max_value=100.0),
    )
    def test_two_competitive(self, delay, buy):
        """online cost <= 2x the clairvoyant optimum, for any adversary."""
        policy = BreakEvenPolicy()
        assert policy.online_cost(delay, buy) <= 2 * policy.offline_optimum(delay, buy) + 1e-12

    @settings(max_examples=200, deadline=None)
    @given(
        waited_low=st.floats(min_value=0.0, max_value=50.0),
        extra=st.floats(min_value=0.0, max_value=50.0),
        buy=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_decision_monotone_in_waiting(self, waited_low, extra, buy):
        """Once the rule proceeds, more observed waiting never flips it
        back to waiting."""
        policy = BreakEvenPolicy()
        if policy.should_proceed(waited_low, buy):
            assert policy.should_proceed(waited_low + extra, buy)

    @settings(max_examples=200, deadline=None)
    @given(
        waited=st.floats(min_value=0.0, max_value=100.0),
        buy_low=st.floats(min_value=0.0, max_value=50.0),
        extra=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_decision_antitone_in_buy_cost(self, waited, buy_low, extra):
        """A cheaper buy can only make proceeding more attractive."""
        policy = BreakEvenPolicy()
        if policy.should_proceed(waited, buy_low + extra):
            assert policy.should_proceed(waited, buy_low)


class TestFaultPlanProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        world=st.integers(min_value=2, max_value=16),
        iterations=st.integers(min_value=1, max_value=6),
    )
    def test_generate_same_seed_same_plan(self, seed, world, iterations):
        a = FaultPlan.generate(seed=seed, world=world, iterations=iterations)
        b = FaultPlan.generate(seed=seed, world=world, iterations=iterations)
        assert a.signature() == b.signature()

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        world=st.integers(min_value=2, max_value=16),
        iterations=st.integers(min_value=1, max_value=6),
    )
    def test_generated_plans_are_well_formed(self, seed, world, iterations):
        plan = FaultPlan.generate(
            seed=seed, world=world, iterations=iterations, crash_rate=0.5
        )
        ranks = list(range(world))
        for iteration in range(iterations):
            delays = plan.ready_delays(iteration, ranks)
            # Rank 0 never crashes and crashes are capped, so the group
            # always has at least two live ranks.
            alive = [rank for rank, delay in delays.items() if delay is not None]
            assert 0 in alive
            assert len(alive) >= 2


class TestReadySetExactness:
    @settings(max_examples=15, deadline=None)
    @given(
        delays=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=0.05),
                st.none(),
            ),
            min_size=WORLD - 1,
            max_size=WORLD - 1,
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_allreduce_exact_under_any_ready_set(self, delays, seed):
        """For ANY injected ready-set — stragglers, crashes, mixtures —
        the surviving ranks' AllReduce equals the elementwise sum over the
        contributors, bit for bit."""
        ready = {0: 0.0}
        for rank, delay in enumerate(delays, start=1):
            ready[rank] = delay
        rng = np.random.default_rng(seed)
        inputs = {
            rank: rng.integers(0, 64, LENGTH).astype(np.float64)
            for rank in range(WORLD)
        }
        adaptive = AdaptiveAllReduce(_TOPOLOGY, seed=seed)
        result = adaptive.run(_STRATEGY, inputs, ready)

        faulty = (
            set(result.fault_report.faulty_ranks)
            if result.fault_report is not None
            else set()
        )
        contributors = [rank for rank in range(WORLD) if rank not in faulty]
        expected = np.zeros(LENGTH, dtype=np.float64)
        for rank in contributors:
            expected += inputs[rank]
        for rank in contributors:
            np.testing.assert_array_equal(result.outputs[rank], expected)
