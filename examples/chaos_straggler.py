"""Chaos engineering on the simulated cluster: seeded faults, replayed.

Generates a seeded :class:`~repro.chaos.plan.FaultPlan` — stragglers, a
transient crash, a flapping link — and replays it twice through the full
AdapCC stack (ski-rental relay decisions, two-phase AllReduce, fault
eviction, shard redistribution, strategy re-synthesis). The two replays
must agree event for event and bit for bit: that determinism is what makes
a chaos failure reproducible from nothing but its seed.

Run:  python examples/chaos_straggler.py

With ``REPRO_TELEMETRY=1`` the run also exports its structured trace to
``chaos_straggler.jsonl`` (lint it with
``python -m repro.analysis --telemetry chaos_straggler.jsonl``).
"""

import numpy as np

from repro.chaos import ChaosRunner, CrashFault, FaultPlan, LinkFault, StragglerFault
from repro.hardware import make_homo_cluster
from repro.telemetry import hub, write_jsonl


def main() -> None:
    print("== Seeded chaos on 2x4xA100, 4 iterations ==\n")
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)

    plan = FaultPlan(
        seed=23,
        iterations=4,
        stragglers=(
            StragglerFault(rank=6, iteration=0, delay_seconds=0.03),
            StragglerFault(rank=2, iteration=3, delay_seconds=0.02),
        ),
        crashes=(CrashFault(rank=4, iteration=1, rejoin_iteration=3),),
        link_faults=(
            LinkFault(
                instance_id=1,
                start_seconds=0.0,
                duration_seconds=0.06,
                bandwidth_fraction=0.4,
                flaps=3,
            ),
        ),
    )
    print(
        f"plan (seed {plan.seed}): {len(plan.stragglers)} stragglers, "
        f"{len(plan.crashes)} transient crash, {len(plan.link_faults)} flapping link\n"
    )

    report = ChaosRunner(specs, plan, length=2048).run()
    for outcome in report.iterations:
        note = []
        if outcome.rejoined:
            note.append(f"rejoined {outcome.rejoined}")
        if outcome.relays:
            note.append(f"relays {outcome.relays}")
        if outcome.evicted:
            note.append(f"evicted {outcome.evicted}")
        print(
            f"iter {outcome.iteration}: {len(outcome.participants)} participants, "
            f"{'proceeded' if outcome.proceeded else 'waited'}, "
            f"exact={outcome.exact}"
            + (f"  ({', '.join(note)})" if note else "")
        )
    print(
        f"\nfinal members: {report.final_members}; "
        f"strategy re-syntheses: {report.resyntheses}; "
        f"all iterations bitwise exact: {report.all_exact}"
    )

    replay = ChaosRunner(specs, plan, length=2048).run()
    traces_equal = report.event_trace == replay.event_trace
    outputs_equal = all(
        np.array_equal(replay.final_outputs()[rank], tensor)
        for rank, tensor in report.final_outputs().items()
    )
    print(
        f"replay from seed {plan.seed}: identical event trace: {traces_equal}; "
        f"identical final tensors: {outputs_equal}"
    )

    print("\nchaos event trace (first replay):")
    for event in report.event_trace:
        time, kind, subject = event[0], event[1], event[2]
        print(f"  t={time:8.4f}s  {kind:18s} {subject}")

    telemetry = hub()
    if telemetry.enabled:
        write_jsonl(telemetry, "chaos_straggler.jsonl")
        print(
            f"\ntelemetry: wrote chaos_straggler.jsonl "
            f"({len(telemetry.tracer.spans)} spans, "
            f"{len(telemetry.tracer.events)} events)"
        )


if __name__ == "__main__":
    main()
