"""Conformance suite for the end-to-end data-plane integrity layer.

Central claims, asserted per seed (override/extend with the
``REPRO_CHAOS_SEED`` environment variable, as the CI integrity job does):

* **detection** — wire-site corruption is named by the per-hop CRC32
  checksums, kernel-site corruption slips past every hop check and is
  caught by the end-of-collective digest exchange — both within the
  iteration the fault first strikes;
* **localization** — a digest-only verdict is narrowed to the guilty
  link by binary-search probe rounds within ``max(1, ceil(log2 n))``;
* **healing** — a convicted link is quarantined (capacity masked in the
  topology), the strategy is re-synthesized through the two-phase
  control plane, corrupted iterations retry, and the final tensors are
  bitwise-equal to the fault-free same-seed run;
* **replay** — the same corrupting plan replayed twice yields identical
  corruption traces and byte-identical integrity logs and telemetry
  exports;
* **lint** — a healed run's integrity log satisfies the ``--integrity``
  pass's causal-coherence checks, and broken narrations are flagged.
"""

import os

import numpy as np
import pytest

from repro.analysis.lint_integrity import lint_integrity_records
from repro.chaos import (
    SCALE,
    ChaosRunner,
    CorruptionFault,
    FaultPlan,
    PayloadCorruptor,
)
from repro.errors import ChaosError
from repro.hardware import Cluster, make_homo_cluster
from repro.integrity import (
    CHECKSUM_RECORD,
    CONVICTION_RECORD,
    DIGEST_RECORD,
    SITE_KERNEL,
    SITE_WIRE,
    DataPlane,
    IntegrityConfig,
    IntegrityMonitor,
    data_plane,
    payload_checksum,
    payload_digest,
    strategy_link_names,
)
from repro.integrity.checksums import digests_match
from repro.integrity.localize import probe_round_bound
from repro.integrity.monitor import (
    LOCALIZATION_RECORD,
    QUARANTINE_RECORD,
    RESYNTHESIS_RECORD,
    SUMMARY_RECORD,
)
from repro.simulation import Simulator
from repro.telemetry import TelemetryHub, parse_jsonl, set_hub, to_jsonl
from repro.topology import QUARANTINE_BETA, LogicalTopology
from repro.topology.graph import parse_link

#: The CI integrity job sweeps this over several fixed seeds.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

#: Three servers: the NIC mesh offers a detour around a quarantined
#: inter-server link (with two servers there is no alternative path and
#: quarantine cannot heal).
SPECS = make_homo_cluster(num_servers=3, gpus_per_server=2)
LINK = "n0->n1"
ITERATIONS = 4


def run_corruption(plan, integrity=None, length=256):
    return ChaosRunner(SPECS, plan, length=length, integrity=integrity).run()


def corruption_plan(site, seed=CHAOS_SEED, rate=1.0, **kwargs):
    return FaultPlan.corruption(
        seed=seed, iterations=ITERATIONS, link=LINK, rate=rate, site=site, **kwargs
    )


class TestChecksumsAndDigests:
    def test_checksum_is_content_addressed(self):
        a = np.arange(64, dtype=np.float64)
        b = a.copy()
        assert payload_checksum(a) == payload_checksum(b)
        b[17] += 1.0
        assert payload_checksum(a) != payload_checksum(b)

    def test_checksum_handles_non_contiguous_views(self):
        base = np.arange(128, dtype=np.float64)
        view = base[::2]
        assert payload_checksum(view) == payload_checksum(view.copy())

    def test_digest_is_linear(self):
        rng = np.random.default_rng(CHAOS_SEED)
        tensors = [
            rng.integers(0, 64, 256).astype(np.float64) for _ in range(6)
        ]
        total = sum(tensors)
        assert payload_digest(total) == pytest.approx(
            sum(payload_digest(t) for t in tensors)
        )

    def test_digests_match_tolerates_association_noise(self):
        expected = 1e6
        assert digests_match(expected, expected * (1.0 + 1e-14))
        assert not digests_match(expected, expected * 1.01)

    def test_digests_match_near_zero(self):
        # The tolerance scale is floored at 1.0 so tiny digests do not
        # make the comparison degenerate.
        assert digests_match(0.0, 1e-12)
        assert not digests_match(0.0, 0.5)


class TestCorruptionFault:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CorruptionFault(link="n0n1"),
            lambda: CorruptionFault(link=LINK, mode="garble"),
            lambda: CorruptionFault(link=LINK, rate=0.0),
            lambda: CorruptionFault(link=LINK, rate=1.5),
            lambda: CorruptionFault(link=LINK, start_iteration=-1),
            lambda: CorruptionFault(link=LINK, start_iteration=2, end_iteration=2),
            lambda: CorruptionFault(link=LINK, site="bus"),
            lambda: CorruptionFault(link=LINK, max_corruptions=0),
            lambda: CorruptionFault(link=LINK, mode=SCALE, scale_factor=1.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ChaosError):
            bad()

    def test_window(self):
        fault = CorruptionFault(link=LINK, start_iteration=1, end_iteration=3)
        assert [fault.active_at(i) for i in range(4)] == [False, True, True, False]
        open_ended = CorruptionFault(link=LINK, start_iteration=2)
        assert open_ended.active_at(100)

    def test_at_most_one_fault_per_link(self):
        with pytest.raises(ChaosError):
            FaultPlan(
                seed=1,
                iterations=2,
                corruptions=(
                    CorruptionFault(link=LINK),
                    CorruptionFault(link=LINK, mode=SCALE),
                ),
            )

    def test_plan_signature_covers_corruptions(self):
        plain = FaultPlan(seed=CHAOS_SEED, iterations=2)
        corrupting = FaultPlan(
            seed=CHAOS_SEED, iterations=2, corruptions=(CorruptionFault(link=LINK),)
        )
        assert plain.signature() != corrupting.signature()
        assert corrupting.signature() == FaultPlan(
            seed=CHAOS_SEED, iterations=2, corruptions=(CorruptionFault(link=LINK),)
        ).signature()

    def test_ground_truth_names_the_corruption(self):
        plan = corruption_plan(SITE_KERNEL)
        truth = plan.ground_truth()
        labels = [t for t in truth if "silent-corruption" in t.get("kinds", ())]
        assert len(labels) == 1
        assert labels[0]["link"] == LINK
        assert labels[0]["site"] == SITE_KERNEL

    def test_generate_can_draw_corruptions(self):
        plan = FaultPlan.generate(
            seed=CHAOS_SEED,
            world=6,
            iterations=4,
            corruption_rate=1.0,
            corruption_links=(LINK, "n1->n2"),
        )
        assert {f.link for f in plan.corruptions} == {LINK, "n1->n2"}
        replay = FaultPlan.generate(
            seed=CHAOS_SEED,
            world=6,
            iterations=4,
            corruption_rate=1.0,
            corruption_links=(LINK, "n1->n2"),
        )
        assert plan.signature() == replay.signature()

    def test_generate_without_corruption_is_unchanged(self):
        # Corruption draws come last, so pre-existing plans replay the
        # same stream with the feature off.
        a = FaultPlan.generate(seed=CHAOS_SEED, world=6, iterations=4)
        b = FaultPlan.generate(
            seed=CHAOS_SEED, world=6, iterations=4, corruption_rate=0.0
        )
        assert a.signature() == b.signature()

    def test_plan_rejects_links_outside_topology(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            iterations=2,
            corruptions=(CorruptionFault(link="n7->n9"),),
        )
        with pytest.raises(ChaosError):
            ChaosRunner(SPECS, plan)


class TestDataPlaneTap:
    """Site semantics of the delivery tap, against live parties."""

    def deliver(self, site, monitor=None):
        plane = DataPlane()
        plane.corruptor = PayloadCorruptor(
            [CorruptionFault(link="a->b", site=site, rate=1.0)], seed=CHAOS_SEED
        )
        plane.monitor = monitor
        sent = np.arange(1, 65, dtype=np.float64)
        delivered = plane.deliver("a->b", 0, sent, tag="t", now=1.0)
        return sent, delivered

    def test_wire_corruption_caught_by_hop_checksum(self):
        monitor = IntegrityMonitor(IntegrityConfig(), seed=CHAOS_SEED)
        sent, delivered = self.deliver(SITE_WIRE, monitor)
        assert not np.array_equal(sent, delivered)
        assert len(monitor.hop_failures) == 1
        assert monitor.hop_failures[0]["link"] == "a->b"

    def test_kernel_corruption_slips_past_hop_checksum(self):
        monitor = IntegrityMonitor(IntegrityConfig(), seed=CHAOS_SEED)
        sent, delivered = self.deliver(SITE_KERNEL, monitor)
        assert not np.array_equal(sent, delivered)
        assert monitor.hop_failures == []
        assert monitor.units_verified == 1

    def test_payload_is_never_mutated_in_place(self):
        sent, delivered = self.deliver(SITE_WIRE)
        np.testing.assert_array_equal(sent, np.arange(1, 65, dtype=np.float64))
        assert delivered is not sent

    def test_clean_link_delivers_by_reference(self):
        plane = DataPlane()
        plane.corruptor = PayloadCorruptor(
            [CorruptionFault(link="a->b", rate=1.0)], seed=CHAOS_SEED
        )
        sent = np.ones(8)
        assert plane.deliver("c->d", 0, sent, tag="t") is sent

    def test_inactive_plane_is_skipped(self):
        assert not DataPlane().active
        plane = DataPlane()
        plane.monitor = IntegrityMonitor(IntegrityConfig(), seed=0)
        assert plane.active

    def test_bitflip_changes_exactly_one_element(self):
        sent, delivered = self.deliver(SITE_WIRE)
        assert int(np.count_nonzero(sent != delivered)) == 1
        assert np.all(np.isfinite(delivered))

    def test_scale_mode_scales_whole_payload(self):
        plane = DataPlane()
        plane.corruptor = PayloadCorruptor(
            [CorruptionFault(link="a->b", mode=SCALE, scale_factor=3.0, rate=1.0)],
            seed=CHAOS_SEED,
        )
        sent = np.arange(1, 9, dtype=np.float64)
        np.testing.assert_array_equal(
            plane.deliver("a->b", 0, sent, tag="t"), sent * 3.0
        )

    def test_single_shot_fault_strikes_once(self):
        plane = DataPlane()
        plane.corruptor = PayloadCorruptor(
            [CorruptionFault(link="a->b", rate=1.0, max_corruptions=1)],
            seed=CHAOS_SEED,
        )
        sent = np.ones(8)
        first = plane.deliver("a->b", 0, sent, tag="t")
        second = plane.deliver("a->b", 1, sent, tag="t")
        assert not np.array_equal(first, sent)
        assert second is sent
        assert plane.corruptor.strikes["a->b"] == 1

    def test_corruptor_replays_bit_for_bit(self):
        def run():
            corruptor = PayloadCorruptor(
                [CorruptionFault(link="a->b", rate=0.5, site=SITE_KERNEL)],
                seed=CHAOS_SEED,
            )
            plane = DataPlane()
            plane.corruptor = corruptor
            outs = []
            for iteration in range(3):
                corruptor.begin_iteration(iteration)
                for chunk in range(8):
                    payload = np.full(16, float(chunk + 1))
                    outs.append(plane.deliver("a->b", chunk, payload, tag="t"))
            return corruptor.trace_signature(), outs

        trace_a, outs_a = run()
        trace_b, outs_b = run()
        assert trace_a == trace_b
        assert trace_a  # rate 0.5 over 24 transmissions strikes sometimes
        for x, y in zip(outs_a, outs_b):
            np.testing.assert_array_equal(x, y)


class TestQuarantineMasking:
    def make_topology(self):
        sim = Simulator()
        return LogicalTopology.from_cluster(Cluster(sim, SPECS))

    def test_parse_link(self):
        src, dst = parse_link(LINK)
        assert (str(src), str(dst)) == ("n0", "n1")
        with pytest.raises(Exception):
            parse_link("n0n1")

    def test_quarantine_masks_capacity_both_directions(self):
        topo = self.make_topology()
        edges = topo.quarantine_link(LINK)
        assert len(edges) == 2
        for edge in edges:
            assert edge.quarantined
            assert edge.effective.beta == QUARANTINE_BETA
        assert topo.quarantined_links() == ["n0->n1", "n1->n0"]

    def test_quarantine_one_direction(self):
        topo = self.make_topology()
        topo.quarantine_link(LINK, both_directions=False)
        assert topo.quarantined_links() == ["n0->n1"]

    def test_clear_quarantine(self):
        topo = self.make_topology()
        topo.quarantine_link(LINK)
        topo.clear_quarantine()
        assert topo.quarantined_links() == []

    def test_unknown_link_rejected(self):
        topo = self.make_topology()
        with pytest.raises(Exception):
            topo.quarantine_link("n0->n9")

    def test_quarantine_reroutes_synthesis(self):
        from repro.synthesis import Primitive, Synthesizer

        topo = self.make_topology()
        members = [gpu.rank for gpu in topo.cluster.gpus]
        before = Synthesizer(topo).synthesize(Primitive.ALLREDUCE, 2048.0, members)
        topo.quarantine_link(LINK)
        after = Synthesizer(topo).synthesize(Primitive.ALLREDUCE, 2048.0, members)
        assert strategy_link_names(before)  # sanity: non-empty link sets
        # Three servers always offer a detour, so the capacity mask must
        # push the synthesizer off the quarantined hop entirely.
        assert LINK not in strategy_link_names(after)


class TestEndToEndHealing:
    """The acceptance scenario: inject → detect → localize → heal."""

    def test_undefended_wire_corruption_breaks_exactness(self):
        report = run_corruption(corruption_plan(SITE_WIRE), integrity=None)
        assert not report.all_exact
        assert report.corruption_trace
        assert report.convictions == []

    def test_wire_site_detected_convicted_and_healed(self):
        report = run_corruption(corruption_plan(SITE_WIRE), IntegrityConfig())
        reference = run_corruption(FaultPlan(seed=CHAOS_SEED, iterations=ITERATIONS))
        # Detected within the iteration the fault first strikes, by the
        # hop checksums (no localization probes needed at the wire site).
        assert report.iterations[0].corruption_detections > 0
        records = [r for r in monitor_records(report) if r["type"] == CHECKSUM_RECORD]
        assert records and records[0]["iteration"] == 0
        assert records[0]["link"] == LINK
        assert report.convictions == [LINK]
        assert report.quarantined_links == ["n0->n1", "n1->n0"]
        assert report.resyntheses >= 1
        # Healed: retried iterations are exact and the final tensors are
        # bitwise-equal to the fault-free same-seed run.
        assert report.all_exact
        final, expected = report.final_outputs(), reference.final_outputs()
        assert sorted(final) == sorted(expected)
        for rank in final:
            np.testing.assert_array_equal(final[rank], expected[rank])

    def test_kernel_site_localized_within_bound_and_healed(self):
        report = run_corruption(
            corruption_plan(SITE_KERNEL, rate=0.6), IntegrityConfig()
        )
        reference = run_corruption(FaultPlan(seed=CHAOS_SEED, iterations=ITERATIONS))
        records = monitor_records(report)
        digests = [r for r in records if r["type"] == DIGEST_RECORD]
        checksums = [r for r in records if r["type"] == CHECKSUM_RECORD]
        # Kernel-site corruption is invisible to the hop checksums …
        assert checksums == []
        # … and caught by the digest exchange within the first iteration.
        assert digests and digests[0]["iteration"] == 0
        # Localization narrowed the whole strategy's link set within the
        # log2 probe-round bound, naming the guilty link.
        localizations = [r for r in records if r["type"] == LOCALIZATION_RECORD]
        assert localizations
        for record in localizations:
            assert record["within_bound"]
            assert record["rounds"] <= probe_round_bound(record["candidates"])
        assert {r["link"] for r in localizations if r["link"]} == {LINK}
        assert report.probe_rounds > 0
        assert report.convictions == [LINK]
        assert report.quarantined_links == ["n0->n1", "n1->n0"]
        assert report.all_exact
        final, expected = report.final_outputs(), reference.final_outputs()
        for rank in final:
            np.testing.assert_array_equal(final[rank], expected[rank])

    def test_conviction_respects_hysteresis_threshold(self):
        report = run_corruption(corruption_plan(SITE_KERNEL, rate=0.6), IntegrityConfig())
        records = monitor_records(report)
        convictions = [r for r in records if r["type"] == CONVICTION_RECORD]
        assert len(convictions) == 1
        assert convictions[0]["suspicion"] >= IntegrityConfig().conviction_threshold

    def test_quarantine_drives_two_phase_resynthesis(self):
        report = run_corruption(corruption_plan(SITE_WIRE), IntegrityConfig())
        records = monitor_records(report)
        quarantines = [r for r in records if r["type"] == QUARANTINE_RECORD]
        resyntheses = [r for r in records if r["type"] == RESYNTHESIS_RECORD]
        assert [r["link"] for r in quarantines] == [LINK]
        assert [r["link"] for r in resyntheses] == [LINK]
        # The quarantine and the re-install both land in the chaos trace
        # (the install goes through the control plane's prepare/commit).
        kinds = [event[1] for event in report.event_trace]
        assert "chaos-quarantine" in kinds
        assert "chaos-resynthesis" in kinds
        assert report.resyntheses >= 1

    def test_quarantine_can_be_disabled(self):
        config = IntegrityConfig(quarantine=False)
        report = run_corruption(corruption_plan(SITE_WIRE), config)
        assert report.convictions == [LINK]
        assert report.quarantined_links == []

    def test_summary_has_total_checksum_coverage(self):
        report = run_corruption(corruption_plan(SITE_KERNEL, rate=0.6), IntegrityConfig())
        summary = monitor_records(report)[-1]
        assert summary["type"] == SUMMARY_RECORD
        assert summary["units_seen"] == summary["units_verified"] > 0
        assert summary["convicted"] == [LINK]

    def test_healed_log_lints_clean(self):
        for site, rate in ((SITE_WIRE, 1.0), (SITE_KERNEL, 0.6)):
            report = run_corruption(corruption_plan(site, rate=rate), IntegrityConfig())
            assert lint_integrity_records(monitor_records(report)) == []

    def test_clean_run_raises_no_alarms(self):
        plan = FaultPlan(seed=CHAOS_SEED, iterations=2)
        report = run_corruption(plan, IntegrityConfig())
        records = monitor_records(report)
        assert report.convictions == []
        assert report.quarantined_links == []
        kinds = {r["type"] for r in records}
        assert CHECKSUM_RECORD not in kinds
        assert DIGEST_RECORD not in kinds
        assert report.all_exact
        assert lint_integrity_records(records) == []


class TestReplayDeterminism:
    def test_same_seed_same_trace_log_and_tensors(self):
        def run():
            return run_corruption(
                corruption_plan(SITE_KERNEL, rate=0.6), IntegrityConfig()
            )

        first, second = run(), run()
        assert first.plan_signature == second.plan_signature
        assert first.corruption_trace == second.corruption_trace
        assert first.integrity_log == second.integrity_log
        assert first.event_trace == second.event_trace
        for rank, tensor in first.final_outputs().items():
            np.testing.assert_array_equal(tensor, second.final_outputs()[rank])

    def test_different_seeds_corrupt_differently(self):
        traces = {
            run_corruption(
                corruption_plan(SITE_KERNEL, seed=seed, rate=0.6), IntegrityConfig()
            ).corruption_trace
            for seed in (CHAOS_SEED, CHAOS_SEED + 1, CHAOS_SEED + 2)
        }
        assert len(traces) > 1

    def test_data_plane_parties_are_restored_after_a_run(self):
        plane = data_plane()
        before = (plane.corruptor, plane.monitor)
        run_corruption(corruption_plan(SITE_WIRE), IntegrityConfig())
        assert (plane.corruptor, plane.monitor) == before


class TestIntegrityLint:
    """The lint catches narrations that break the causal chain."""

    def healed_records(self):
        report = run_corruption(corruption_plan(SITE_KERNEL, rate=0.6), IntegrityConfig())
        return monitor_records(report)

    def test_missing_header_flagged(self):
        records = self.healed_records()[1:]
        assert any(
            v.check == "integrity-header" for v in lint_integrity_records(records)
        )

    def test_conviction_without_suspicions_flagged(self):
        records = [
            r
            for r in self.healed_records()
            if r["type"] not in ("suspicion",)
        ]
        assert any(
            v.check == "integrity-conviction-evidence"
            for v in lint_integrity_records(records)
        )

    def test_quarantine_without_conviction_flagged(self):
        records = [
            r for r in self.healed_records() if r["type"] != CONVICTION_RECORD
        ]
        assert any(
            v.check == "integrity-quarantine"
            for v in lint_integrity_records(records)
        )

    def test_quarantine_without_resynthesis_flagged(self):
        records = [
            r for r in self.healed_records() if r["type"] != RESYNTHESIS_RECORD
        ]
        assert any(
            v.check == "integrity-quarantine"
            for v in lint_integrity_records(records)
        )

    def test_partial_checksum_coverage_flagged(self):
        records = self.healed_records()
        summary = dict(records[-1])
        summary["units_verified"] = summary["units_seen"] - 1
        assert any(
            v.check == "integrity-coverage"
            for v in lint_integrity_records(records[:-1] + [summary])
        )

    def test_conviction_by_elimination_flagged(self):
        records = self.healed_records()
        doctored = []
        for record in records:
            record = dict(record)
            if record["type"] == "probe-round":
                record["dirty_links"] = []
            doctored.append(record)
        assert any(
            v.check == "integrity-conviction-evidence"
            for v in lint_integrity_records(doctored)
        )

    def test_time_regression_flagged(self):
        records = [dict(r) for r in self.healed_records()]
        for record in reversed(records):
            if "time" in record:
                record["time"] = -1.0
                break
        assert any(
            v.check == "integrity-monotonic" for v in lint_integrity_records(records)
        )


def monitor_records(report):
    """The report's integrity log, parsed back from its JSONL export."""
    import json

    return [json.loads(line) for line in report.integrity_log.splitlines() if line]


def _integrity_export(site, rate, seed=CHAOS_SEED):
    """One corrupting run under a fresh enabled hub; returns its exports."""
    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        run_corruption(corruption_plan(site, seed=seed, rate=rate), IntegrityConfig())
        return to_jsonl(fresh), fresh.metrics.to_prometheus(), fresh
    finally:
        set_hub(previous)


class TestIntegrityMetricsGroup:
    """Satellite: the ``integrity`` metrics group flows through the
    existing exporters like every other group."""

    WIRE_EXPECTED = ("integrity_checksum_failures_total",)
    KERNEL_EXPECTED = (
        "integrity_digest_mismatches_total",
        "integrity_probe_rounds_total",
        "integrity_probes_total",
        "integrity_suspicion",
        "integrity_convictions_total",
        "integrity_quarantines_total",
        "integrity_retries_total",
    )

    def test_wire_run_registers_checksum_metrics(self):
        _jsonl, prometheus, hub = _integrity_export(SITE_WIRE, 1.0)
        names = hub.metrics.names()
        for name in self.WIRE_EXPECTED:
            assert name in names
        assert f'integrity_checksum_failures_total{{link="{LINK}"}}' in prometheus

    def test_kernel_run_registers_the_full_group(self):
        jsonl, prometheus, hub = _integrity_export(SITE_KERNEL, 0.6)
        names = hub.metrics.names()
        for name in self.KERNEL_EXPECTED:
            assert name in names
        run = parse_jsonl(jsonl)
        for name in self.KERNEL_EXPECTED:
            assert name in run.metrics
        assert "# TYPE integrity_convictions_total counter" in prometheus
        assert f'integrity_convictions_total{{link="{LINK}"}}' in prometheus

    def test_integrity_instants_land_in_the_trace(self):
        jsonl, _prometheus, _hub = _integrity_export(SITE_KERNEL, 0.6)
        run = parse_jsonl(jsonl)
        names = {
            record.get("name")
            for record in run.records
            if record.get("cat") == "integrity"
        }
        for expected in ("digest-mismatch", "conviction", "quarantine"):
            assert expected in names

    def test_same_seed_exports_are_byte_identical(self):
        first = _integrity_export(SITE_KERNEL, 0.6)
        second = _integrity_export(SITE_KERNEL, 0.6)
        assert first[0] == second[0]  # JSONL
        assert first[1] == second[1]  # Prometheus exposition
