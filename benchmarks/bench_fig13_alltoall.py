"""Fig. 13 — AlltoAll algorithm bandwidth.

Paper: AdapCC averages 31 % better Algo.bw than NCCL (which implements
AlltoAll as ncclSend/ncclRecv pairs on one channel) and 14 % better than
MSCCL. Blink is absent — it "does not support AlltoAll in the multi-server
case", which this bench asserts.
"""

import pytest

from repro.bench import Table, geometric_mean, measure_algorithm_bandwidth
from repro.errors import SynthesisError
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.synthesis import Primitive

TENSOR_BYTES = 64 * MB

CONFIGS = [
    ("A100:(4,4)", make_config([4, 4])),
    ("A100:(4,4,4,4)", make_config([4, 4, 4, 4])),
    ("A100:(4,4) V100:(4,4)", make_config([4, 4], [4, 4])),
    ("A100:(2,2) V100:(4,4)", make_config([2, 2], [4, 4])),
]

BACKENDS = ["adapcc", "nccl", "msccl"]


def measure():
    results = {}
    for label, specs in CONFIGS:
        for backend in BACKENDS:
            results[(label, backend)] = measure_algorithm_bandwidth(
                specs, backend, Primitive.ALLTOALL, TENSOR_BYTES, max_chunks=4
            )
    return results


def test_fig13_alltoall_algorithm_bandwidth(run_once):
    results = run_once(measure)

    table = Table("Fig. 13 — AlltoAll Algo.bw (GB/s), 64 MB per rank", BACKENDS)
    speedups = {b: [] for b in BACKENDS[1:]}
    for label, _specs in CONFIGS:
        table.add_row(label, [results[(label, b)] / 1e9 for b in BACKENDS])
        for baseline in BACKENDS[1:]:
            speedups[baseline].append(
                results[(label, "adapcc")] / results[(label, baseline)]
            )
    table.show()
    print(
        f"AdapCC vs NCCL:  geomean {geometric_mean(speedups['nccl']):.2f}x (paper: +31 %)"
    )
    print(
        f"AdapCC vs MSCCL: geomean {geometric_mean(speedups['msccl']):.2f}x (paper: +14 %)"
    )

    assert geometric_mean(speedups["nccl"]) > 1.0
    # NCCL (one channel) trails MSCCL (two channels), as in the paper.
    assert geometric_mean(speedups["nccl"]) >= geometric_mean(speedups["msccl"]) * 0.97


def test_fig13_blink_unsupported_multiserver():
    """The reason Blink is absent from the paper's Fig. 13."""
    from repro.bench.harness import BenchEnvironment

    env = BenchEnvironment(make_config([4, 4]), "blink")
    with pytest.raises(SynthesisError):
        env.backend.plan(Primitive.ALLTOALL, TENSOR_BYTES, env.ranks)
