"""Tests for the analysis pass framework (registry, cache, runner, exports)."""

import json

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.cache import (
    AnalysisCache,
    CACHE_SCHEMA,
    fingerprint_paths,
    pass_fingerprint,
)
from repro.analysis.findings import Finding, from_violation, severity_rank
from repro.analysis.registry import (
    PassSpec,
    RuleSpec,
    _REGISTRY,
    get_pass,
    iter_passes,
    pass_names,
    register,
)
from repro.analysis.runner import run_passes
from repro.analysis.sarif import to_sarif
from repro.analysis.verify_strategy import Violation

CANONICAL = [
    "source",
    "strategies",
    "traces",
    "chaos",
    "recovery",
    "telemetry",
    "observe",
    "races",
    "critpath",
    "integrity",
    "fleet",
]


class TestRegistry:
    def test_canonical_pass_order(self):
        assert pass_names() == CANONICAL

    def test_unknown_pass_raises_with_known_names(self):
        with pytest.raises(KeyError, match="strategies"):
            get_pass("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            register(get_pass("source"))

    def test_every_rule_has_a_valid_severity(self):
        for spec in iter_passes():
            assert spec.rules, spec.name
            for rule in spec.rules:
                severity_rank(rule.severity)  # raises on junk

    def test_serial_passes_marked(self):
        serial = {spec.name for spec in iter_passes() if spec.serial}
        assert serial == {
            "telemetry",
            "observe",
            "races",
            "critpath",
            "integrity",
            "fleet",
        }


class TestFindings:
    def test_suppression_key_ignores_line_numbers(self):
        a = Finding("wall-clock", "m", pass_name="source", file="x.py", line=3)
        b = Finding("wall-clock", "m", pass_name="source", file="x.py", line=99)
        assert a.suppression_key == b.suppression_key == "source:wall-clock:x.py"

    def test_from_violation_splits_source_locators(self):
        f = from_violation(
            Violation("wall-clock", "runtime/mod.py:17", "detail"), "source"
        )
        assert (f.file, f.line) == ("runtime/mod.py", 17)
        f = from_violation(Violation("deadlock", "sc0.flow2", "detail"), "strategies")
        assert (f.file, f.line) == (None, None)
        assert f.subject == "sc0.flow2"

    def test_invalid_severity_rejected_eagerly(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("x", "m", severity="fatal")

    def test_dict_round_trip(self):
        f = Finding("c", "m", pass_name="p", severity="warning", subject="s")
        assert Finding.from_dict(f.to_dict()) == f


class TestCacheStore:
    def test_fingerprint_tracks_content_and_path_set(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text("x = 1\n")
        base = fingerprint_paths(tmp_path, ["sub"])
        assert fingerprint_paths(tmp_path, ["sub"]) == base
        (tmp_path / "sub" / "a.py").write_text("x = 2\n")
        edited = fingerprint_paths(tmp_path, ["sub"])
        assert edited != base
        (tmp_path / "sub" / "b.py").write_text("")
        assert fingerprint_paths(tmp_path, ["sub"]) != edited

    def test_missing_input_is_itself_a_change(self, tmp_path):
        present = fingerprint_paths(tmp_path, ["gone.py"])
        (tmp_path / "gone.py").write_text("x = 1\n")
        assert fingerprint_paths(tmp_path, ["gone.py"]) != present

    def test_pass_identity_and_version_key_the_cache(self):
        base = pass_fingerprint("p", 1, "abc")
        assert pass_fingerprint("p", 2, "abc") != base
        assert pass_fingerprint("q", 1, "abc") != base

    def test_store_round_trip_and_schema_guard(self, tmp_path):
        cache = AnalysisCache(tmp_path / "c")
        findings = [Finding("c", "m", pass_name="p", severity="warning")]
        assert cache.load("k") is None
        cache.store("k", "p", findings)
        assert cache.load("k") == findings
        entry = tmp_path / "c" / "k.json"
        payload = json.loads(entry.read_text())
        payload["schema"] = CACHE_SCHEMA + 1
        entry.write_text(json.dumps(payload))
        assert cache.load("k") is None  # stale schema = miss
        entry.write_text("{corrupt")
        assert cache.load("k") is None


@pytest.fixture
def fake_passes(tmp_path, monkeypatch):
    """Two registered counting passes over disjoint inputs of a tmp tree."""
    (tmp_path / "alpha").mkdir()
    (tmp_path / "alpha" / "mod.py").write_text("a = 1\n")
    (tmp_path / "beta").mkdir()
    (tmp_path / "beta" / "mod.py").write_text("b = 1\n")
    monkeypatch.setattr("repro.analysis.runner._package_root", lambda: tmp_path)
    runs = {"fake-alpha": 0, "fake-beta": 0}

    def body(name):
        def run(ctx):
            runs[name] += 1
            return [Finding("fake-code", "seen", pass_name=name)]

        return run

    for name, inputs in (("fake-alpha", ("alpha",)), ("fake-beta", ("beta",))):
        register(
            PassSpec(
                name=name,
                description="test pass",
                title=name,
                rules=(RuleSpec("fake-code", "error", "test"),),
                run=body(name),
                inputs=inputs,
            )
        )
    yield tmp_path, runs
    _REGISTRY.pop("fake-alpha")
    _REGISTRY.pop("fake-beta")


class TestIncrementalRunner:
    def test_edit_reruns_only_dependent_passes(self, fake_passes, tmp_path):
        tree, runs = fake_passes
        cache = AnalysisCache(tmp_path / "cache")
        names = ["fake-alpha", "fake-beta"]

        cold = run_passes(names=names, cache=cache)
        assert [r.cached for r in cold] == [False, False]
        assert runs == {"fake-alpha": 1, "fake-beta": 1}

        warm = run_passes(names=names, cache=cache)
        assert [r.cached for r in warm] == [True, True]
        assert runs == {"fake-alpha": 1, "fake-beta": 1}
        assert warm[0].findings == cold[0].findings

        (tree / "alpha" / "mod.py").write_text("a = 2\n")
        after_edit = run_passes(names=names, cache=cache)
        assert [r.cached for r in after_edit] == [False, True]
        assert runs == {"fake-alpha": 2, "fake-beta": 1}

    def test_no_cache_always_runs(self, fake_passes):
        _tree, runs = fake_passes
        run_passes(names=["fake-alpha"], cache=None)
        run_passes(names=["fake-alpha"], cache=None)
        assert runs["fake-alpha"] == 2

    def test_selection_keeps_canonical_order(self, fake_passes):
        results = run_passes(names=["fake-beta", "fake-alpha"], cache=None)
        assert [r.spec.name for r in results] == ["fake-alpha", "fake-beta"]

    def test_crashing_pass_reports_error_not_exception(self):
        def boom(ctx):
            raise RuntimeError("kaput")

        register(
            PassSpec(
                name="fake-crash",
                description="test pass",
                title="fake-crash",
                rules=(RuleSpec("fake-code", "error", "test"),),
                run=boom,
                inputs=(".",),
            )
        )
        try:
            (result,) = run_passes(names=["fake-crash"], cache=None)
        finally:
            _REGISTRY.pop("fake-crash")
        assert result.error is not None and "kaput" in result.error
        assert not result.ok


class TestSarifExport:
    def _results(self):
        return run_passes(names=["source"], cache=None)

    def test_sarif_shape_and_rule_metadata(self):
        doc = json.loads(to_sarif(self._results()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert len(rule_ids) == len(set(rule_ids))  # unique even with shared codes
        assert "source/wall-clock" in rule_ids
        assert run["invocations"][0]["executionSuccessful"] is True
        for result in run["results"]:
            assert result["ruleId"] in rule_ids

    def test_sarif_byte_identical_across_jobs_and_cache(self, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        names = ["source", "races"]  # one parallel-safe + one serial pass
        cold = to_sarif(run_passes(names=names, jobs=4, cache=cache))
        warm = to_sarif(run_passes(names=names, jobs=4, cache=cache))
        serial = to_sarif(run_passes(names=names, jobs=1, cache=None))
        assert cold == warm == serial


class TestCliContract:
    def test_list_exits_zero_and_names_every_pass(self, capsys):
        assert analysis_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in CANONICAL:
            assert name in out

    def test_clean_source_pass_exit_zero(self, capsys):
        assert analysis_main(["--source", "--no-cache"]) == 0
        assert "ok   source lint" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bogus.jsonl"
        bad.write_text('{"type": "span", "start": "not-a-number"}\n')
        assert analysis_main(["--telemetry", str(bad), "--no-cache"]) == 1
        assert "FAIL telemetry lint" in capsys.readouterr().out

    def test_internal_error_exit_two(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.passes.run_source_pass",
            lambda root=None, echo=None: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        assert analysis_main(["--source", "--no-cache"]) == 2
        assert "internal error" in capsys.readouterr().out

    def test_fail_on_threshold_and_baseline_suppression(self, tmp_path, capsys):
        bad = tmp_path / "bogus.jsonl"
        bad.write_text('{"type": "span", "start": "not-a-number"}\n')
        argv = ["--telemetry", str(bad), "--no-cache"]
        baseline = tmp_path / "baseline.json"
        assert analysis_main(argv + ["--write-baseline", str(baseline)]) == 0
        assert baseline.is_file()
        assert analysis_main(argv + ["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out
        # Without the baseline the same findings still gate.
        assert analysis_main(argv) == 1

    def test_sarif_cli_output_is_parseable(self, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        assert (
            analysis_main(
                ["--source", "--no-cache", "--format", "sarif", "--output", str(out_file)]
            )
            == 0
        )
        doc = json.loads(out_file.read_text())
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analysis"
        assert capsys.readouterr().out == ""  # report went to the file

    def test_json_format_envelope(self, capsys):
        assert analysis_main(["--source", "--no-cache", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        (entry,) = doc["passes"]
        assert entry["name"] == "source"
        assert entry["ok"] is True
