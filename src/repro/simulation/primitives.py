"""Composite events: wait-for-all and wait-for-any.

These mirror SimPy's condition events but are deliberately simpler: an
:class:`AllOf` succeeds with the list of child values once every child has
succeeded (and fails fast if any child fails); an :class:`AnyOf` mirrors the
first child to trigger.
"""

from __future__ import annotations

from typing import Any, List

from repro.simulation.engine import Event, Simulator


class AllOf(Event):
    """Triggers when all child events have succeeded.

    The value is the list of child values in the order the children were
    given. If any child fails, this event fails immediately with the same
    exception (remaining children are left untouched).
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: Simulator, events: List[Event]):
        super().__init__(sim)
        self._events = events
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self._events])


class AnyOf(Event):
    """Triggers as soon as any child event triggers, mirroring its outcome.

    The value is a ``(index, value)`` pair identifying which child fired
    first. Failure of the first child fails this event.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: Simulator, events: List[Event]):
        super().__init__(sim)
        self._events = events
        if not events:
            self.succeed((None, None))
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int):
        def on_child(event: Event) -> None:
            if self._triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)

        return on_child


def first_value(result: Any) -> Any:
    """Unpack the value from an :class:`AnyOf` result pair."""
    _index, value = result
    return value
