"""Tests for the logical topology graph and the probe-based detector."""

import pytest

from repro.errors import TopologyError
from repro.hardware import Cluster, a100_server, make_hetero_cluster, make_homo_cluster
from repro.hardware.presets import fragmented_server
from repro.network.cost_model import AlphaBeta
from repro.simulation import Simulator
from repro.topology import Detector, LogicalTopology
from repro.topology.graph import EdgeKind, NodeKind, gpu_node, nic_node


def build(specs):
    sim = Simulator()
    cluster = Cluster(sim, specs)
    return sim, cluster, LogicalTopology.from_cluster(cluster)


class TestLogicalTopology:
    def test_node_counts(self):
        _, cluster, topo = build(make_homo_cluster(num_servers=2))
        assert len(topo.gpu_nodes) == 8
        assert len(topo.nic_nodes) == 2

    def test_intra_instance_nvlink_edges(self):
        _, _, topo = build(make_homo_cluster(num_servers=1))
        edge = topo.edge(gpu_node(0), gpu_node(1))
        assert edge.kind is EdgeKind.NVLINK

    def test_pcie_edges_when_no_nvlink(self):
        _, _, topo = build([fragmented_server()])
        edge = topo.edge(gpu_node(0), gpu_node(1))
        assert edge.kind is EdgeKind.PCIE

    def test_network_edges_full_mesh(self):
        _, _, topo = build(make_homo_cluster(num_servers=3))
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert topo.edge(nic_node(a), nic_node(b)).kind is EdgeKind.NETWORK
        assert not topo.has_edge(nic_node(0), nic_node(0))

    def test_local_edges_connect_gpus_to_their_nic(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        assert topo.edge(gpu_node(0), nic_node(0)).kind is EdgeKind.LOCAL
        assert topo.edge(nic_node(0), gpu_node(0)).kind is EdgeKind.LOCAL
        assert not topo.has_edge(gpu_node(0), nic_node(1))

    def test_no_cross_instance_gpu_edges(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        assert not topo.has_edge(gpu_node(0), gpu_node(4))

    def test_nominal_matches_ground_truth_unshaped(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        edge = topo.edge(nic_node(0), nic_node(1))
        truth = edge.ground_truth()
        assert edge.nominal.alpha == pytest.approx(truth.alpha)
        assert edge.nominal.beta == pytest.approx(truth.beta)

    def test_effective_prefers_estimate(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        edge = topo.edge(nic_node(0), nic_node(1))
        assert edge.effective is edge.nominal
        est = AlphaBeta(1e-5, 1e-9)
        topo.set_estimate(nic_node(0), nic_node(1), est)
        assert edge.effective is est
        topo.clear_estimates()
        assert edge.effective is edge.nominal

    def test_profiled_edges_are_nvlink_and_network(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        kinds = {e.kind for e in topo.profiled_edges()}
        assert kinds == {EdgeKind.NVLINK, EdgeKind.NETWORK}

    def test_hetero_network_edge_bottleneck_is_slow_nic(self):
        _, cluster, topo = build(make_hetero_cluster())
        fast_to_slow = topo.edge(nic_node(0), nic_node(2))
        # Bottleneck is the V100 server's 50 Gbps NIC (40 Gbps per stream).
        assert fast_to_slow.nominal.bandwidth == pytest.approx(5e9)

    def test_successors_and_predecessors(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        succ = topo.successors(gpu_node(0))
        assert gpu_node(1) in succ and nic_node(0) in succ
        assert gpu_node(0) in topo.predecessors(gpu_node(1))

    def test_path_edges_validates_adjacency(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        path = [gpu_node(0), nic_node(0), nic_node(1), gpu_node(4)]
        edges = topo.path_edges(path)
        assert [e.kind for e in edges] == [EdgeKind.LOCAL, EdgeKind.NETWORK, EdgeKind.LOCAL]
        with pytest.raises(TopologyError):
            topo.path_edges([gpu_node(0), gpu_node(4)])

    def test_to_networkx_attributes(self):
        _, _, topo = build(make_homo_cluster(num_servers=2))
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 10
        data = graph.get_edge_data(nic_node(0), nic_node(1))
        # Single-stream achievable rate on the 100 Gbps RDMA pair.
        assert data["bandwidth"] == pytest.approx(7.5e9)

    def test_nvlink_override_rejected_when_absent(self):
        sim = Simulator()
        cluster = Cluster(sim, [fragmented_server()])
        with pytest.raises(TopologyError):
            LogicalTopology.from_cluster(cluster, nvlink_pairs={0: [(0, 1)]})


class TestDetector:
    def detect(self, specs):
        sim = Simulator()
        cluster = Cluster(sim, specs)
        return cluster, Detector(cluster).detect()

    def test_nic_numa_affinity_recovered(self):
        cluster, report = self.detect(make_homo_cluster(num_servers=2))
        for instance in cluster.instances:
            truth = instance.primary_nic.numa_node
            assert report.instances[instance.instance_id].nic_numa_node == truth

    def test_nvlink_pairs_recovered_full_clique(self):
        cluster, report = self.detect(make_homo_cluster(num_servers=1))
        truth = cluster.instances[0].spec.resolved_nvlink_pairs()
        assert report.instances[0].nvlink_pairs == truth

    def test_nvlink_pairs_recovered_partial(self):
        pairs = frozenset({(0, 1), (2, 3)})
        cluster, report = self.detect([a100_server(nvlink_pairs=pairs)])
        assert report.instances[0].nvlink_pairs == pairs

    def test_no_nvlink_detected_on_fragmented_server(self):
        _, report = self.detect([fragmented_server()])
        assert report.instances[0].nvlink_pairs == frozenset()

    def test_same_switch_pairs_recovered(self):
        cluster, report = self.detect([fragmented_server()])
        instance = cluster.instances[0]
        truth = {
            (a, b)
            for a in range(4)
            for b in range(a + 1, 4)
            if instance.same_pcie_switch(a, b)
        }
        assert set(report.instances[0].same_switch_pairs) == truth

    def test_nic_colocated_gpus_recovered(self):
        cluster, report = self.detect([fragmented_server()])
        instance = cluster.instances[0]
        nic_switch = instance.primary_nic.pcie_switch
        truth = {g.local_index for g in instance.gpus if g.pcie_switch == nic_switch}
        assert set(report.instances[0].nic_colocated_gpus) == truth

    def test_probe_time_recorded(self):
        _, report = self.detect(make_homo_cluster(num_servers=1))
        assert report.instances[0].probe_seconds > 0

    def test_report_feeds_topology_builder(self):
        sim = Simulator()
        cluster = Cluster(sim, [a100_server(nvlink_pairs=frozenset({(0, 1)}))])
        report = Detector(cluster).detect()
        topo = LogicalTopology.from_cluster(
            cluster, nvlink_pairs=report.nvlink_pairs_by_instance()
        )
        assert topo.edge(gpu_node(0), gpu_node(1)).kind is EdgeKind.NVLINK
        assert topo.edge(gpu_node(0), gpu_node(2)).kind is EdgeKind.PCIE

    def test_detection_concurrent_across_instances(self):
        """Probe time for N instances should be ~the per-instance time, not N x."""
        sim1 = Simulator()
        c1 = Cluster(sim1, make_homo_cluster(num_servers=1))
        Detector(c1).detect()
        t1 = sim1.now

        sim4 = Simulator()
        c4 = Cluster(sim4, make_homo_cluster(num_servers=4))
        Detector(c4).detect()
        t4 = sim4.now
        assert t4 < 1.5 * t1
