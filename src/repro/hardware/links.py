"""Link specifications and unit helpers.

All internal quantities are SI: **bytes**, **seconds**, **bytes/second**.
The helpers below convert from the units papers quote (Gbps NICs, GB/s
NVLinks, microsecond latencies) so presets read like the hardware spec
sheets they come from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TopologyError

# -- unit helpers --------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
GiB = 1 << 30


def gbps(value: float) -> float:
    """Gigabits/second → bytes/second (network links are quoted in Gbps)."""
    return value * 1e9 / 8.0


def GBps(value: float) -> float:
    """Gigabytes/second → bytes/second (NVLink/PCIe are quoted in GB/s)."""
    return value * 1e9


def us(value: float) -> float:
    """Microseconds → seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds → seconds."""
    return value * 1e-3


class LinkType(enum.Enum):
    """Physical interconnect classes the paper distinguishes."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    RDMA = "rdma"
    TCP = "tcp"
    LOOPBACK = "loopback"

    @property
    def is_network(self) -> bool:
        """Whether this is an inter-instance (NIC-to-NIC) link type."""
        return self in (LinkType.RDMA, LinkType.TCP)


@dataclass(frozen=True)
class LinkSpec:
    """Static properties of one directed link.

    ``per_stream_cap`` bounds the rate a single stream (one connection /
    CUDA stream) achieves; the paper measures ~20 Gbps for one TCP channel
    on a 100 Gbps NIC due to kernel-space overhead.

    ``duplex_factor`` bounds the *sum* of concurrent send and receive rates
    to ``duplex_factor × bandwidth``. NICs are nominally full duplex, but
    host-side staging (device↔host copies, proxy threads) keeps real
    bidirectional throughput below 2× line rate; ~1.5× is typical without
    GPUDirect. ``inf`` models a perfect full-duplex link.
    """

    type: LinkType
    bandwidth: float  # bytes/second
    latency: float = 0.0  # seconds
    per_stream_cap: float = float("inf")  # bytes/second
    duplex_factor: float = float("inf")

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise TopologyError(f"{self.type.value} link: bandwidth must be positive")
        if self.latency < 0:
            raise TopologyError(f"{self.type.value} link: negative latency")
        if self.per_stream_cap <= 0:
            raise TopologyError(f"{self.type.value} link: per-stream cap must be positive")
        if self.duplex_factor < 1.0:
            raise TopologyError(f"{self.type.value} link: duplex factor must be >= 1")

    def scaled(self, factor: float) -> "LinkSpec":
        """A copy with bandwidth multiplied by ``factor`` (for shaping tests)."""
        return LinkSpec(
            type=self.type,
            bandwidth=self.bandwidth * factor,
            latency=self.latency,
            per_stream_cap=self.per_stream_cap,
        )


@dataclass(frozen=True)
class NicSpec:
    """A network interface card on an instance.

    ``numa_node`` and ``pcie_switch`` place the NIC inside the instance so
    the detector has ground truth to recover.
    """

    name: str
    link: LinkSpec
    numa_node: int = 0
    pcie_switch: int = 0

    def __post_init__(self) -> None:
        if not self.link.type.is_network:
            raise TopologyError(f"NIC {self.name}: link type must be RDMA or TCP")


#: Reference link specs used by presets. Latencies follow the order of
#: magnitude measured on real hardware; bandwidths are the effective
#: (achievable) values rather than marketing peaks.
NVLINK_A100 = LinkSpec(LinkType.NVLINK, bandwidth=GBps(200), latency=us(2))
NVLINK_V100 = LinkSpec(LinkType.NVLINK, bandwidth=GBps(100), latency=us(2.5))
PCIE_GEN4 = LinkSpec(LinkType.PCIE, bandwidth=GBps(16), latency=us(5))
PCIE_GEN3 = LinkSpec(LinkType.PCIE, bandwidth=GBps(8), latency=us(6))
# A single RDMA channel (one QP driven by one proxy thread / CUDA stream)
# does not saturate a 100 Gbps NIC — ~60 Gbps is typical; parallel channels
# recover the line rate. This is why NCCL's single inter-server channel
# "fails to saturate the available bandwidth" (Sec. VI-D) and why AdapCC's
# M parallel sub-collectives help even on RDMA (Fig. 19a).
RDMA_100G = LinkSpec(
    LinkType.RDMA,
    bandwidth=gbps(100),
    latency=us(3),
    per_stream_cap=gbps(60),
    duplex_factor=1.5,
)
RDMA_50G = LinkSpec(
    LinkType.RDMA,
    bandwidth=gbps(50),
    latency=us(3.5),
    per_stream_cap=gbps(40),
    duplex_factor=1.5,
)
# One TCP connection peaks around 20 Gbps due to kernel-space overhead
# (Sec. VI-D).
TCP_100G = LinkSpec(
    LinkType.TCP,
    bandwidth=gbps(100),
    latency=us(30),
    per_stream_cap=gbps(20),
    duplex_factor=1.4,
)
TCP_50G = LinkSpec(
    LinkType.TCP,
    bandwidth=gbps(50),
    latency=us(35),
    per_stream_cap=gbps(20),
    duplex_factor=1.4,
)
