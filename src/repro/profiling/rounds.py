"""The interference-free inter-instance probing schedule (Fig. 5b).

With N instances there are N−1 rounds separated by barriers; in round i,
instance n probes instance (n+i) mod N. Every instance therefore has
exactly one outgoing and one incoming probe flow per round — no ingress or
egress port ever carries two probe flows at once, which keeps the fitted
values clean.
"""

from __future__ import annotations

from typing import List, Tuple


def inter_instance_rounds(num_instances: int) -> List[List[Tuple[int, int]]]:
    """Rounds of (source instance, destination instance) probe flows.

    Returns N−1 rounds; round i holds the flows n → (n+i) mod N for every
    instance n.
    """
    if num_instances < 1:
        raise ValueError("need at least one instance")
    rounds: List[List[Tuple[int, int]]] = []
    for i in range(1, num_instances):
        rounds.append([(n, (n + i) % num_instances) for n in range(num_instances)])
    return rounds


def validate_round(flows: List[Tuple[int, int]]) -> bool:
    """Check the no-interference property of one round.

    True iff no instance appears twice as a source or twice as a
    destination (one transmission per ingress/egress port at a time).
    """
    sources = [src for src, _ in flows]
    destinations = [dst for _, dst in flows]
    return len(set(sources)) == len(sources) and len(set(destinations)) == len(destinations)
