# ruff: noqa
"""Seeded hazard: wall-clock reads hidden behind import aliases.

The original lint only matched the literal `time.time()` attribute form;
these spellings are the regression fixtures for resolving imports before
matching. `perf_counter` stays allowed.
"""

import time as t
from time import time
from time import time as now
from datetime import datetime as dt
from time import perf_counter


def stamp_plain():
    return time()  # HAZARD: from-imported wall clock


def stamp_aliased():
    return now()  # HAZARD: aliased wall clock


def stamp_module_alias():
    return t.time()  # HAZARD: module alias wall clock


def stamp_datetime():
    return dt.now()  # HAZARD: aliased datetime.now

def stamp_allowed():
    return perf_counter()  # allowed: monotonic, not wall clock
