"""Static verification of synthesized strategies (DESIGN.md §5).

A :class:`Strategy` is the contract between the synthesizer and the
executor; this module checks the contract *before* any simulation runs, the
way SCCL/PCCL validate synthesized schedules. Every check names the paper
invariant it enforces:

* **flow conservation (eq. 1)** — each flow is a contiguous src→dst walk
  over existing topology edges, visiting only participant GPUs, and every
  participant contributes to every sub-collective;
* **partitioning** — sub-collective sizes S_m sum to the primitive's total
  traffic and chunk tiling covers each partition (C_m > 0,
  ⌈S_m/C_m⌉·C_m ≥ S_m);
* **root placement** — reduce-family flows all terminate at the root, which
  must aggregate (the executor gathers the ``("agg", root)`` unit there);
  broadcast-family flows all originate at the root;
* **aggregation (eq. 2–3)** — a_{m,g} flags sit on GPU nodes lying on a
  flow path, form acyclic merge dependencies, and never increase any
  edge's traffic-unit load beyond the unaggregated flow count;
* **behaviour tuples (Sec. IV-C.3)** — the root never sends and a kernel
  only runs where the synthesizer enabled aggregation; a relay with a
  single active upstream branch never launches a kernel;
* **deadlock freedom** — the chunk-level send/recv dependency graph the
  executor would build (senders, aggregators, sources) reaches every
  terminal slot from the sources; an unreachable terminal is a cycle the
  runtime would only discover as an empty event queue.

:func:`verify_strategy` returns structured :class:`Violation` records;
:func:`assert_valid` raises :class:`StrategyVerificationError` (which is
also a :class:`SynthesisError`) when any are found.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CoordinationError, StrategyVerificationError
from repro.relay.behavior import behavior_tuples
from repro.synthesis.evaluator import edge_units
from repro.synthesis.strategy import Primitive, Strategy, SubCollective
from repro.topology.graph import LogicalTopology, NodeId, NodeKind, gpu_node

#: Relative tolerance for floating-point size comparisons.
_REL_TOL = 1e-6

#: Pipeline modes, mirroring :mod:`repro.runtime.executor` (string-equal by
#: contract; the executor's preflight check round-trips through here).
MODE_MERGE = "merge"
MODE_GROUPED = "grouped"
MODE_INDEPENDENT = "independent"

#: Primitives whose flows all terminate at the sub-collective root.
_REDUCE_FAMILY = (Primitive.REDUCE, Primitive.ALLREDUCE, Primitive.REDUCE_SCATTER)


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a static analysis pass.

    ``check`` is a stable kebab-case identifier of the violated invariant,
    ``subject`` locates it (sub-collective / flow / node), ``detail``
    explains it.
    """

    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.detail}"


def verify_strategy(strategy: Strategy, topology: LogicalTopology) -> List[Violation]:
    """Run every static check; returns all violations found (empty = valid)."""
    violations: List[Violation] = []
    known_nodes = set(topology.nodes)
    participants = list(strategy.participants)
    pset = set(participants)

    if len(pset) != len(participants):
        violations.append(
            Violation("participants", "strategy", "duplicate participant ranks")
        )
    for rank in pset:
        if gpu_node(rank) not in known_nodes:
            violations.append(
                Violation(
                    "participants", "strategy", f"rank {rank} is not in the topology"
                )
            )

    total = sum(sc.size for sc in strategy.subcollectives)
    expected = Strategy.expected_total_size(
        strategy.primitive, strategy.tensor_size, len(pset)
    )
    if abs(total - expected) > _REL_TOL * max(1.0, abs(expected)):
        violations.append(
            Violation(
                "partition-sum",
                "strategy",
                f"sub-collective sizes sum to {total}, expected {expected} "
                f"for {strategy.primitive.value}",
            )
        )

    indices = [sc.index for sc in strategy.subcollectives]
    if len(set(indices)) != len(indices):
        violations.append(
            Violation("subcollective-index", "strategy", "duplicate sub-collective indices")
        )

    for sc in strategy.subcollectives:
        violations.extend(
            _verify_subcollective(strategy.primitive, sc, topology, known_nodes, pset)
        )
    return violations


def assert_valid(strategy: Strategy, topology: LogicalTopology) -> None:
    """Raise :class:`StrategyVerificationError` if the strategy is invalid."""
    violations = verify_strategy(strategy, topology)
    if violations:
        head = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise StrategyVerificationError(
            f"strategy failed verification: {head}{more}", violations
        )


# -- per-sub-collective checks ---------------------------------------------------------


def _verify_subcollective(
    primitive: Primitive,
    sc: SubCollective,
    topology: LogicalTopology,
    known_nodes: Set[NodeId],
    pset: Set[int],
) -> List[Violation]:
    violations: List[Violation] = []
    subject = f"sc{sc.index}"

    violations.extend(_check_chunking(sc, subject))
    violations.extend(_check_flows(primitive, sc, topology, known_nodes, pset, subject))
    violations.extend(_check_root(primitive, sc, pset, subject))
    violations.extend(_check_aggregation(primitive, sc, subject))
    violations.extend(_check_behavior(primitive, sc, pset, subject))
    violations.extend(_check_deadlock(primitive, sc, subject))
    return violations


def _check_chunking(sc: SubCollective, subject: str) -> List[Violation]:
    violations: List[Violation] = []
    if sc.size < 0:
        violations.append(
            Violation("partition-size", subject, f"negative partition size {sc.size}")
        )
    if sc.chunk_size <= 0:
        violations.append(
            Violation("chunk-size", subject, f"chunk size {sc.chunk_size} must be > 0")
        )
    elif sc.size > 0:
        covered = sc.num_chunks * sc.chunk_size
        if covered + _REL_TOL * sc.size < sc.size:
            violations.append(
                Violation(
                    "chunk-coverage",
                    subject,
                    f"{sc.num_chunks} chunks of {sc.chunk_size} B cover {covered} B "
                    f"of a {sc.size} B partition",
                )
            )
    return violations


def _check_flows(
    primitive: Primitive,
    sc: SubCollective,
    topology: LogicalTopology,
    known_nodes: Set[NodeId],
    pset: Set[int],
    subject: str,
) -> List[Violation]:
    violations: List[Violation] = []
    # AllReduce replays the reduce flows reversed for the broadcast stage,
    # so the reverse of every edge must exist too.
    check_reverse = primitive is Primitive.ALLREDUCE
    covered_ranks: Set[int] = set()
    for flow_idx, flow in enumerate(sc.flows):
        fsubject = f"{subject}.flow{flow_idx}"
        path = flow.path
        if len(path) < 2:
            violations.append(Violation("path-length", fsubject, "path has < 2 nodes"))
            continue
        if path[0] != flow.src or path[-1] != flow.dst:
            violations.append(
                Violation(
                    "path-endpoints",
                    fsubject,
                    f"path runs {path[0]}->{path[-1]}, flow declares {flow.src}->{flow.dst}",
                )
            )
        for endpoint in (flow.src, flow.dst):
            if endpoint.kind is not NodeKind.GPU:
                violations.append(
                    Violation(
                        "endpoint-kind", fsubject, f"flow endpoint {endpoint} is not a GPU"
                    )
                )
        gpus = [n for n in path if n.kind is NodeKind.GPU]
        if len(set(gpus)) != len(gpus):
            violations.append(Violation("gpu-revisit", fsubject, "path revisits a GPU"))
        for node in gpus:
            covered_ranks.add(node.index)
            if node.index not in pset:
                violations.append(
                    Violation(
                        "flow-conservation",
                        fsubject,
                        f"GPU {node} on the path is not a participant",
                    )
                )
        for node in path:
            if node not in known_nodes:
                violations.append(
                    Violation("unknown-node", fsubject, f"node {node} is not in the topology")
                )
        for a, b in zip(path, path[1:]):
            if a == b:
                violations.append(Violation("self-loop", fsubject, f"self-loop at {a}"))
                continue
            if not topology.has_edge(a, b):
                violations.append(
                    Violation(
                        "path-contiguity", fsubject, f"no topology edge {a}->{b}"
                    )
                )
            if check_reverse and not topology.has_edge(b, a):
                violations.append(
                    Violation(
                        "path-contiguity",
                        fsubject,
                        f"no reverse edge {b}->{a} for the broadcast stage",
                    )
                )
    if sc.flows:
        missing = pset - covered_ranks
        if missing:
            violations.append(
                Violation(
                    "participant-coverage",
                    subject,
                    f"participants {sorted(missing)} appear on no flow path "
                    "(their data would silently be dropped)",
                )
            )
    return violations


def _check_root(
    primitive: Primitive, sc: SubCollective, pset: Set[int], subject: str
) -> List[Violation]:
    violations: List[Violation] = []
    if primitive.has_root and sc.root is None:
        violations.append(
            Violation("root-missing", subject, f"{primitive.value} needs a root")
        )
    if sc.root is None:
        return violations
    if sc.root.kind is not NodeKind.GPU:
        violations.append(Violation("root-kind", subject, f"root {sc.root} is not a GPU"))
        return violations
    if sc.root.index not in pset:
        violations.append(
            Violation("root-participant", subject, f"root {sc.root} is not a participant")
        )
    if not sc.flows:
        return violations
    if primitive in _REDUCE_FAMILY:
        for flow_idx, flow in enumerate(sc.flows):
            if flow.dst != sc.root:
                violations.append(
                    Violation(
                        "root-placement",
                        f"{subject}.flow{flow_idx}",
                        f"reduce flow terminates at {flow.dst}, not the root {sc.root}",
                    )
                )
        if not sc.aggregates_at(sc.root):
            # The executor gathers the ("agg", root) unit at the root; a
            # non-aggregating root never produces it.
            violations.append(
                Violation(
                    "root-aggregation",
                    subject,
                    f"root {sc.root} does not aggregate, but the executor gathers "
                    "the merged unit there",
                )
            )
    elif primitive in (Primitive.BROADCAST, Primitive.ALLGATHER):
        for flow_idx, flow in enumerate(sc.flows):
            if flow.src != sc.root:
                violations.append(
                    Violation(
                        "root-placement",
                        f"{subject}.flow{flow_idx}",
                        f"broadcast flow originates at {flow.src}, not the root {sc.root}",
                    )
                )
    return violations


def _check_aggregation(
    primitive: Primitive, sc: SubCollective, subject: str
) -> List[Violation]:
    violations: List[Violation] = []
    flagged = sorted(node for node, flag in sc.aggregation.items() if flag)
    if flagged and not primitive.needs_aggregation:
        violations.append(
            Violation(
                "aggregation-primitive",
                subject,
                f"{primitive.value} does not aggregate, but nodes "
                f"{[str(n) for n in flagged]} are flagged",
            )
        )
        return violations
    path_nodes = {node for flow in sc.flows for node in flow.path}
    for node in flagged:
        if node.kind is not NodeKind.GPU:
            violations.append(
                Violation("aggregation-kind", subject, f"aggregation on non-GPU node {node}")
            )
        elif node not in path_nodes:
            violations.append(
                Violation(
                    "aggregation-off-path",
                    subject,
                    f"aggregating node {node} lies on no flow path",
                )
            )
    if not flagged or not sc.flows:
        return violations

    # Merge dependencies must be acyclic (eq. 2 resolves aggregation
    # outputs in upstream-first order; the evaluator refuses cycles too).
    deps: Dict[NodeId, Set[NodeId]] = defaultdict(set)
    agg_nodes: Set[NodeId] = set()
    for flow in sc.flows:
        positions = [n for n in flow.path if sc.aggregates_at(n)]
        for earlier, later in zip(positions, positions[1:]):
            deps[later].add(earlier)
        agg_nodes.update(positions)
    resolved: Set[NodeId] = set()
    pending = sorted(agg_nodes)
    while pending:
        remaining = [n for n in pending if not deps[n] <= resolved]
        if len(remaining) == len(pending):
            violations.append(
                Violation(
                    "aggregation-cycle",
                    subject,
                    f"cyclic merge dependencies among {[str(n) for n in remaining]}",
                )
            )
            break
        resolved.update(set(pending) - set(remaining))
        pending = remaining

    # Eq. 2–3 load invariant: merging can only reduce an edge's distinct
    # traffic units below the unaggregated per-flow count, never add units.
    try:
        units = edge_units(primitive, sc)
    except Exception as exc:  # the unit walk itself rejected the strategy
        violations.append(Violation("aggregation-units", subject, str(exc)))
        return violations
    raw: Dict[Tuple[NodeId, NodeId], int] = defaultdict(int)
    for flow in sc.flows:
        for edge in set(flow.edges):
            raw[edge] += 1
    for edge, unit_set in units.items():
        if len(unit_set) > raw[edge]:
            violations.append(
                Violation(
                    "aggregation-load",
                    subject,
                    f"edge {edge[0]}->{edge[1]} carries {len(unit_set)} units but only "
                    f"{raw[edge]} flows cross it — aggregation increased load",
                )
            )
    return violations


def _check_behavior(
    primitive: Primitive, sc: SubCollective, pset: Set[int], subject: str
) -> List[Violation]:
    if not primitive.needs_aggregation or not sc.flows:
        return []
    violations: List[Violation] = []
    try:
        tuples = behavior_tuples(sc, primitive, pset)
    except CoordinationError as exc:
        return [Violation("behavior-cycle", subject, str(exc))]

    root_rank = sc.root.index if sc.root is not None else None
    if root_rank is not None:
        root_tuple = tuples.get(root_rank)
        if root_tuple is not None and root_tuple.has_send:
            violations.append(
                Violation(
                    "root-sends",
                    subject,
                    f"root rank {root_rank} has hasSend set — it appears as an "
                    "interior hop of some flow",
                )
            )
    for rank, bt in sorted(tuples.items()):
        if bt.has_kernel and not sc.aggregates_at_rank(rank):
            violations.append(
                Violation(
                    "behavior-kernel",
                    subject,
                    f"rank {rank} launches a kernel without an aggregation flag",
                )
            )

    # Single-predecessor relay rule (Fig. 7 condition 2): with any single-
    # child rank demoted to relay, its pass-through must stay kernel-free.
    children_of: Dict[int, Set[int]] = defaultdict(set)
    for flow in sc.flows:
        gpus = [n.index for n in flow.path if n.kind is NodeKind.GPU]
        for child, parent in zip(gpus, gpus[1:]):
            children_of[parent].add(child)
    for rank in sorted(tuples):
        if rank == root_rank or len(children_of.get(rank, ())) != 1:
            continue
        try:
            relayed = behavior_tuples(sc, primitive, pset - {rank})
        except CoordinationError:
            continue  # the cycle is already reported above
        relay_tuple = relayed.get(rank)
        if relay_tuple is not None and relay_tuple.has_kernel:
            violations.append(
                Violation(
                    "relay-kernel",
                    subject,
                    f"rank {rank} as a single-branch relay would still launch a kernel",
                )
            )
    return violations


# -- deadlock analysis -----------------------------------------------------------------


def stage_unreachable(
    flow_paths: Sequence[Tuple[int, Sequence[NodeId]]],
    mode: str,
    aggregates_at: Optional[Callable[[NodeId], bool]] = None,
) -> List[Tuple[Tuple, NodeId]]:
    """Terminal (unit, node) slots the executor's event graph cannot reach.

    This replays :meth:`repro.runtime.executor.ChunkPipeline.start` as a
    worklist fixpoint: sources seed availability, a sender propagates a
    unit across its edge once available at the tail, an aggregator fires
    once every incoming unit has arrived (local contributions never gate).
    Availability is monotone and identical across chunk indices, so
    single-slot reachability decides deadlock freedom for the whole
    pipeline. An empty return means every flow's terminal slot is
    reachable; anything else is a dependency cycle the runtime would hit
    as a deadlock.
    """
    merge = mode == MODE_MERGE
    agg = aggregates_at if (merge and aggregates_at is not None) else (lambda node: False)

    def unit_at(flow_idx: int, path: Sequence[NodeId], path_idx: int) -> Tuple:
        if mode == MODE_GROUPED:
            return ("bcast", path[0])
        if mode == MODE_INDEPENDENT:
            return ("flow", flow_idx)
        unit: Tuple = ("flow", flow_idx)
        for idx in range(path_idx + 1):
            if agg(path[idx]):
                unit = ("agg", path[idx])
        return unit

    senders: Set[Tuple[NodeId, NodeId, Tuple]] = set()
    agg_inputs: Dict[NodeId, Set[Tuple]] = {}
    available: Set[Tuple[Tuple, NodeId]] = set()
    terminals: List[Tuple[Tuple, NodeId]] = []
    for flow_idx, path in flow_paths:
        src = path[0]
        if agg(src):
            agg_inputs.setdefault(src, set())
        else:
            available.add((unit_at(flow_idx, path, 0), src))
        for p in range(len(path) - 1):
            i, j = path[p], path[p + 1]
            unit = unit_at(flow_idx, path, p)
            senders.add((i, j, unit))
            if agg(j):
                agg_inputs.setdefault(j, set()).add(unit)
        terminals.append((unit_at(flow_idx, path, len(path) - 1), path[-1]))

    changed = True
    while changed:
        changed = False
        for i, j, unit in senders:
            if (unit, i) in available and (unit, j) not in available:
                available.add((unit, j))
                changed = True
        for node, units in agg_inputs.items():
            key = (("agg", node), node)
            if key not in available and all((u, node) in available for u in units):
                available.add(key)
                changed = True
    return [t for t in terminals if t not in available]


def _check_deadlock(
    primitive: Primitive, sc: SubCollective, subject: str
) -> List[Violation]:
    if sc.size == 0 or not sc.flows:
        return []
    stages: List[Tuple[str, List[Tuple[int, Sequence[NodeId]]], str, Optional[Callable]]]
    forward = [(idx, flow.path) for idx, flow in enumerate(sc.flows)]
    if primitive in (Primitive.REDUCE, Primitive.REDUCE_SCATTER):
        stages = [("reduce", forward, MODE_MERGE, sc.aggregates_at)]
    elif primitive is Primitive.ALLREDUCE:
        reversed_paths = [
            (idx, list(reversed(flow.path))) for idx, flow in enumerate(sc.flows)
        ]
        stages = [
            ("reduce", forward, MODE_MERGE, sc.aggregates_at),
            ("broadcast", reversed_paths, MODE_GROUPED, None),
        ]
    elif primitive in (Primitive.BROADCAST, Primitive.ALLGATHER):
        stages = [("broadcast", forward, MODE_GROUPED, None)]
    else:  # ALLTOALL
        stages = [("alltoall", forward, MODE_INDEPENDENT, None)]

    violations: List[Violation] = []
    for stage_name, flow_paths, mode, aggregates_at in stages:
        unreachable = stage_unreachable(flow_paths, mode, aggregates_at)
        if unreachable:
            shown = ", ".join(f"{unit}@{node}" for unit, node in unreachable[:3])
            more = f" (+{len(unreachable) - 3} more)" if len(unreachable) > 3 else ""
            violations.append(
                Violation(
                    "deadlock",
                    subject,
                    f"{stage_name} stage cannot reach terminal slots {shown}{more}",
                )
            )
    return violations
