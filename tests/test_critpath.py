"""Tests for repro.critpath: engine, consumer, CLI, lint, chaos scoring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.lint_critpath import lint_critpath_file, lint_critpath_report
from repro.bench.harness import BenchEnvironment
from repro.chaos import ChaosRunner, FaultPlan
from repro.chaos.plan import StragglerFault
from repro.critpath import (
    ChunkSpan,
    CritpathConsumer,
    analyze_run,
    analyze_spans,
    extract_chunk_spans,
    extract_readiness,
    render_report,
    report_to_json,
)
from repro.critpath.__main__ import main as critpath_cli
from repro.hardware.presets import make_config, make_homo_cluster
from repro.observe import ObserveConfig
from repro.synthesis.strategy import Primitive
from repro.telemetry.core import TelemetryHub, set_hub
from repro.telemetry.export import parse_jsonl, to_jsonl

SPECS = make_homo_cluster(num_servers=2, gpus_per_server=4)


def _instrumented_allreduce():
    """One AllReduce under a fresh enabled hub; returns (run, strategy, hub)."""
    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        env = BenchEnvironment(make_config([2, 2]), "adapcc")
        env.backend.verify = False
        inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
        strategy = env.backend.plan(Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks)
        env.backend.run(strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0))
    finally:
        set_hub(previous)
    return parse_jsonl(to_jsonl(fresh)), strategy, fresh


def _chaos_run(plan, observe=None):
    """Replay one fault plan; returns (parsed run, runner)."""
    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        runner = ChaosRunner(
            SPECS, plan, length=512, byte_scale=200_000.0, observe=observe
        )
        runner.run()
    finally:
        set_hub(previous)
    return parse_jsonl(to_jsonl(fresh)), runner


@pytest.fixture(scope="module")
def allreduce_run():
    return _instrumented_allreduce()


@pytest.fixture(scope="module")
def straggler_plan():
    return FaultPlan(
        seed=5,
        iterations=10,
        stragglers=tuple(
            StragglerFault(rank=3, iteration=i, delay_seconds=0.2)
            for i in range(3, 8)
        ),
    )


# -- the engine --------------------------------------------------------------------


class TestEngine:
    @pytest.mark.parametrize("mode", ["dag", "inferred"])
    def test_path_tiles_the_window_exactly(self, allreduce_run, mode):
        run, strategy, _ = allreduce_run
        report = analyze_run(run, strategy=strategy if mode == "dag" else None)
        assert report["mode"] == mode
        assert report["span_count"] > 0
        total = sum(segment["seconds"] for segment in report["path"])
        assert total == pytest.approx(report["total_seconds"], abs=1e-9)
        cursor = report["start_seconds"]
        for segment in report["path"]:
            assert segment["start"] == pytest.approx(cursor, abs=1e-9)
            assert segment["end"] >= segment["start"]
            cursor = segment["end"]
        assert cursor == pytest.approx(report["end_seconds"], abs=1e-9)

    def test_modes_agree_on_the_bottleneck(self, allreduce_run):
        run, strategy, _ = allreduce_run
        dag = analyze_run(run, strategy=strategy)
        inferred = analyze_run(run)
        assert dag["top_link"]["name"] == inferred["top_link"]["name"]

    def test_same_run_reports_are_byte_identical(self, allreduce_run):
        run, strategy, _ = allreduce_run
        assert report_to_json(analyze_run(run, strategy=strategy)) == report_to_json(
            analyze_run(run, strategy=strategy)
        )
        assert report_to_json(analyze_run(run)) == report_to_json(analyze_run(run))

    def test_shares_and_slack_are_consistent(self, allreduce_run):
        run, _, _ = allreduce_run
        report = analyze_run(run)
        total = report["total_seconds"]
        for entry in report["links"].values():
            expected = (entry["critical_seconds"] + entry["wait_seconds"]) / total
            assert entry["share"] == pytest.approx(expected)
        # The top link is a true bottleneck: no room to slip.
        top = report["links"][report["top_link"]["name"]]
        assert top["min_slack_seconds"] == pytest.approx(0.0, abs=1e-9)

    def test_empty_spans_give_a_zeroed_report(self):
        report = analyze_spans([])
        assert report["span_count"] == 0
        assert report["path"] == []
        assert report["top_link"] is None
        assert lint_critpath_report(report) == []

    def test_extract_filters_to_closed_chunk_sends(self):
        records = [
            {"type": "span", "cat": "chunk", "name": "a:send", "track": "link:g0->n0",
             "start": 0.0, "end": 1.0, "args": {"chunk": 0, "unit": "m0"}},
            {"type": "span", "cat": "chunk", "name": "a:recv", "track": "link:g0->n0",
             "start": 0.0, "end": 1.0, "args": {"chunk": 0, "unit": "m0"}},
            {"type": "span", "cat": "chunk", "name": "a:send", "track": "link:g0->n0",
             "start": 1.0, "end": None, "args": {"chunk": 1, "unit": "m0"}},
            {"type": "event", "cat": "chunk", "name": "a:send", "track": "link:g0->n0",
             "start": 2.0, "end": 2.0, "args": {"chunk": 2, "unit": "m0"}},
        ]
        spans = extract_chunk_spans(records)
        assert len(spans) == 1
        assert spans[0].tag == "a" and spans[0].link == "g0->n0"

    def test_readiness_excess_attributes_to_the_late_rank(self):
        spans = [
            ChunkSpan("a", "link:g0->n0", "m0", 0, 0.0, 1.0, 0),
            ChunkSpan("a", "link:g3->n1", "m3", 0, 1.0, 2.0, 1),
        ]
        readiness = [{0: 0.0, 1: 0.0, 2: 0.0, 3: 0.5}]
        report = analyze_spans(spans, readiness=readiness)
        assert report["readiness_seconds"] == pytest.approx(0.5)
        assert report["ranks"]["rank3"]["readiness_seconds"] == pytest.approx(0.5)
        assert report["links"]["g3->n1"]["readiness_seconds"] == pytest.approx(0.5)
        assert report["top_rank"]["name"] == "rank3"

    def test_extract_readiness_parses_decision_instants(self):
        records = [
            {"type": "event", "name": "ski-rental-decision",
             "args": {"ready_delays": {"0": 0.0, "3": 0.2}}},
            {"type": "event", "name": "ski-rental-decision",
             "args": {"ready_delays": {"0": None, "1": 0.1}}},
            {"type": "event", "name": "other", "args": {"ready_delays": {"0": 9.0}}},
        ]
        assert extract_readiness(records) == [{0: 0.0, 3: 0.2}, {1: 0.1}]

    def test_render_report_names_the_culprits(self, allreduce_run):
        run, _, _ = allreduce_run
        report = analyze_run(run)
        text = render_report(report)
        assert "critical path over" in text
        assert report["top_link"]["name"] in text


# -- the streaming consumer --------------------------------------------------------


class TestConsumer:
    def test_streaming_matches_offline_attribution(self):
        fresh = TelemetryHub(enabled=True)
        consumer = CritpathConsumer()
        fresh.subscribe(consumer)
        previous = set_hub(fresh)
        try:
            env = BenchEnvironment(make_config([2, 2]), "adapcc")
            env.backend.verify = False
            inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
            strategy = env.backend.plan(
                Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks
            )
            env.backend.run(
                strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0)
            )
        finally:
            set_hub(previous)
        offline = analyze_run(parse_jsonl(to_jsonl(fresh)))
        assert consumer.span_count == offline["span_count"]
        assert consumer.top_link() == offline["top_link"]["name"]

    def test_reset_clears_the_window(self):
        consumer = CritpathConsumer()
        assert consumer.report() is None and consumer.top_link() is None
        from repro.telemetry.core import Span

        span = Span("s1", "a:send", 0.0, category="chunk", track="link:g0->n0",
                    args={"chunk": 0, "unit": "m0"})
        span.end = 1.0
        consumer.on_span(span)
        assert consumer.span_count == 1
        consumer.reset()
        assert consumer.span_count == 0 and consumer.report() is None


# -- the CLI -----------------------------------------------------------------------


class TestCli:
    def test_json_reports_are_byte_identical(self, allreduce_run, tmp_path, capsys):
        _, _, hub = allreduce_run
        run_path = tmp_path / "run.jsonl"
        run_path.write_text(to_jsonl(hub), encoding="utf-8")
        outputs = []
        for _ in range(2):
            assert critpath_cli([str(run_path), "--json"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        report = json.loads(outputs[0])
        assert report["kind"] == "critpath_report"
        assert lint_critpath_report(report) == []

    def test_text_report_and_output_file(self, allreduce_run, tmp_path, capsys):
        _, _, hub = allreduce_run
        run_path = tmp_path / "run.jsonl"
        run_path.write_text(to_jsonl(hub), encoding="utf-8")
        assert critpath_cli([str(run_path)]) == 0
        assert "critical path over" in capsys.readouterr().out
        out_path = tmp_path / "report.json"
        assert critpath_cli([str(run_path), "--json", "--output", str(out_path)]) == 0
        assert lint_critpath_file(str(out_path)) == []

    def test_missing_file_fails_cleanly(self, tmp_path):
        assert critpath_cli([str(tmp_path / "absent.jsonl")]) == 1


# -- the lint ----------------------------------------------------------------------


class TestLint:
    @pytest.fixture()
    def clean_report(self, allreduce_run):
        run, _, _ = allreduce_run
        return analyze_run(run)

    def test_clean_report_passes(self, clean_report):
        assert lint_critpath_report(clean_report) == []

    def test_missing_field_is_flagged(self, clean_report):
        broken = dict(clean_report)
        del broken["path"]
        assert any(
            v.check == "critpath-schema" for v in lint_critpath_report(broken)
        )

    def test_discontiguous_path_is_flagged(self, clean_report):
        broken = json.loads(report_to_json(clean_report))
        broken["path"][1]["start"] += 1.0
        assert any(v.check == "critpath-path" for v in lint_critpath_report(broken))

    def test_wrong_sums_are_flagged(self, clean_report):
        broken = json.loads(report_to_json(clean_report))
        broken["busy_seconds"] += 0.5
        assert any(v.check == "critpath-sums" for v in lint_critpath_report(broken))

    def test_phantom_top_link_is_flagged(self, clean_report):
        broken = json.loads(report_to_json(clean_report))
        broken["top_link"] = {"name": "x0->x1", "seconds": 1.0, "share": 0.5}
        assert any(
            v.check == "critpath-attribution"
            for v in lint_critpath_report(broken)
        )

    def test_unreadable_file_is_flagged(self, tmp_path):
        violations = lint_critpath_file(str(tmp_path / "absent.json"))
        assert [v.check for v in violations] == ["critpath-io"]


# -- attribution vs chaos ground truth ---------------------------------------------


class TestChaosGroundTruth:
    def test_interference_attributes_the_faulted_nic(self):
        plan = FaultPlan.interference(seed=11, iterations=12)
        fault_node = f"n{plan.link_faults[0].instance_id}"
        run, _ = _chaos_run(plan)
        report = analyze_run(run)
        top = report["top_link"]["name"]
        assert fault_node in top.split("->")

    def test_straggler_attributes_the_injected_rank(self, straggler_plan):
        run, _ = _chaos_run(straggler_plan)
        report = analyze_run(run)
        assert report["top_rank"]["name"] == "rank3"
        assert report["readiness_seconds"] == pytest.approx(
            sum(f.delay_seconds for f in straggler_plan.stragglers)
        )

    def test_chaos_reports_are_byte_identical(self, straggler_plan):
        first, _ = _chaos_run(straggler_plan)
        second, _ = _chaos_run(straggler_plan)
        assert report_to_json(analyze_run(first)) == report_to_json(
            analyze_run(second)
        )


# -- the watchdog integration ------------------------------------------------------


class TestTargetedReprobe:
    @pytest.fixture(scope="class")
    def observed_interference(self):
        plan = FaultPlan.interference(seed=11, iterations=24)
        return _chaos_run(plan, observe=ObserveConfig())

    def test_reprobe_targets_only_the_attributed_pair(self, observed_interference):
        _, runner = observed_interference
        log = runner.watchdog.log
        assert runner.watchdog.reprobes_run >= 1
        attributed_seen = 0
        for reprobe in log.reprobes:
            attributed = reprobe["attributed_link"]
            if attributed is None:
                continue
            attributed_seen += 1
            src, dst = attributed.split("->", 1)
            pair = {attributed, f"{dst}->{src}"}
            assert set(reprobe["probed_links"]) <= pair
            assert attributed in reprobe["implicated_links"]
        assert attributed_seen >= 1, "attribution never reached a re-probe"

    def test_verdicts_carry_the_corroborated_culprit(self, observed_interference):
        _, runner = observed_interference
        verdicts = runner.watchdog.log.verdicts
        assert verdicts
        for verdict in verdicts:
            attributed = verdict["attributed_link"]
            if attributed is not None:
                assert attributed in verdict["implicated_links"]

    def test_runner_wires_attribution_to_the_critpath_consumer(
        self, observed_interference
    ):
        _, runner = observed_interference
        assert runner.critpath is not None
        assert runner.watchdog.attribution == runner.critpath.top_link
