"""Seeded, schedule-driven fault injection for the AdapCC reproduction.

One :class:`FaultPlan` is a declarative, seed-replayable schedule of
stragglers, crashes, link degradations and message faults; the
:class:`ChaosInjector` applies it to a simulated cluster, and the
:class:`ChaosRunner` drives it through the full relay/recovery stack.
"""

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import (
    DROP,
    DUPLICATE,
    CrashFault,
    FaultPlan,
    LinkFault,
    MessageFault,
    StragglerFault,
)
from repro.chaos.runner import ChaosRunner, ChaosRunReport, IterationOutcome

__all__ = [
    "DROP",
    "DUPLICATE",
    "ChaosInjector",
    "ChaosRunReport",
    "ChaosRunner",
    "CrashFault",
    "FaultPlan",
    "IterationOutcome",
    "LinkFault",
    "MessageFault",
    "StragglerFault",
]
