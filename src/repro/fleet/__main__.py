"""``python -m repro.fleet`` — replay a multi-job workload, print the report.

Scenarios:

* ``--scenario canonical`` (default) — the pinned two-job interference
  scenario with planted ground truth (attribution accuracy is scored);
* ``--scenario generated`` — a seeded bursty workload over ``--jobs``
  rank subsets of a homogeneous cluster (no planted truth);
* ``--trace FILE`` — a profile-shaped JSON workload trace.

Output is a text fleet report (per-job table, fairness, contention,
attributions) or, with ``--json``, the raw deterministic report object.
``--export PATH`` additionally writes the merged per-job JSONL stream —
lint it with ``python -m repro.analysis --fleet PATH`` or inspect it with
``python -m repro.telemetry summarize PATH --group-by job``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.bench.report import Table
from repro.errors import ReproError
from repro.fleet.runner import FleetResult, FleetRunner
from repro.fleet.workload import (
    Workload,
    canonical_overlap_workload,
    generate_workload,
    read_workload,
)

#: Rank subsets offered to ``--scenario generated`` (server-straddling,
#: so every pair of jobs shares fabric somewhere).
_GENERATED_RANK_SETS = [
    (0, 1, 4, 5),
    (2, 3, 8, 9),
    (6, 7, 10, 11),
    (12, 13, 14, 15),
]


def _build_workload(args) -> Workload:
    if args.trace:
        return read_workload(args.trace)
    if args.scenario == "generated":
        if not 2 <= args.jobs <= len(_GENERATED_RANK_SETS):
            raise ReproError(
                f"--jobs must be between 2 and {len(_GENERATED_RANK_SETS)}"
            )
        return generate_workload(
            _GENERATED_RANK_SETS[: args.jobs], seed=args.seed
        )
    return canonical_overlap_workload(seed=args.seed)


def _show_text(result: FleetResult) -> None:
    report = result.report
    jobs = Table(
        "Fleet jobs",
        ["ranks", "ops", "bytes", "makespan_s", "goodput_B/s", "verdicts", "resyn"],
    )
    for name in sorted(report["jobs"]):
        row = report["jobs"][name]
        jobs.add_row(
            name,
            [
                len(row["ranks"]),
                f"{row['ops_completed']}/{row['ops_total']}",
                f"{row['bytes_completed']:.3g}",
                f"{row['makespan']:.4f}",
                f"{row['goodput']:.4g}",
                row["verdicts"],
                row["resyntheses"],
            ],
        )
    jobs.show()

    fairness = report["fairness"]
    print(
        f"Fairness: Jain index {fairness['jain']:.4f} over {fairness['n']} "
        f"job(s) (lower bound {fairness['lower_bound']:.4f})\n"
    )

    contention = report["contention"]
    contended = {
        link: row for link, row in contention.items() if row["contended_seconds"] > 0
    }
    if contended:
        table = Table("Link contention (>=2 jobs active)", ["jobs", "contended_s"])
        for link in sorted(contended):
            row = contended[link]
            table.add_row(
                link, [",".join(row["jobs"]), f"{row['contended_seconds']:.4f}"]
            )
        table.show()

    if report["attributions"]:
        table = Table(
            "Interference attributions", ["aggressor", "link", "kind", "overlap_s"]
        )
        for record in report["attributions"]:
            table.add_row(
                f"{record['victim']}@i{record['iteration']}",
                [
                    record["aggressor"],
                    record["link"],
                    record["kind"],
                    f"{record['overlap_seconds']:.4f}",
                ],
            )
        table.show()
    else:
        print("No cross-job interference attributed.\n")

    accuracy = report["accuracy"]
    if accuracy is not None:
        print(
            f"Attribution vs ground truth: precision {accuracy['precision']:.2f} "
            f"({accuracy['correct']}/{accuracy['predictions']}), recall "
            f"{accuracy['recall']:.2f} ({accuracy['covered']}/{accuracy['truths']})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Replay a multi-job workload over one shared fabric and "
        "report goodput, fairness, contention, and interference attribution.",
    )
    parser.add_argument(
        "--scenario",
        choices=("canonical", "generated"),
        default="canonical",
        help="canonical two-job overlap (scored) or a seeded generated fleet",
    )
    parser.add_argument("--trace", default=None, help="JSON workload trace file")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--jobs", type=int, default=3, help="job count for --scenario generated"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw report JSON"
    )
    parser.add_argument(
        "--export", default=None, metavar="PATH", help="write the merged JSONL stream"
    )
    args = parser.parse_args(argv)
    try:
        workload = _build_workload(args)
        result = FleetRunner(workload).run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(result.merged_jsonl)
        print(f"wrote {args.export}", file=sys.stderr)
    if args.json:
        print(result.report_json(), end="")
    else:
        names = ", ".join(workload.job_names)
        print(f"fleet replay: {len(workload.jobs)} job(s) [{names}], "
              f"seed {workload.seed}\n")
        _show_text(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
