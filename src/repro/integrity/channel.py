"""The process-global data-plane tap every chunk delivery flows through.

:class:`~repro.runtime.executor.ChunkPipeline` resolves the tap once per
pipeline (the same zero-overhead idiom as the telemetry hub: a single
``active`` check when nothing is installed) and routes every delivered
chunk through :meth:`DataPlane.deliver`. Two optional parties plug in:

* a **corruptor** (:class:`~repro.chaos.corruption.PayloadCorruptor`) —
  the chaos side, mutating payload *copies* according to a seeded
  :class:`~repro.chaos.plan.CorruptionFault` schedule;
* a **monitor** (:class:`~repro.integrity.monitor.IntegrityMonitor`) —
  the defence side, stamping a CRC32 checksum at send and verifying it
  at receive.

The delivery order encodes the two corruption sites:

* ``SITE_WIRE`` corruption happens *between* stamp and verify — the
  receiver's checksum catches it immediately and names the link;
* ``SITE_KERNEL`` corruption happens *after* verification (the receive
  buffer the reduce kernel reads), so it slips past every per-hop check
  — downstream hops re-stamp the corrupted bytes — and is only caught by
  the end-of-collective digest exchange.

Localization probes are ordinary traffic through the same tap (tagged
:data:`PROBE_TAG`), so they experience the same corruption schedule as
the payloads they stand in for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Corruption sites (see module docstring).
SITE_WIRE = "wire"
SITE_KERNEL = "kernel"

#: Tag prefix of localization probe traffic.
PROBE_TAG = "integrity-probe"


class DataPlane:
    """One process-wide delivery tap: chaos corruptor + integrity monitor."""

    def __init__(self) -> None:
        self.corruptor = None
        self.monitor = None

    @property
    def active(self) -> bool:
        """Whether any party is installed (pipelines skip the tap otherwise)."""
        return self.corruptor is not None or self.monitor is not None

    def deliver(
        self,
        link: str,
        chunk: int,
        payload: np.ndarray,
        *,
        tag: str = "",
        now: float = 0.0,
    ) -> np.ndarray:
        """Route one chunk across ``link``; returns what the receiver sees.

        The input payload is never mutated — a corruptor works on a copy —
        so upstream slots (and the ranks' input tensors, which sources
        publish by reference) stay intact.
        """
        corruptor = self.corruptor
        monitor = self.monitor
        stamp: Optional[int] = None
        if monitor is not None:
            stamp = monitor.stamp(payload)
        wire = payload
        if corruptor is not None:
            wire = corruptor.apply(link, wire, SITE_WIRE, chunk=chunk, tag=tag, now=now)
        if monitor is not None:
            monitor.observe_delivery(link, chunk, stamp, wire, tag=tag, now=now)
        if corruptor is not None:
            wire = corruptor.apply(link, wire, SITE_KERNEL, chunk=chunk, tag=tag, now=now)
        return wire


#: The process-wide tap. Runners install parties for the duration of a
#: run and restore the previous state in a ``finally`` block.
_PLANE = DataPlane()


def data_plane() -> DataPlane:
    """The process-wide data-plane tap."""
    return _PLANE


def reset_data_plane() -> None:
    """Detach both parties (test isolation helper)."""
    _PLANE.corruptor = None
    _PLANE.monitor = None
