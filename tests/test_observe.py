"""Conformance suite for repro.observe: the closed telemetry loop.

Central claims:

* **principled detection latency** — a CUSUM with threshold *h* and drift
  *k* flags a sustained shift *s > k* within ``h / (s - k)`` samples;
  :func:`cusum_latency_bound` computes that bound, and the detectors meet
  it exactly on synthetic streams;
* **no false positives** — a fault-free chaos plan raises zero verdicts,
  and a stationary stream never fires;
* **targeted adaptation** — the canonical interference run raises a
  verdict, re-probes *only* the implicated links, and the re-synthesized
  strategy's eq.-4 finish beats the refreshed stale finish;
* **byte-identical replays** — a hypothesis property: same-seed runs of
  the watchdog over identical sample streams export byte-identical
  verdict logs (everything advances on the sim clock);
* **lint discipline** — well-formed logs pass ``lint_observe_records``,
  and each causal-chain violation (missing header, evidence gaps, stray
  probes, in-band re-synthesis) is caught;
* **API behaviour** — ``profile(period=None)`` requires an armed
  watchdog, disabled watchdogs hold zero detector state, and attaching to
  a silent hub is an error.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapcc import AdapCCSession
from repro.analysis.lint_observe import lint_observe_records
from repro.chaos import ChaosRunner, FaultPlan, StragglerFault
from repro.errors import ObserveError, ReproError
from repro.hardware import Cluster, make_homo_cluster
from repro.observe import (
    CONFIG_RECORD,
    AnomalyKind,
    CusumDetector,
    EwmaBaseline,
    ObserveConfig,
    SignalTracker,
    Watchdog,
    cusum_latency_bound,
    evaluate_detection,
    parse_observe_jsonl,
)
from repro.simulation import Simulator
from repro.telemetry import TelemetryHub, set_hub
from repro.telemetry.core import Span
from repro.topology import LogicalTopology

OBSERVE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "11"))

SPECS = make_homo_cluster(num_servers=2, gpus_per_server=4)

#: The canonical interference scenario (also the --observe lint pass and
#: examples/adaptive_interference.py): ~0.105 s iterations, NIC
#: degradation onset at 0.8 s == iteration ~7.6.
CANON = dict(length=512, byte_scale=200_000.0)


@pytest.fixture()
def live_hub():
    new = TelemetryHub(enabled=True)
    previous = set_hub(new)
    yield new
    set_hub(previous)


def run_observed(plan, hub_enabled=True, observe=None, **kwargs):
    previous = set_hub(TelemetryHub(enabled=hub_enabled))
    try:
        runner = ChaosRunner(
            SPECS, plan, observe=observe or ObserveConfig(), **(CANON | kwargs)
        )
        report = runner.run()
        return runner, report
    finally:
        set_hub(previous)


# -- detectors ---------------------------------------------------------------------


class TestEwmaBaseline:
    def test_warmup_gates_deviations(self):
        baseline = EwmaBaseline(smoothing=0.5, warmup=3)
        assert [baseline.update(10.0) for _ in range(3)] == [None, None, None]
        assert baseline.warmed_up
        assert baseline.update(10.0) == 0.0

    def test_relative_deviation_is_mean_normalized(self):
        baseline = EwmaBaseline(smoothing=1.0, warmup=1)
        baseline.update(100.0)
        assert baseline.update(50.0) == pytest.approx(-0.5)

    def test_absolute_deviation_is_mean_centred(self):
        baseline = EwmaBaseline(smoothing=1.0, warmup=1, relative=False)
        baseline.update(0.2)
        assert baseline.update(0.5) == pytest.approx(0.3)

    def test_deviation_uses_pre_fold_mean(self):
        # A step change must report at full size, not be absorbed by the
        # same update that observes it.
        baseline = EwmaBaseline(smoothing=0.5, warmup=1)
        baseline.update(10.0)
        assert baseline.update(20.0) == pytest.approx(1.0)

    def test_reset_forgets(self):
        baseline = EwmaBaseline(warmup=1)
        baseline.update(5.0)
        baseline.reset()
        assert baseline.samples == 0 and baseline.mean == 0.0

    @pytest.mark.parametrize("kwargs", [dict(smoothing=0.0), dict(smoothing=1.5), dict(warmup=0)])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ObserveError):
            EwmaBaseline(**kwargs)


class TestCusumDetector:
    def test_meets_latency_bound_exactly(self):
        threshold, drift, shift = 1.0, 0.25, 0.75
        samples, gain = cusum_latency_bound(threshold, drift, shift)
        assert gain == pytest.approx(shift - drift)
        detector = CusumDetector(threshold=threshold, drift=drift)
        fired_at = None
        for i in range(1, samples + 1):
            if detector.update(shift):
                fired_at = i
                break
        assert fired_at == samples

    def test_downward_shifts_fire_too(self):
        detector = CusumDetector(threshold=1.0, drift=0.25)
        while not detector.update(-0.8):
            pass
        assert detector.direction == "down"

    def test_shift_within_drift_is_undetectable(self):
        assert cusum_latency_bound(1.0, 0.25, 0.2) is None
        detector = CusumDetector(threshold=1.0, drift=0.25)
        assert not any(detector.update(0.2) for _ in range(1000))

    def test_noise_under_drift_never_fires(self):
        rng = np.random.default_rng(OBSERVE_SEED)
        detector = CusumDetector(threshold=1.0, drift=0.25)
        assert not any(
            detector.update(dev) for dev in rng.uniform(-0.2, 0.2, 500)
        )

    def test_reset_rearms(self):
        detector = CusumDetector(threshold=0.5, drift=0.0)
        detector.update(1.0)
        assert detector.fired
        detector.reset()
        assert not detector.fired and detector.statistic == 0.0

    @pytest.mark.parametrize("kwargs", [dict(threshold=0.0), dict(drift=-0.1)])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ObserveError):
            CusumDetector(**kwargs)


class TestSignalTracker:
    def test_evidence_window_is_bounded(self):
        tracker = SignalTracker(window=4)
        for i in range(10):
            tracker.observe(float(i), 1.0)
        evidence = tracker.snapshot_evidence()
        assert len(evidence) == 4
        assert [t for t, _ in evidence] == [6.0, 7.0, 8.0, 9.0]

    def test_rebaseline_keeps_evidence_resets_detectors(self):
        tracker = SignalTracker(
            baseline=EwmaBaseline(warmup=1), cusum=CusumDetector(threshold=0.5, drift=0.0)
        )
        for i in range(6):
            tracker.observe(float(i), 10.0 * (i + 1))
        assert tracker.fired
        tracker.rebaseline()
        assert not tracker.fired
        assert tracker.snapshot_evidence()  # the window keeps rolling


class TestDetectionEdges:
    """Boundary behaviour: exactly-at-threshold, exactly-at-band, re-arm."""

    def test_cusum_exactly_at_threshold_does_not_fire(self):
        # fired uses a strict >: reaching the threshold is not crossing it.
        detector = CusumDetector(threshold=1.0, drift=0.0)
        detector.update(0.5)
        detector.update(0.5)
        assert detector.statistic == 1.0 and not detector.fired
        detector.update(1e-9)
        assert detector.fired

    def test_tracker_rearms_after_recovery(self):
        tracker = SignalTracker(
            baseline=EwmaBaseline(warmup=2),
            cusum=CusumDetector(threshold=0.5, drift=0.1),
        )
        for i in range(3):
            tracker.observe(float(i), 10.0)
        for i in range(3, 8):
            tracker.observe(float(i), 20.0)
        assert tracker.fired
        tracker.rebaseline()
        assert not tracker.fired
        # The same stable level no longer looks anomalous...
        for i in range(8, 12):
            tracker.observe(float(i), 20.0)
        assert not tracker.fired
        # ...but a fresh shift re-fires from the new baseline.
        for i in range(12, 18):
            tracker.observe(float(i), 40.0)
        assert tracker.fired

    def _watchdog_with_finish(self, refreshed, hysteresis=0.25):
        """A watchdog whose re-synthesis inputs are fully stubbed."""

        class _Strategy:
            predicted_time = 1.0

        class _Synthesizer:
            def finish_time(self, strategy):
                return refreshed

        calls = []
        watchdog = Watchdog(
            make_topology(),
            config=ObserveConfig(hysteresis=hysteresis),
            current_strategy=lambda: _Strategy(),
            synthesizer=_Synthesizer(),
            resynthesize=lambda reason: calls.append(reason) or _Strategy(),
        )
        return watchdog, calls

    def test_ratio_exactly_at_hysteresis_band_stays_put(self):
        # hysteresis=0.25 keeps the band edge binary-exact (1.25 - 1.0 == 0.25).
        watchdog, calls = self._watchdog_with_finish(1.25)
        watchdog._maybe_resynthesize("p1")
        assert calls == []

    def test_ratio_just_past_the_band_resynthesizes(self):
        watchdog, calls = self._watchdog_with_finish(1.25 + 1e-6)
        watchdog._maybe_resynthesize("p1")
        assert calls == ["observe:p1"]

    def test_ratio_below_the_band_resynthesizes_too(self):
        # Speedups past the band also warrant a refresh (strategy too slow).
        watchdog, calls = self._watchdog_with_finish(0.5)
        watchdog._maybe_resynthesize("p2")
        assert calls == ["observe:p2"]


class TestObserveConfig:
    def test_invalid_tunables_rejected(self):
        with pytest.raises(ObserveError):
            ObserveConfig(hysteresis=0.0)
        with pytest.raises(ObserveError):
            ObserveConfig(cooldown_iterations=-1)

    def test_header_round_trips_tunables(self):
        header = ObserveConfig(hysteresis=0.2).header()
        assert header["type"] == CONFIG_RECORD
        assert header["hysteresis"] == 0.2


# -- the closed loop on chaos ground truth -----------------------------------------


@pytest.fixture(scope="module")
def interference_run():
    plan = FaultPlan.interference(seed=OBSERVE_SEED, iterations=24)
    hub = TelemetryHub(enabled=True)
    previous = set_hub(hub)
    try:
        runner = ChaosRunner(SPECS, plan, observe=ObserveConfig(), **CANON)
        report = runner.run()
    finally:
        set_hub(previous)
    return runner, report, plan, hub


class TestInterferenceDetection:
    def test_detects_with_full_recall_and_precision(self, interference_run):
        runner, _, plan, _ = interference_run
        report = evaluate_detection(
            runner.watchdog.log.verdicts, plan.ground_truth()
        )
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_detection_latency_is_bounded(self, interference_run):
        runner, _, plan, _ = interference_run
        fault = plan.link_faults[0]
        # One link sample per iteration; the degraded throughput is a
        # sustained relative shift of ~(1 - bandwidth_fraction), and the
        # first fully-degraded iteration lands one iteration after onset.
        config = runner.watchdog.config
        shift = 1.0 - fault.bandwidth_fraction
        samples, _ = cusum_latency_bound(
            config.cusum_threshold, config.cusum_drift, shift
        )
        iteration_seconds = 0.12  # canonical scenario, with slack
        report = evaluate_detection(
            runner.watchdog.log.verdicts, plan.ground_truth()
        )
        budget = (samples + 2) * iteration_seconds
        assert report.worst_latency_seconds is not None
        assert report.worst_latency_seconds <= budget

    def test_reprobe_touches_only_implicated_links(self, interference_run):
        runner, _, _, _ = interference_run
        log = runner.watchdog.log
        assert runner.watchdog.reprobes_run >= 1
        verdicts = {v["id"]: v for v in log.verdicts}
        for reprobe in log.reprobes:
            implicated = set()
            for verdict_id in reprobe["verdicts"]:
                implicated.update(verdicts[verdict_id]["implicated_links"])
            assert set(reprobe["probed_links"]) <= implicated

    def test_resynthesis_beats_the_stale_strategy(self, interference_run):
        runner, _, _, _ = interference_run
        resyntheses = runner.watchdog.log.resyntheses
        assert runner.watchdog.resyntheses_triggered >= 1
        for record in resyntheses:
            assert (
                abs(record["refreshed_finish"] / record["stale_finish"] - 1.0)
                > record["hysteresis"]
            )
            assert record["new_finish"] <= record["refreshed_finish"] * (1 + 1e-9)

    def test_arithmetic_stays_exact_under_adaptation(self, interference_run):
        _, report, _, _ = interference_run
        assert report.all_exact

    def test_log_passes_observe_lint(self, interference_run):
        runner, _, _, _ = interference_run
        assert lint_observe_records(runner.watchdog.log.records) == []

    def test_verdicts_mirrored_into_telemetry_counters(self, interference_run):
        runner, _, _, hub = interference_run
        counter = hub.metrics.counter("observe_verdicts_total", "")
        assert counter.total() == runner.watchdog.verdicts_raised


class TestQuietStreams:
    def test_fault_free_plan_raises_zero_verdicts(self):
        runner, report = run_observed(
            FaultPlan(seed=OBSERVE_SEED, iterations=16)
        )
        assert runner.watchdog.verdicts_raised == 0
        assert runner.watchdog.reprobes_run == 0
        assert len(runner.watchdog.log) == 1  # the config header only
        assert report.all_exact

    def test_straggler_plan_names_the_straggler_not_interference(self):
        stragglers = tuple(
            StragglerFault(rank=3, iteration=i, delay_seconds=0.2)
            for i in range(5, 12)
        )
        plan = FaultPlan(
            seed=OBSERVE_SEED, iterations=16, stragglers=stragglers
        )
        runner, _ = run_observed(plan)
        verdicts = runner.watchdog.log.verdicts
        assert verdicts, "a persistent straggler must be detected"
        assert {v["kind"] for v in verdicts} == {
            AnomalyKind.STRAGGLER_EMERGENCE.value
        }
        assert {v["subject"] for v in verdicts} == {"rank3"}
        report = evaluate_detection(verdicts, plan.ground_truth())
        assert report.recall == 1.0
        assert report.precision == 1.0


# -- wiring and state --------------------------------------------------------------


def make_topology():
    sim = Simulator()
    cluster = Cluster(sim, SPECS)
    return LogicalTopology.from_cluster(cluster)


class TestWiring:
    def test_attach_to_disabled_hub_is_an_error(self):
        with pytest.raises(ObserveError):
            Watchdog(make_topology()).attach(TelemetryHub(enabled=False))

    def test_disabled_watchdog_holds_no_state(self, live_hub):
        watchdog = Watchdog(
            make_topology(), config=ObserveConfig(enabled=False)
        ).attach(live_hub)
        assert watchdog.detector_state_size() == 0
        assert live_hub.consumers == []
        assert watchdog.end_iteration(0, 1.0) == []
        records = watchdog.log.records
        assert len(records) == 1 and records[0]["type"] == CONFIG_RECORD
        assert not records[0]["enabled"]
        assert lint_observe_records(records) == []

    def test_detach_is_idempotent(self, live_hub):
        watchdog = Watchdog(make_topology()).attach(live_hub)
        assert live_hub.consumers == [watchdog]
        watchdog.detach()
        watchdog.detach()
        assert live_hub.consumers == []

    def test_disabled_config_disables_runner_watchdog(self):
        runner, report = run_observed(
            FaultPlan(seed=OBSERVE_SEED, iterations=2),
            observe=ObserveConfig(enabled=False),
        )
        assert runner.watchdog is None
        assert report.all_exact


class TestSessionProfileModes:
    def test_profile_without_period_requires_observe(self):
        previous = set_hub(TelemetryHub(enabled=True))
        try:
            session = AdapCCSession(SPECS).init()
            with pytest.raises(ReproError):
                session.profile()
        finally:
            set_hub(previous)

    def test_periodic_profiling_still_works(self):
        previous = set_hub(TelemetryHub(enabled=True))
        try:
            session = AdapCCSession(SPECS).init()
            session.profile(period=500)
            with pytest.raises(ReproError):
                session.profile(period=0)
        finally:
            set_hub(previous)

    def test_observe_session_arms_watchdog_and_runs(self):
        previous = set_hub(TelemetryHub(enabled=True))
        try:
            session = AdapCCSession(SPECS, telemetry=True, observe=True).init()
            session.profile()  # watchdog-triggered mode: no period needed
            session.setup()
            assert session.watchdog is not None
            tensors = {r: np.ones(64) * r for r in range(8)}
            for _ in range(3):
                session.allreduce(tensors)
            # A healthy run: the watchdog observed every collective and
            # stayed silent.
            assert session.watchdog.verdicts_raised == 0
            assert len(session.watchdog.log) == 1
        finally:
            set_hub(previous)

    def test_observe_needs_enabled_telemetry(self):
        previous = set_hub(TelemetryHub(enabled=True))
        try:
            with pytest.raises(ObserveError):
                AdapCCSession(SPECS, telemetry=False, observe=True).init()
        finally:
            set_hub(previous)


# -- byte-identical replays --------------------------------------------------------


def _drive_synthetic(seed: int, iterations: int) -> str:
    """One full watchdog pass over a deterministic synthetic stream.

    Exercises the link, fit, rank, and iteration signals without a
    simulator run: healthy samples first, then a mid-stream degradation so
    most seeds raise at least one verdict.
    """
    watchdog = Watchdog(make_topology(), config=ObserveConfig())
    rng = np.random.default_rng(seed)
    onset = iterations // 2
    for i in range(iterations):
        degraded = i >= onset
        # The drop must outrun the EWMA's adaptation: a shift this deep
        # accumulates past the CUSUM threshold before the baseline
        # re-learns the degraded rate as the new normal.
        throughput = 1e9 * (0.15 if degraded else 1.0) * (1 + rng.uniform(-0.05, 0.05))
        span = Span(f"c{i}", "chunk-send", float(i), category="chunk", track="link:n0->n1",
                    args={"bytes": throughput})
        span.end = float(i) + 1.0
        watchdog.on_span(span)
        fit = Span(f"f{i}", "alpha-beta-fit", float(i), category="profile",
                   args={"edge": "n0->n1", "residual": 2.0 if degraded else 0.0})
        watchdog.on_event(fit)
        delays = {r: 0.0 for r in range(4)}
        delays[2] = 0.3 if degraded else 0.0
        ski = Span(f"s{i}", "ski-rental-decision", float(i), category="relay",
                   args={"ready_delays": delays, "buy_cost_seconds": 0.1})
        watchdog.on_event(ski)
        watchdog.end_iteration(i, 0.1 * (2.0 if degraded else 1.0))
    return watchdog.log.to_jsonl()


class TestReplayDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16), iterations=st.integers(8, 24))
    def test_same_seed_logs_are_byte_identical(self, seed, iterations):
        assert _drive_synthetic(seed, iterations) == _drive_synthetic(
            seed, iterations
        )

    def test_synthetic_stream_actually_fires(self):
        # Guard the property above against vacuous silence.
        log = parse_observe_jsonl(_drive_synthetic(OBSERVE_SEED, 20))
        kinds = {r["kind"] for r in log if r.get("type") == "verdict"}
        assert AnomalyKind.BANDWIDTH_DRIFT.value in kinds
        assert AnomalyKind.STRAGGLER_EMERGENCE.value in kinds
        assert AnomalyKind.TOPOLOGY_CHANGE.value in kinds

    def test_chaos_run_logs_are_byte_identical(self):
        plan = FaultPlan.interference(seed=OBSERVE_SEED, iterations=12)
        first, _ = run_observed(plan)
        second, _ = run_observed(plan)
        assert first.watchdog.log.to_jsonl() == second.watchdog.log.to_jsonl()
        assert len(first.watchdog.log) > 1


# -- lint: negative cases ----------------------------------------------------------


def header(**overrides):
    return ObserveConfig(**overrides).header()


def verdict_record(**overrides):
    record = {
        "type": "verdict", "id": "v1", "kind": "bandwidth-drift",
        "subject": "link:n0->n1", "time": 5.0, "iteration": 4,
        "direction": "down", "statistic": 2.0, "baseline": 1e9,
        "evidence": [[3.0, 1e9], [4.0, 5e8]], "implicated_links": ["n0->n1"],
    }
    record.update(overrides)
    return record


class TestObserveLint:
    def test_missing_header_is_flagged(self):
        violations = lint_observe_records([verdict_record()])
        assert any(v.check == "observe-header" for v in violations)

    def test_duplicate_header_is_flagged(self):
        violations = lint_observe_records([header(), header()])
        assert any(v.check == "observe-header" for v in violations)

    def test_disabled_log_must_be_silent(self):
        violations = lint_observe_records(
            [header(enabled=False), verdict_record()]
        )
        assert any(v.check == "observe-disabled" for v in violations)

    def test_verdict_without_evidence_is_flagged(self):
        violations = lint_observe_records([header(), verdict_record(evidence=[])])
        assert any(v.check == "observe-evidence" for v in violations)

    def test_evidence_postdating_the_verdict_is_flagged(self):
        violations = lint_observe_records(
            [header(), verdict_record(evidence=[[9.0, 1.0]])]
        )
        assert any(v.check == "observe-evidence" for v in violations)

    def test_statistic_under_threshold_is_flagged(self):
        violations = lint_observe_records([header(), verdict_record(statistic=0.5)])
        assert any(v.check == "observe-threshold" for v in violations)

    def test_reprobe_must_cite_a_verdict(self):
        reprobe = {"type": "reprobe", "id": "p1", "verdicts": [],
                   "probed_links": [], "start": 6.0, "end": 6.5, "iteration": 4}
        violations = lint_observe_records([header(), reprobe])
        assert any(v.check == "observe-causality" for v in violations)

    def test_stray_probe_is_flagged(self):
        reprobe = {"type": "reprobe", "id": "p1", "verdicts": ["v1"],
                   "probed_links": ["n0->n1", "g0->g1"], "start": 6.0,
                   "end": 6.5, "iteration": 4}
        violations = lint_observe_records([header(), verdict_record(), reprobe])
        assert any(v.check == "observe-targeting" for v in violations)

    def test_resynthesis_inside_hysteresis_is_flagged(self):
        reprobe = {"type": "reprobe", "id": "p1", "verdicts": ["v1"],
                   "probed_links": ["n0->n1"], "start": 6.0, "end": 6.5,
                   "iteration": 4}
        resynthesis = {"type": "resynthesis", "id": "s1", "reprobe": "p1",
                       "stale_finish": 1.0, "refreshed_finish": 1.05,
                       "new_finish": 1.0, "hysteresis": 0.1, "time": 7.0,
                       "iteration": 4}
        violations = lint_observe_records(
            [header(), verdict_record(), reprobe, resynthesis]
        )
        assert any(v.check == "observe-hysteresis" for v in violations)

    def test_non_monotonic_times_are_flagged(self):
        violations = lint_observe_records(
            [header(), verdict_record(time=5.0),
             verdict_record(id="v2", time=4.0, evidence=[[3.0, 1.0]])]
        )
        assert any(v.check == "observe-monotonic" for v in violations)

    def test_wellformed_chain_is_clean(self):
        reprobe = {"type": "reprobe", "id": "p1", "verdicts": ["v1"],
                   "probed_links": ["n0->n1"], "start": 6.0, "end": 6.5,
                   "iteration": 4}
        resynthesis = {"type": "resynthesis", "id": "s1", "reprobe": "p1",
                       "stale_finish": 1.0, "refreshed_finish": 1.5,
                       "new_finish": 1.2, "hysteresis": 0.1, "time": 7.0,
                       "iteration": 4}
        assert lint_observe_records(
            [header(), verdict_record(), reprobe, resynthesis]
        ) == []


# -- quality scoring ---------------------------------------------------------------


class TestEvaluateDetection:
    def test_unmatched_verdicts_are_false_positives(self):
        report = evaluate_detection([verdict_record()], labels=[])
        assert report.precision == 0.0
        assert report.recall == 1.0  # no labels to miss

    def test_kind_and_node_both_gate_time_labels(self):
        label = {"kinds": ("bandwidth-drift",), "node": "n0",
                 "start_seconds": 4.0, "end_seconds": 10.0}
        hit = evaluate_detection([verdict_record()], [label])
        assert hit.recall == 1.0 and hit.precision == 1.0
        miss = evaluate_detection(
            [verdict_record(kind="straggler-emergence")], [label]
        )
        assert miss.recall == 0.0 and miss.precision == 0.0

    def test_iteration_labels_match_on_subject(self):
        label = {"kinds": ("straggler-emergence",), "subject": "rank3",
                 "iterations": (5, 6, 7)}
        verdict = verdict_record(
            kind="straggler-emergence", subject="rank3",
            implicated_links=[], iteration=8,
        )
        assert evaluate_detection([verdict], [label]).recall == 1.0
        early = verdict_record(
            kind="straggler-emergence", subject="rank3",
            implicated_links=[], iteration=2,
        )
        assert evaluate_detection([early], [label]).recall == 0.0

    def test_latency_is_measured_from_window_open(self):
        label = {"kinds": ("bandwidth-drift",), "node": "n0",
                 "start_seconds": 4.0, "end_seconds": 10.0}
        report = evaluate_detection([verdict_record(time=6.0)], [label])
        assert report.worst_latency_seconds == pytest.approx(2.0)


# -- the aggregate bench CLI -------------------------------------------------------


class TestBenchAggregate:
    def test_compare_payloads_flags_regressions_and_gaps(self):
        from repro.bench.__main__ import compare_payloads

        baseline = {"figures": {"fig11": {"cells": {"A|adapcc": 10e9, "A|nccl": 5e9}}}}
        same = {"figures": {"fig11": {"cells": {"A|adapcc": 10e9, "A|nccl": 5e9}}}}
        assert compare_payloads(same, baseline) == []
        within = {"figures": {"fig11": {"cells": {"A|adapcc": 9.5e9, "A|nccl": 5e9}}}}
        assert compare_payloads(within, baseline) == []
        slow = {"figures": {"fig11": {"cells": {"A|adapcc": 8.0e9, "A|nccl": 5e9}}}}
        assert len(compare_payloads(slow, baseline)) == 1
        missing = {"figures": {"fig11": {"cells": {"A|adapcc": 10e9}}}}
        assert len(compare_payloads(missing, baseline)) == 1
        assert len(compare_payloads({}, baseline)) == 1

    def test_committed_baseline_is_wellformed(self):
        path = os.path.join(os.path.dirname(__file__), "..", "BENCH_fig11_13.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["kind"] == "fig11_13_aggregate"
        assert not payload["quick"]
        assert set(payload["figures"]) == {"fig11", "fig12", "fig13"}
        for figure in payload["figures"].values():
            assert figure["cells"]
            for bandwidth in figure["cells"].values():
                assert bandwidth > 0
