"""Fault-tolerant control plane: leases, epochs, WAL, and transactional
strategy transitions.

The paper pins the adaptive relay coordinator on rank 0 (Fig. 6) and only
handles *worker* faults (T_fault eviction, Sec. IV-C.2); the coordinator
itself is a single point of failure. This package removes it:

* :mod:`repro.recovery.lease` — **lease-based election**. Every worker can
  become coordinator; the incumbent holds a sim-clock lease renewed
  through the Fig. 19d RPC-latency model, and on expiry the lowest-ranked
  live worker takes over under a monotonically increasing **epoch**.
  Messages carrying a stale epoch are *fenced* (dropped and counted),
  which is also what resolves split-brain after a partition heals.
* :mod:`repro.recovery.log` — **write-ahead event log + checkpoints**.
  The coordinator journals ready-set reports, ski-rental decisions,
  membership changes, and strategy installs as deterministic records; a
  new coordinator replays the latest checkpoint plus the log suffix and
  resumes the in-flight iteration without violating the bit-identical
  aggregation invariant the chaos conformance suite asserts.
* :mod:`repro.recovery.transitions` — **two-phase strategy transitions**.
  Re-synthesis becomes prepare/commit: workers ack the prepared strategy
  under the current epoch, and a coordinator crash between prepare and
  commit rolls back to the last committed strategy instead of leaving
  ranks on mixed plans.
* :mod:`repro.recovery.control_plane` — the :class:`ControlPlane`
  interface the relay coordinator is refactored against, plus
  :class:`RecoveringControlPlane` combining all three mechanisms.

``python -m repro.analysis --recovery`` lints a journal: records totally
ordered per epoch, every committed strategy quorum-acked, and no two
coordinators acting in the same epoch.
"""

from repro.recovery.control_plane import ControlPlane, RecoveringControlPlane
from repro.recovery.lease import (
    DEFAULT_LEASE_SECONDS,
    CoordinatorLease,
    EpochFence,
)
from repro.recovery.log import Checkpoint, EventLog, LogRecord, ReplayState
from repro.recovery.transitions import (
    TRANSITION_STATES,
    StrategyTransition,
    TransitionState,
    quorum_size,
)

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "TRANSITION_STATES",
    "Checkpoint",
    "ControlPlane",
    "CoordinatorLease",
    "EpochFence",
    "EventLog",
    "LogRecord",
    "RecoveringControlPlane",
    "ReplayState",
    "StrategyTransition",
    "TransitionState",
    "quorum_size",
]
