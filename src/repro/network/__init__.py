"""Network property modelling: α–β cost model, cloud traces, shaping."""

from repro.network.cost_model import AlphaBeta, fit_alpha_beta
from repro.network.traces import CloudTrace, TracePoint, generate_cloud_trace
from repro.network.shaping import TraceShaper

__all__ = [
    "AlphaBeta",
    "CloudTrace",
    "TracePoint",
    "TraceShaper",
    "fit_alpha_beta",
    "generate_cloud_trace",
]
