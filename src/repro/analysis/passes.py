"""The built-in analysis passes, registered with the pass framework.

The ten pass bodies live here (the scenario passes moved out of
``__main__`` when the CLI became a thin shell over the framework). Each
legacy entry point still returns bare :class:`Violation` records — tests
and the executor pre-flight keep importing those — and a thin registered
wrapper lifts them into structured :class:`Finding` records with the
pass's default severity.

Heavy imports happen inside each function: the CLI must stay importable
(for ``--list``) without dragging in numpy, the simulator, or the whole
runtime.
"""

from __future__ import annotations

from typing import Callable, List

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    from_violations,
)
from repro.analysis.registry import PassContext, PassSpec, RuleSpec, register
from repro.analysis.verify_strategy import Violation

Echo = Callable[[str], None]


def _silent(message: str) -> None:
    pass


# -- legacy pass bodies (return bare Violations; importable directly) ------------------


def run_source_pass(root=None, echo: Echo = _silent) -> List[Violation]:
    """Lint the repro source tree."""
    from repro.analysis.lint_source import lint_source

    return lint_source(root=root)


def run_race_pass(root=None, echo: Echo = _silent) -> List[Finding]:
    """Static determinism-hazard lint + dynamic happens-before check.

    The static half walks the order-sensitive sub-packages (or ``root``
    when given — tests point it at seeded hazard fixtures). The dynamic
    half — only on the real tree — plans one AllReduce, executes it under
    a fresh telemetry hub, and replays the exported run against the
    strategy's chunk-dependency DAG with vector clocks.
    """
    from repro.analysis.race import lint_determinism_hazards

    findings = list(lint_determinism_hazards(root=root))
    if root is not None:
        return findings

    import numpy as np

    from repro.analysis.cache import fingerprint_strategy
    from repro.analysis.race import check_run_against_dag
    from repro.bench.harness import BenchEnvironment
    from repro.hardware.presets import make_config
    from repro.synthesis.strategy import Primitive
    from repro.telemetry.core import TelemetryHub, hub, set_hub
    from repro.telemetry.export import parse_jsonl, to_jsonl

    previous = hub()
    fresh = TelemetryHub(enabled=True)
    set_hub(fresh)
    try:
        env = BenchEnvironment(make_config([2, 2]), "adapcc")
        env.backend.verify = False
        inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
        strategy = env.backend.plan(Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks)
        env.backend.run(
            strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0)
        )
        run = parse_jsonl(to_jsonl(fresh))
    finally:
        set_hub(previous)
    dynamic = check_run_against_dag(strategy, run)
    echo(
        f"races: {len(findings)} static hazard(s); checked "
        f"{len(run.spans)} spans against the chunk DAG of strategy "
        f"{fingerprint_strategy(strategy)[:12]} — {len(dynamic)} race(s)"
    )
    findings.extend(dynamic)
    return findings


def run_strategy_pass(
    tensor_bytes: float = 8 * 1024 * 1024, echo: Echo = _silent
) -> List[Violation]:
    """Plan and statically verify strategies across backends and topologies.

    Covers the Fig. 11–13 benchmark families: every registered backend on
    single- and multi-server, homogeneous and mixed-SKU clusters, for each
    primitive the backend supports (a backend declining a primitive with a
    ``SynthesisError`` is skipped, not a violation).
    """
    from repro.analysis.verify_strategy import verify_strategy
    from repro.baselines import available_backends
    from repro.bench.harness import BenchEnvironment
    from repro.errors import SynthesisError
    from repro.hardware.presets import make_config
    from repro.synthesis.strategy import Primitive

    configs = [
        ("A100:(4,4)", make_config([4, 4])),
        ("A100:(4,4) V100:(4,4)", make_config([4, 4], [4, 4])),
        ("A100:(2,2) V100:(4,4)", make_config([2, 2], [4, 4])),
    ]
    primitives = [
        Primitive.REDUCE,
        Primitive.ALLREDUCE,
        Primitive.BROADCAST,
        Primitive.ALLTOALL,
    ]
    violations: List[Violation] = []
    planned = skipped = 0
    for label, specs in configs:
        for backend_name in available_backends():
            env = BenchEnvironment(specs, backend_name)
            env.backend.verify = False  # this pass IS the verification
            for primitive in primitives:
                try:
                    strategy = env.backend.plan(
                        primitive, tensor_bytes, env.ranks
                    )
                except SynthesisError:
                    skipped += 1
                    continue
                planned += 1
                for v in verify_strategy(strategy, env.topology):
                    violations.append(
                        Violation(
                            v.check,
                            f"{backend_name}/{primitive.value}/{label}/{v.subject}",
                            v.detail,
                        )
                    )
    echo(
        f"strategies: verified {planned} planned strategies "
        f"({skipped} unsupported combinations skipped)"
    )
    return violations


def run_trace_pass(echo: Echo = _silent) -> List[Violation]:
    """Execute one recorded AllReduce and lint the network trace."""
    import numpy as np

    from repro.analysis.lint_trace import lint_trace
    from repro.bench.harness import BenchEnvironment
    from repro.hardware.presets import make_config
    from repro.simulation.records import TraceRecorder
    from repro.synthesis.strategy import Primitive

    env = BenchEnvironment(make_config([4, 4]), "adapcc")
    env.backend.verify = False
    recorder = TraceRecorder()
    env.cluster.network.attach_recorder(recorder)
    inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
    strategy = env.backend.plan(Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks)
    env.backend.run(strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0))
    echo(f"traces: linted {len(recorder.records)} trace records")
    return lint_trace(recorder.records)


def run_chaos_pass(seed: int = 23, echo: Echo = _silent) -> List[Violation]:
    """Replay one seeded fault plan with a recorder attached and lint it."""
    from repro.analysis.lint_chaos import lint_chaos
    from repro.chaos import ChaosRunner, FaultPlan
    from repro.hardware.presets import make_homo_cluster
    from repro.simulation.records import TraceRecorder

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.generate(
        seed=seed,
        world=8,
        iterations=3,
        straggler_rate=0.4,
        crash_rate=0.3,
        link_fault_rate=0.6,
        num_instances=2,
    )
    recorder = TraceRecorder()
    report = ChaosRunner(specs, plan, length=512, recorder=recorder).run()
    echo(
        f"chaos: replayed seed {seed} — {len(plan.stragglers)} stragglers, "
        f"{len(plan.crashes)} crashes, {len(plan.link_faults)} link faults; "
        f"linted {len(recorder.records)} trace records"
    )
    violations = lint_chaos(recorder.records)
    if not report.all_exact:
        violations.append(
            Violation(
                "chaos-exactness",
                f"seed{seed}",
                "a chaos iteration's AllReduce was not bitwise exact",
            )
        )
    return violations


def run_recovery_pass(seed: int = 29, echo: Echo = _silent) -> List[Violation]:
    """Crash the coordinator (both phases), partition, then lint the journal."""
    from repro.analysis.lint_recovery import lint_recovery
    from repro.chaos import (
        ChaosRunner,
        CoordinatorCrashFault,
        FaultPlan,
        PartitionFault,
    )
    from repro.hardware.presets import make_homo_cluster

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan(
        seed=seed,
        iterations=5,
        coordinator_crashes=(
            CoordinatorCrashFault(1, "decide"),
            CoordinatorCrashFault(3, "transition"),
        ),
        partitions=(PartitionFault((0,), 2, 4),),
    )
    runner = ChaosRunner(specs, plan, length=512)
    report = runner.run()
    log = runner.control_plane.log
    echo(
        f"recovery: seed {seed} — {report.elections} elections, "
        f"{report.fenced_messages} fenced messages, {report.rollbacks} "
        f"rollback(s), {report.replayed_records} replayed records; "
        f"linted {len(log)} journal records"
    )
    violations = lint_recovery(log)
    if not report.all_exact:
        violations.append(
            Violation(
                "recovery-exactness",
                f"seed{seed}",
                "a coordinator-crash iteration's AllReduce was not bitwise exact",
            )
        )
    if report.elections < 2 or report.rollbacks < 1:
        violations.append(
            Violation(
                "recovery-coverage",
                f"seed{seed}",
                "the recovery scenario did not exercise both failover phases",
            )
        )
    return violations


def run_telemetry_pass(target=None, echo: Echo = _silent) -> List[Violation]:
    """Lint exported telemetry — a given file, or a fresh self-check run.

    With ``target`` a path, lint that file (JSONL run or Chrome trace,
    detected by content). With ``target`` true-ish-but-not-a-path (the
    bare ``--telemetry`` flag), install a fresh enabled hub, run one
    adaptive AllReduce with a straggler so every layer emits, and lint
    both export formats in memory; the previous hub is restored after.
    """
    from repro.analysis.lint_telemetry import (
        lint_chrome_trace,
        lint_telemetry_file,
        lint_telemetry_run,
    )

    if isinstance(target, str):
        violations = lint_telemetry_file(target)
        echo(f"telemetry: linted {target}")
        return violations

    import numpy as np

    from repro.adapcc import AdapCCSession
    from repro.hardware.presets import make_config
    from repro.telemetry.core import TelemetryHub, hub, set_hub
    from repro.telemetry.export import parse_jsonl, to_chrome_trace, to_jsonl

    previous = hub()
    fresh = TelemetryHub(enabled=True)
    set_hub(fresh)
    try:
        session = AdapCCSession(make_config([2, 2], [2, 2]))
        session.init()
        session.setup()
        tensors = {rank: np.full(256, float(rank + 1)) for rank in range(4)}
        ready = {0: 0.0, 1: 0.0, 2: 0.0, 3: 0.5}
        session.allreduce(tensors, ready_times=ready)
        jsonl = to_jsonl(fresh)
        chrome = to_chrome_trace(fresh)
    finally:
        set_hub(previous)
    violations = lint_telemetry_run(parse_jsonl(jsonl))
    violations.extend(lint_chrome_trace(chrome))
    echo(
        f"telemetry: self-check exported {len(fresh.tracer.spans)} spans, "
        f"{len(fresh.tracer.events)} events; linted JSONL + Chrome forms"
    )
    return violations


def run_observe_pass(
    target=None, seed: int = 11, echo: Echo = _silent
) -> List[Violation]:
    """Lint an observe log — a given file, or a fresh closed-loop run.

    With ``target`` a path, lint that exported observe JSONL file. With
    the bare ``--observe`` flag, install a fresh enabled telemetry hub,
    replay the canonical interference fault plan through the chaos runner
    with the watchdog armed, and check both the log's causal chain and
    its detection quality (the injected fault must be detected, and the
    loop must actually have re-probed and re-synthesized).
    """
    from repro.analysis.lint_observe import lint_observe_file, lint_observe_records

    if isinstance(target, str):
        violations = lint_observe_file(target)
        echo(f"observe: linted {target}")
        return violations

    from repro.chaos import ChaosRunner, FaultPlan
    from repro.hardware.presets import make_homo_cluster
    from repro.observe import ObserveConfig, evaluate_detection
    from repro.telemetry.core import TelemetryHub, hub, set_hub

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.interference(seed=seed, iterations=24)
    previous = hub()
    set_hub(TelemetryHub(enabled=True))
    try:
        runner = ChaosRunner(
            specs, plan, length=512, byte_scale=200_000.0, observe=ObserveConfig()
        )
        report = runner.run()
    finally:
        set_hub(previous)
    watchdog = runner.watchdog
    quality = evaluate_detection(watchdog.log.verdicts, plan.ground_truth())
    echo(
        f"observe: seed {seed} — {watchdog.verdicts_raised} verdict(s), "
        f"{watchdog.reprobes_run} targeted re-probe(s), "
        f"{watchdog.resyntheses_triggered} re-synthesis(es); recall "
        f"{quality.recall:.2f}, precision {quality.precision:.2f}; "
        f"linted {len(watchdog.log)} log records"
    )
    violations = lint_observe_records(watchdog.log.records)
    if quality.recall < 1.0:
        violations.append(
            Violation(
                "observe-detection",
                f"seed{seed}",
                "the watchdog missed the injected interference fault",
            )
        )
    if quality.precision < 1.0:
        violations.append(
            Violation(
                "observe-detection",
                f"seed{seed}",
                f"{len(quality.false_positives)} verdict(s) match no injected fault",
            )
        )
    if watchdog.reprobes_run < 1 or watchdog.resyntheses_triggered < 1:
        violations.append(
            Violation(
                "observe-loop",
                f"seed{seed}",
                "the scenario did not close the loop (no re-probe or no "
                "re-synthesis)",
            )
        )
    if not report.all_exact:
        violations.append(
            Violation(
                "observe-exactness",
                f"seed{seed}",
                "an observed iteration's AllReduce was not bitwise exact",
            )
        )
    return violations


def run_critpath_pass(
    target=None, seed: int = 11, echo: Echo = _silent
) -> List[Violation]:
    """Lint a critpath report — a given file, or fresh self-check runs.

    With ``target`` a path, lint that exported JSON report. With the bare
    ``--critpath`` flag, run three scenarios end to end:

    * one instrumented AllReduce (the race pass's scenario), analyzed in
      both dag and inferred modes — structural lint plus byte-identity
      of repeated analyses;
    * the canonical interference chaos plan — the top-1 attributed link
      must touch the faulted NIC's node (attribution scored against the
      chaos ground truth);
    * a seeded straggler plan — the attribution must name the injected
      rank (top rank, or a top link touching its GPU).
    """
    from repro.analysis.lint_critpath import lint_critpath_file, lint_critpath_report

    if isinstance(target, str):
        violations = lint_critpath_file(target)
        echo(f"critpath: linted {target}")
        return violations

    import numpy as np

    from repro.bench.harness import BenchEnvironment
    from repro.chaos import ChaosRunner, FaultPlan
    from repro.chaos.plan import StragglerFault
    from repro.critpath import analyze_run, report_to_json
    from repro.hardware.presets import make_config, make_homo_cluster
    from repro.observe import ObserveConfig
    from repro.observe.verdicts import link_endpoints
    from repro.synthesis.strategy import Primitive
    from repro.telemetry.core import TelemetryHub, hub, set_hub
    from repro.telemetry.export import parse_jsonl, to_jsonl

    violations: List[Violation] = []

    def _captured(drive):
        previous = hub()
        fresh = TelemetryHub(enabled=True)
        set_hub(fresh)
        try:
            extra = drive()
        finally:
            set_hub(previous)
        return parse_jsonl(to_jsonl(fresh)), extra

    def _allreduce():
        env = BenchEnvironment(make_config([2, 2]), "adapcc")
        env.backend.verify = False
        inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
        strategy = env.backend.plan(Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks)
        env.backend.run(strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0))
        return strategy

    run, strategy = _captured(_allreduce)
    dag_report = analyze_run(run, strategy=strategy)
    inferred_report = analyze_run(run)
    violations.extend(lint_critpath_report(dag_report))
    violations.extend(lint_critpath_report(inferred_report))
    if report_to_json(dag_report) != report_to_json(analyze_run(run, strategy=strategy)):
        violations.append(
            Violation(
                "critpath-determinism",
                "allreduce",
                "re-analysis of the same run produced different report bytes",
            )
        )
    echo(
        f"critpath: AllReduce — dag mode covered {dag_report['span_count']} "
        f"span(s), top link {dag_report['top_link']['name']}; inferred mode "
        f"stitched {inferred_report['inferred_edges']} edge(s)"
    )

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)

    def _chaos(plan):
        ChaosRunner(
            specs, plan, length=512, byte_scale=200_000.0, observe=ObserveConfig()
        ).run()

    interference = FaultPlan.interference(seed=seed, iterations=24)
    fault_node = f"n{interference.link_faults[0].instance_id}"
    run, _ = _captured(lambda: _chaos(interference))
    report = analyze_run(run)
    violations.extend(lint_critpath_report(report))
    top_link = (report["top_link"] or {}).get("name", "")
    if not top_link or fault_node not in link_endpoints(top_link):
        violations.append(
            Violation(
                "critpath-groundtruth",
                f"seed{seed}",
                f"interference on {fault_node}: top link {top_link!r} does "
                "not touch the faulted node",
            )
        )
    echo(
        f"critpath: interference seed {seed} — top link {top_link} "
        f"(injected: {fault_node})"
    )

    straggler_rank = 3
    straggler = FaultPlan(
        seed=seed,
        iterations=10,
        stragglers=tuple(
            StragglerFault(
                rank=straggler_rank, iteration=i, delay_seconds=0.2
            )
            for i in range(3, 8)
        ),
    )
    run, _ = _captured(lambda: _chaos(straggler))
    report = analyze_run(run)
    violations.extend(lint_critpath_report(report))
    top_rank = (report["top_rank"] or {}).get("name", "")
    top_link = (report["top_link"] or {}).get("name", "")
    gpu = f"g{straggler_rank}"
    if top_rank != f"rank{straggler_rank}" and (
        not top_link or gpu not in link_endpoints(top_link)
    ):
        violations.append(
            Violation(
                "critpath-groundtruth",
                f"seed{seed}",
                f"straggler on rank {straggler_rank}: attribution named "
                f"{top_rank!r} / {top_link!r}",
            )
        )
    echo(
        f"critpath: straggler rank {straggler_rank} — top rank {top_rank}, "
        f"readiness {report['readiness_seconds']:.3f}s"
    )
    return violations


def run_integrity_pass(
    target=None, seed: int = 11, echo: Echo = _silent
) -> List[Violation]:
    """Lint an integrity log — a given file, or fresh seeded scenarios.

    With ``target`` a path, lint that exported integrity JSONL file. With
    the bare ``--integrity`` flag, replay the canonical corruption plan at
    both corruption sites through the chaos runner with the integrity
    layer armed, and check:

    * the log's causal chain (checksum coverage, conviction-has-evidence,
      quarantine-implies-resynthesis, the log2 probe-round bound);
    * digest determinism — a same-seed re-run's log is byte-identical;
    * localization accuracy against the chaos ground truth — the injected
      link (and only it) is convicted, within one iteration of its window
      opening;
    * exactness — the healed run's final tensors are bitwise equal to the
      fault-free same-seed run's.
    """
    import json

    from repro.analysis.lint_integrity import (
        lint_integrity_file,
        lint_integrity_records,
    )

    if isinstance(target, str):
        violations = lint_integrity_file(target)
        echo(f"integrity: linted {target}")
        return violations

    import numpy as np

    from repro.chaos import ChaosRunner, FaultPlan
    from repro.hardware.presets import make_homo_cluster
    from repro.integrity import IntegrityConfig
    from repro.telemetry.core import TelemetryHub, hub, set_hub

    # Three instances: the NIC mesh then offers a detour (n0→n2→n1) for
    # the quarantined link, so re-synthesis can actually heal the run.
    specs = make_homo_cluster(num_servers=3, gpus_per_server=2)
    violations: List[Violation] = []

    def _run(plan):
        previous = hub()
        set_hub(TelemetryHub(enabled=True))
        try:
            return ChaosRunner(
                specs, plan, length=512, integrity=IntegrityConfig()
            ).run()
        finally:
            set_hub(previous)

    reference = ChaosRunner(
        specs, FaultPlan(seed=seed, iterations=5), length=512
    ).run()

    for site in ("wire", "kernel"):
        plan = FaultPlan.corruption(
            seed=seed, iterations=5, link="n0->n1", rate=0.6, site=site
        )
        fault = plan.corruptions[0]
        report = _run(plan)
        replay = _run(plan)
        subject = f"seed{seed}:{site}"
        if report.integrity_log != replay.integrity_log:
            violations.append(
                Violation(
                    "integrity-determinism",
                    subject,
                    "same-seed replay produced a different integrity log",
                )
            )
        records = [
            json.loads(line) for line in report.integrity_log.splitlines()
        ]
        violations.extend(lint_integrity_records(records))
        if report.convictions != [fault.link]:
            violations.append(
                Violation(
                    "integrity-detection",
                    subject,
                    f"injected {fault.link}, convicted {report.convictions}",
                )
            )
        detected_at = [
            o.iteration for o in report.iterations if o.corruption_detections
        ]
        if not detected_at or detected_at[0] != fault.start_iteration:
            violations.append(
                Violation(
                    "integrity-detection",
                    subject,
                    f"corruption window opens at iteration "
                    f"{fault.start_iteration} but detection came at "
                    f"{detected_at[:1] or None}",
                )
            )
        outputs = report.final_outputs()
        wanted = reference.final_outputs()
        if not all(np.array_equal(outputs[r], wanted[r]) for r in outputs):
            violations.append(
                Violation(
                    "integrity-exactness",
                    subject,
                    "healed run's final tensors differ from the fault-free "
                    "same-seed run",
                )
            )
        echo(
            f"integrity: {site} site seed {seed} — "
            f"{sum(o.corruption_detections for o in report.iterations)} "
            f"detection(s), {report.probe_rounds} probe round(s), convicted "
            f"{report.convictions}, quarantined {report.quarantined_links}; "
            f"linted {len(records)} log records"
        )
    return violations


def run_fleet_pass(
    target=None, seed: int = 11, echo: Echo = _silent
) -> List[Violation]:
    """Lint a merged fleet export — a given file, or a fresh replay.

    With ``target`` a path, structurally lint that merged fleet JSONL
    stream. With the bare ``--fleet`` flag, replay the canonical two-job
    overlap workload twice on one seed and check:

    * replay determinism — the same-seed merged export and report are
      byte-identical;
    * the merged stream's structure (job labels on every record,
      collision-free (job, id) identity, per-job byte conservation
      across hops, attribution backed by wire evidence);
    * attribution accuracy against the planted ground truth — precision
      and recall both exactly 1.0;
    * fairness sanity — the Jain index stays within [1/n, 1].
    """
    from repro.analysis.lint_fleet import lint_fleet_file, lint_fleet_run

    if isinstance(target, str):
        violations = lint_fleet_file(target)
        echo(f"fleet: linted {target}")
        return violations

    from repro.fleet.runner import FleetRunner
    from repro.fleet.workload import canonical_overlap_workload
    from repro.telemetry.export import parse_jsonl

    violations: List[Violation] = []
    subject = f"seed{seed}"
    result = FleetRunner(canonical_overlap_workload(seed=seed)).run()
    replay = FleetRunner(canonical_overlap_workload(seed=seed)).run()
    if (
        result.merged_jsonl != replay.merged_jsonl
        or result.report_json() != replay.report_json()
    ):
        violations.append(
            Violation(
                "fleet-determinism",
                subject,
                "same-seed fleet replay produced different export/report bytes",
            )
        )
    violations.extend(lint_fleet_run(parse_jsonl(result.merged_jsonl)))
    accuracy = result.report["accuracy"]
    if (
        accuracy is None
        or accuracy["precision"] != 1.0
        or accuracy["recall"] != 1.0
    ):
        violations.append(
            Violation(
                "fleet-groundtruth",
                subject,
                f"attribution accuracy vs planted truth is {accuracy!r}; "
                "expected precision/recall 1.0",
            )
        )
    fairness = result.report["fairness"]
    if not fairness["lower_bound"] - 1e-9 <= fairness["jain"] <= 1.0 + 1e-9:
        violations.append(
            Violation(
                "fleet-fairness",
                subject,
                f"Jain index {fairness['jain']} outside "
                f"[{fairness['lower_bound']}, 1]",
            )
        )
    echo(
        f"fleet: canonical overlap seed {seed} — "
        f"{len(result.attributions)} attribution(s), Jain "
        f"{fairness['jain']:.4f}, accuracy {accuracy}"
    )
    return violations


# -- registration ---------------------------------------------------------------------


def _rules(severity: str, *codes: str) -> tuple:
    return tuple(RuleSpec(code, severity, desc) for code, desc in codes)


def _err(*codes) -> tuple:
    return _rules(SEVERITY_ERROR, *codes)


register(
    PassSpec(
        name="source",
        description="AST determinism/convention lint over src/repro",
        title="source lint",
        rules=_err(
            ("syntax", "file does not parse"),
            ("ambient-random", "stdlib random / numpy global seed used"),
            ("wall-clock", "host wall clock read inside deterministic code"),
            ("unit-suffix", "abbreviated unit suffix on a public name"),
        ),
        run=lambda ctx: from_violations(
            run_source_pass(root=ctx.root, echo=ctx.echo), "source"
        ),
        inputs=(".",),
    )
)

register(
    PassSpec(
        name="strategies",
        description="plan every backend × primitive × benchmark topology "
        "and statically verify the strategies",
        title="strategy verifier",
        rules=_err(
            ("participants", "participant set malformed"),
            ("partition-sum", "sub-collective sizes do not sum to the primitive total"),
            ("subcollective-index", "duplicate sub-collective indices"),
            ("partition-size", "negative partition size"),
            ("chunk-size", "non-positive chunk size"),
            ("chunk-coverage", "chunk tiling does not cover the partition"),
            ("path-length", "flow path has fewer than two nodes"),
            ("path-endpoints", "path endpoints disagree with the flow"),
            ("endpoint-kind", "flow endpoint is not a GPU"),
            ("gpu-revisit", "path revisits a GPU"),
            ("flow-conservation", "non-participant GPU on a flow path"),
            ("unknown-node", "path node missing from the topology"),
            ("self-loop", "consecutive path nodes repeat"),
            ("path-contiguity", "path hop has no topology edge"),
            ("participant-coverage", "participant appears on no flow path"),
            ("root-missing", "rooted primitive lacks a root"),
            ("root-kind", "root is not a GPU"),
            ("root-participant", "root is not a participant"),
            ("root-placement", "flow does not start/end at the root"),
            ("root-aggregation", "reduce root does not aggregate"),
            ("aggregation-primitive", "aggregation on a non-reducing primitive"),
            ("aggregation-kind", "aggregation on a non-GPU node"),
            ("aggregation-off-path", "aggregating node lies on no flow path"),
            ("aggregation-cycle", "cyclic merge dependencies"),
            ("aggregation-units", "traffic-unit walk rejected the strategy"),
            ("aggregation-load", "aggregation increased an edge's unit load"),
            ("behavior-cycle", "behaviour-tuple derivation found a cycle"),
            ("root-sends", "root rank has hasSend set"),
            ("behavior-kernel", "kernel launch without an aggregation flag"),
            ("relay-kernel", "single-branch relay would launch a kernel"),
            ("deadlock", "chunk dependency graph cannot reach a terminal slot"),
        ),
        run=lambda ctx: from_violations(run_strategy_pass(echo=ctx.echo), "strategies"),
        inputs=(
            "synthesis",
            "baselines",
            "hardware",
            "topology",
            "relay",
            "bench/harness.py",
            "analysis/verify_strategy.py",
            "errors.py",
        ),
    )
)

register(
    PassSpec(
        name="traces",
        description="run a recorded AllReduce and lint the fluid-network trace",
        title="trace lint",
        rules=_err(
            ("event-order", "trace events out of order or outside a flow lifetime"),
            ("rate-sign", "negative allocated rate"),
            ("byte-conservation", "flow bytes not conserved"),
            ("link-capacity", "aggregate rate exceeds link capacity"),
            ("stream-cap", "flow rate exceeds its per-stream cap"),
            ("max-min", "flow below cap with no saturated link"),
        ),
        run=lambda ctx: from_violations(run_trace_pass(echo=ctx.echo), "traces"),
        inputs=(
            "simulation",
            "runtime",
            "baselines",
            "hardware",
            "synthesis",
            "topology",
            "relay",
            "bench/harness.py",
            "analysis/lint_trace.py",
        ),
    )
)

register(
    PassSpec(
        name="chaos",
        description="replay a seeded fault plan and lint the trace through "
        "the injected faults",
        title="chaos lint",
        rules=_err(
            ("event-order", "trace events out of order"),
            ("chaos-kind", "unknown chaos event kind"),
            ("chaos-link-fraction", "link fault fraction out of bounds"),
            ("chaos-link-restore", "faulted link capacity never restored"),
            ("chaos-straggler-delay", "straggler delay malformed"),
            ("chaos-msg-action", "queue fault action malformed"),
            ("chaos-evict-cause", "eviction without an injected cause"),
            ("chaos-exactness", "a chaos iteration was not bitwise exact"),
        ),
        run=lambda ctx: from_violations(run_chaos_pass(echo=ctx.echo), "chaos"),
        inputs=(
            "chaos",
            "simulation",
            "runtime",
            "relay",
            "recovery",
            "hardware",
            "analysis/lint_chaos.py",
            "analysis/lint_trace.py",
        ),
    )
)

register(
    PassSpec(
        name="recovery",
        description="crash the coordinator mid-decision and mid-transition, "
        "then lint the control-plane journal",
        title="recovery lint",
        rules=_err(
            ("record-index", "journal total order has a gap"),
            ("record-time", "journal timestamps regress"),
            ("epoch-regression", "epoch went backwards"),
            ("election-first", "decision before any election"),
            ("split-brain", "two coordinators in one epoch"),
            ("ack-nonmember", "ack from a non-member"),
            ("commit-quorum", "commit without a quorum"),
            ("commit-epoch", "commit from a stale epoch"),
            ("commit-unprepared", "commit without a prepare"),
            ("dangling-prepare", "prepare with no commit or rollback"),
            ("rollback-unprepared", "rollback without a prepare"),
            ("rollback-after-commit", "rollback after the commit"),
            ("recovery-exactness", "a failover iteration was not bitwise exact"),
            ("recovery-coverage", "scenario missed a failover phase"),
        ),
        run=lambda ctx: from_violations(run_recovery_pass(echo=ctx.echo), "recovery"),
        inputs=(
            "recovery",
            "chaos",
            "runtime",
            "relay",
            "hardware",
            "simulation",
            "analysis/lint_recovery.py",
        ),
    )
)

register(
    PassSpec(
        name="telemetry",
        description="run an instrumented collective and lint the JSONL + "
        "Chrome-trace exports (or lint a given export file)",
        title="telemetry lint",
        rules=_err(
            ("telemetry-io", "export file unreadable"),
            ("telemetry-schema", "record schema malformed"),
            ("telemetry-identity", "span ids duplicated or unparented"),
            ("telemetry-nesting", "child span escapes its parent interval"),
            ("telemetry-clock", "timestamps regress"),
            ("chrome-schema", "Chrome trace structure malformed"),
        ),
        run=lambda ctx: from_violations(
            run_telemetry_pass(target=ctx.target, echo=ctx.echo), "telemetry"
        ),
        inputs=(
            "telemetry",
            "adapcc.py",
            "runtime",
            "relay",
            "hardware",
            "simulation",
            "analysis/lint_telemetry.py",
        ),
        serial=True,
        accepts_target=True,
    )
)

register(
    PassSpec(
        name="observe",
        description="drive the canonical interference scenario with the "
        "watchdog armed and lint the verdict log's causal chain "
        "(or lint a given observe JSONL file)",
        title="observe lint",
        rules=_err(
            ("observe-header", "log header malformed"),
            ("observe-kind", "unknown observe record kind"),
            ("observe-record", "record schema malformed"),
            ("observe-monotonic", "log timestamps regress"),
            ("observe-evidence", "verdict without an evidence window"),
            ("observe-causality", "re-probe/re-synthesis without a verdict"),
            ("observe-targeting", "re-probe not targeted at the verdict's scope"),
            ("observe-hysteresis", "re-synthesis violates hysteresis discipline"),
            ("observe-threshold", "detector fired below its threshold"),
            ("observe-disabled", "watchdog acted while disabled"),
            ("observe-detection", "missed fault or false-positive verdict"),
            ("observe-loop", "loop did not close (no re-probe/re-synthesis)"),
            ("observe-exactness", "an observed iteration was not bitwise exact"),
        ),
        run=lambda ctx: from_violations(
            run_observe_pass(target=ctx.target, echo=ctx.echo), "observe"
        ),
        inputs=(
            "observe",
            "chaos",
            "telemetry",
            "runtime",
            "relay",
            "hardware",
            "simulation",
            "analysis/lint_observe.py",
        ),
        serial=True,
        accepts_target=True,
    )
)

register(
    PassSpec(
        name="races",
        description="sim-determinism race detector: static AST hazards over "
        "order-sensitive packages + vector-clock happens-before "
        "check of an executed run against its strategy's chunk DAG",
        title="race detector",
        rules=(
            RuleSpec(
                "race-unordered-iteration",
                SEVERITY_WARNING,
                "unordered set iteration reaches a scheduling sink",
            ),
            RuleSpec(
                "race-unkeyed-timestamp",
                SEVERITY_WARNING,
                "heap entry lacks a monotonic tiebreak element",
            ),
            RuleSpec(
                "race-float-accumulation",
                SEVERITY_WARNING,
                "float accumulation folds over an unordered set",
            ),
            RuleSpec(
                "race-dag-coverage",
                SEVERITY_ERROR,
                "executed run missing spans the chunk DAG requires",
            ),
            RuleSpec(
                "race-happens-before",
                SEVERITY_ERROR,
                "recorded interleaving violates the chunk DAG's "
                "happens-before order",
            ),
            RuleSpec("syntax", SEVERITY_ERROR, "file does not parse"),
        ),
        run=lambda ctx: run_race_pass(root=ctx.root, echo=ctx.echo),
        inputs=(
            "simulation",
            "runtime",
            "recovery",
            "observe",
            "synthesis",
            "baselines",
            "topology",
            "telemetry",
            "hardware",
            "relay",
            "bench/harness.py",
            "analysis/race.py",
        ),
        serial=True,
    )
)

register(
    PassSpec(
        name="critpath",
        description="critical-path / bottleneck-attribution lint: analyze "
        "an instrumented AllReduce plus seeded chaos plans and check the "
        "reports' structure, determinism, and attribution against the "
        "injected faults (or lint a given report JSON file)",
        title="critpath lint",
        rules=_err(
            ("critpath-io", "report file unreadable"),
            ("critpath-schema", "report envelope malformed"),
            ("critpath-path", "critical path not contiguous"),
            ("critpath-sums", "durations/shares do not sum"),
            ("critpath-attribution", "top culprit inconsistent with tables"),
            ("critpath-groundtruth", "attribution missed an injected fault"),
            ("critpath-determinism", "same-run reports not byte-identical"),
        ),
        run=lambda ctx: from_violations(
            run_critpath_pass(target=ctx.target, echo=ctx.echo), "critpath"
        ),
        inputs=(
            "critpath",
            "chaos",
            "observe",
            "telemetry",
            "runtime",
            "relay",
            "hardware",
            "simulation",
            "analysis/lint_critpath.py",
        ),
        serial=True,
        accepts_target=True,
    )
)

register(
    PassSpec(
        name="integrity",
        description="replay seeded silent-corruption plans with the "
        "integrity layer armed and lint the detect→localize→quarantine→"
        "re-synthesize chain (or lint a given integrity JSONL file)",
        title="integrity lint",
        rules=_err(
            ("integrity-io", "integrity log unreadable"),
            ("integrity-header", "log does not open with its config record"),
            ("integrity-kind", "unknown integrity record kind"),
            ("integrity-record", "record schema malformed"),
            ("integrity-monotonic", "log timestamps regress"),
            ("integrity-coverage", "checksum coverage is partial"),
            ("integrity-probe-bound", "localization exceeded the log2 round bound"),
            ("integrity-conviction-evidence", "conviction without direct evidence"),
            ("integrity-quarantine", "quarantine without conviction or re-synthesis"),
            ("integrity-detection", "injected link missed or clean link convicted"),
            ("integrity-determinism", "same-seed logs not byte-identical"),
            ("integrity-exactness", "healed run differs from the fault-free run"),
        ),
        run=lambda ctx: from_violations(
            run_integrity_pass(target=ctx.target, echo=ctx.echo), "integrity"
        ),
        inputs=(
            "integrity",
            "chaos",
            "topology",
            "runtime",
            "relay",
            "recovery",
            "hardware",
            "simulation",
            "telemetry",
            "analysis/lint_integrity.py",
        ),
        serial=True,
        accepts_target=True,
    )
)

register(
    PassSpec(
        name="fleet",
        description="replay the canonical multi-job overlap workload over "
        "one shared fabric and lint the merged per-job export, replay "
        "determinism, and interference attribution against the planted "
        "ground truth (or lint a given fleet JSONL file)",
        title="fleet lint",
        rules=_err(
            ("fleet-io", "fleet export unreadable"),
            ("fleet-schema", "merged stream header/label schema malformed"),
            ("fleet-identity", "record ids collide within a job's stream"),
            ("fleet-conservation", "a job's chunk changed size across hops"),
            ("fleet-attribution", "attribution not backed by wire evidence"),
            ("fleet-determinism", "same-seed replay not byte-identical"),
            ("fleet-groundtruth", "attribution precision/recall below 1.0"),
            ("fleet-fairness", "Jain index outside its bounds"),
        ),
        run=lambda ctx: from_violations(
            run_fleet_pass(target=ctx.target, echo=ctx.echo), "fleet"
        ),
        inputs=(
            "fleet",
            "observe",
            "telemetry",
            "critpath",
            "synthesis",
            "runtime",
            "relay",
            "hardware",
            "simulation",
            "analysis/lint_fleet.py",
        ),
        serial=True,
        accepts_target=True,
    )
)
