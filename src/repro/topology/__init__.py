"""Logical topology construction and probe-based detection."""

from repro.topology.graph import Edge, EdgeKind, LogicalTopology, NodeId, NodeKind
from repro.topology.detector import DetectionReport, Detector, InstanceReport

__all__ = [
    "DetectionReport",
    "Detector",
    "Edge",
    "EdgeKind",
    "InstanceReport",
    "LogicalTopology",
    "NodeId",
    "NodeKind",
]
