"""Discrete-event simulation substrate.

This package is the stand-in for the paper's hardware testbed: a small,
deterministic discrete-event engine (:mod:`repro.simulation.engine`) in the
style of SimPy, plus a fluid-flow network model
(:mod:`repro.simulation.fluid`) that gives max-min fair bandwidth sharing
with per-stream rate caps — the first-order effects AdapCC's evaluation
depends on.

Typical use::

    from repro.simulation import Simulator

    sim = Simulator()

    def hello(sim):
        yield sim.timeout(1.0)
        print("one simulated second elapsed", sim.now)

    sim.process(hello(sim))
    sim.run()
"""

from repro.simulation.engine import Event, Process, Simulator, Timeout
from repro.simulation.primitives import AllOf, AnyOf
from repro.simulation.resources import Store
from repro.simulation.fluid import FluidLink, FluidNetwork, Transfer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FluidLink",
    "FluidNetwork",
    "Process",
    "Simulator",
    "Store",
    "Timeout",
    "Transfer",
]
