"""Property tests for the strategy verifier (DESIGN.md §5).

Two directions:

* **soundness of acceptance** — whatever the optimizer synthesizes, over
  randomized participant subsets, primitives and parallelism degrees, the
  verifier accepts (the synthesizer and the invariants agree);
* **sensitivity** — a strategy corrupted by any seeded mutation class is
  always rejected with at least one violation.

The Fig. 11–13 regression at the bottom pins the benchmark strategy pass:
every backend × primitive × paper cluster configuration plans clean.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.__main__ import run_strategy_pass
from repro.analysis.verify_strategy import verify_strategy
from repro.hardware import Cluster, make_hetero_cluster
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node


def hetero_topology():
    sim = Simulator()
    cluster = Cluster(sim, make_hetero_cluster())
    return LogicalTopology.from_cluster(cluster)


TOPO = hetero_topology()  # read-only: verification never mutates

PRIMITIVES = [
    Primitive.REDUCE,
    Primitive.ALLREDUCE,
    Primitive.BROADCAST,
    Primitive.ALLGATHER,
    Primitive.REDUCE_SCATTER,
    Primitive.ALLTOALL,
]


def participants_from_mask(mask):
    ranks = [r for r in range(16) if mask & (1 << r)]
    return ranks if len(ranks) >= 2 else [0, 9]


def fresh_strategy(mask, m=2, primitive=Primitive.REDUCE):
    participants = participants_from_mask(mask)
    synth = Synthesizer(
        TOPO, SynthesizerConfig(parallelism=m, families=("hierarchical-tree",))
    )
    return synth.synthesize(primitive, 4_000_000.0, participants)


class TestOptimizerOutputAlwaysVerifies:
    @settings(max_examples=30, deadline=None)
    @given(
        mask=st.integers(min_value=3, max_value=(1 << 16) - 1),
        primitive_index=st.integers(min_value=0, max_value=len(PRIMITIVES) - 1),
        m=st.integers(min_value=1, max_value=3),
    )
    def test_any_subset_any_primitive_verifies(self, mask, primitive_index, m):
        strategy = fresh_strategy(mask, m, PRIMITIVES[primitive_index])
        assert verify_strategy(strategy, TOPO) == []


# -- seeded corruption classes ---------------------------------------------------------
#
# Each mutation takes a freshly synthesized REDUCE strategy and corrupts
# it in place; every class must be rejected for every random topology
# subset. Mutations return False when inapplicable (then skipped).


def _mutate_truncate_path(strategy):
    strategy.subcollectives[0].flows[0].path.pop()
    return True


def _mutate_drop_interior_hop(strategy):
    for sc in strategy.subcollectives:
        for flow in sc.flows:
            if len(flow.path) >= 4:
                flow.path.pop(1)
                return True
    return False


def _mutate_zero_chunk(strategy):
    strategy.subcollectives[0].chunk_size = 0.0
    return True


def _mutate_shrink_partition(strategy):
    sc = next((s for s in strategy.subcollectives if s.size > 0), None)
    if sc is None:
        return False
    sc.size *= 0.25
    return True


def _mutate_unflag_root_aggregation(strategy):
    for sc in strategy.subcollectives:
        if sc.root is not None and sc.flows and sc.aggregates_at(sc.root):
            sc.aggregation[sc.root] = False
            return True
    return False


def _mutate_off_path_aggregation(strategy):
    strategy.subcollectives[0].aggregation[gpu_node(99)] = True
    return True


def _mutate_evict_participant(strategy):
    sc = strategy.subcollectives[0]
    if sc.root is None or len(strategy.participants) < 2:
        return False
    victim = next(r for r in strategy.participants if gpu_node(r) != sc.root)
    strategy.participants.remove(victim)
    return True


def _mutate_move_root(strategy):
    sc = next((s for s in strategy.subcollectives if s.flows), None)
    if sc is None or sc.root is None:
        return False
    others = [r for r in strategy.participants if gpu_node(r) != sc.root]
    if not others:
        return False
    sc.root = gpu_node(others[0])
    return True


MUTATIONS = [
    _mutate_truncate_path,
    _mutate_drop_interior_hop,
    _mutate_zero_chunk,
    _mutate_shrink_partition,
    _mutate_unflag_root_aggregation,
    _mutate_off_path_aggregation,
    _mutate_evict_participant,
    _mutate_move_root,
]


class TestMutationsAlwaysRejected:
    @settings(max_examples=40, deadline=None)
    @given(
        mask=st.integers(min_value=3, max_value=(1 << 16) - 1),
        mutation_index=st.integers(min_value=0, max_value=len(MUTATIONS) - 1),
    )
    def test_seeded_corruption_is_rejected(self, mask, mutation_index):
        strategy = fresh_strategy(mask)
        assert verify_strategy(strategy, TOPO) == []  # clean before mutation
        mutation = MUTATIONS[mutation_index]
        if not mutation(strategy):
            return  # inapplicable to this strategy shape
        assert verify_strategy(strategy, TOPO) != [], mutation.__name__

    def test_every_mutation_class_applies_somewhere(self):
        """Each of the ≥6 corruption classes triggers on the full-cluster
        strategy, so the property above genuinely exercises all of them."""
        for mutation in MUTATIONS:
            strategy = fresh_strategy((1 << 16) - 1)
            assert mutation(strategy), mutation.__name__
            assert verify_strategy(strategy, TOPO) != [], mutation.__name__


class TestFig11To13Regression:
    def test_benchmark_strategies_all_verify(self):
        """Every backend × primitive × paper cluster configuration from the
        Fig. 11–13 benchmarks plans a strategy that verifies clean."""
        assert run_strategy_pass(tensor_bytes=4 * 1024 * 1024) == []
