"""Tests for the baseline backends: correctness, documented handicaps,
and the relative-performance shapes the paper reports."""

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.hardware import Cluster, MB, make_hetero_cluster, make_homo_cluster
from repro.baselines import available_backends, make_backend
from repro.baselines.nccl import NCCL_CHUNK_BYTES, NcclBackend
from repro.baselines.blink import BLINK_CHUNK_BYTES
from repro.hardware.presets import a100_server, fragmented_server
from repro.simulation import Simulator
from repro.synthesis import Primitive
from repro.topology import LogicalTopology
from repro.topology.graph import EdgeKind, NodeKind, gpu_node


def make_topo(specs=None):
    sim = Simulator()
    cluster = Cluster(sim, specs or make_homo_cluster(num_servers=2))
    return LogicalTopology.from_cluster(cluster)


def make_inputs(ranks, length, seed=0):
    rng = np.random.default_rng(seed)
    return {rank: rng.integers(0, 50, length).astype(np.float64) for rank in ranks}


class TestRegistry:
    def test_all_four_backends_registered(self):
        assert set(available_backends()) >= {"adapcc", "nccl", "msccl", "blink"}

    def test_unknown_backend_rejected(self):
        from repro.errors import CommunicatorError

        with pytest.raises(CommunicatorError):
            make_backend("gloo", make_topo())


class TestNcclModel:
    def test_single_channel(self):
        topo = make_topo()
        strategy = make_backend("nccl", topo).plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        assert strategy.parallelism == 1

    def test_fixed_chunk(self):
        topo = make_topo()
        strategy = make_backend("nccl", topo).plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        assert strategy.subcollectives[0].chunk_size == NCCL_CHUNK_BYTES

    def test_tree_for_small_ring_for_large(self):
        topo = make_topo()
        backend = make_backend("nccl", topo)
        small = backend.plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        large = backend.plan(Primitive.ALLREDUCE, 256 * MB, range(8))
        assert small.routing_family == "nccl-tree"
        assert large.routing_family == "nccl-ring"

    def test_ring_is_a_chain_through_all_ranks(self):
        topo = make_topo()
        backend = NcclBackend(topo, graph="ring")
        strategy = backend.plan(Primitive.REDUCE, 16 * MB, range(8), root=0)
        sc = strategy.subcollectives[0]
        # A chain: exactly one rank parents each rank; max fan-in 1.
        from collections import Counter

        heads = Counter()
        for flow in sc.flows:
            for i, j in flow.edges:
                if i.kind is NodeKind.GPU and j.kind is NodeKind.GPU:
                    heads[(i, j)] += 0  # just touch
        assert len(sc.flows) == 7

    def test_rank_order_tree_ignores_heterogeneity(self):
        """NCCL's tree layout is identical on shuffled-bandwidth clusters —
        it never consults measurements."""
        from repro.network.cost_model import AlphaBeta
        from repro.topology.graph import nic_node

        topo = make_topo(make_homo_cluster(num_servers=4))
        backend = NcclBackend(topo, graph="tree")
        before = backend.plan(Primitive.REDUCE, 16 * MB, range(16), root=0)
        # Degrade instance 1 badly; NCCL must not react.
        for other in (0, 2, 3):
            edge = topo.edge(nic_node(1), nic_node(other))
            topo.set_estimate(nic_node(1), nic_node(other), AlphaBeta(1e-4, 1e-8))
        backend.refresh()  # no-op for static baselines
        after = backend.plan(Primitive.REDUCE, 16 * MB, range(16), root=0)
        assert [f.path for sc in before.subcollectives for f in sc.flows] == [
            f.path for sc in after.subcollectives for f in sc.flows
        ]

    def test_collective_correct(self):
        topo = make_topo()
        backend = make_backend("nccl", topo)
        ranks = list(range(8))
        inputs = make_inputs(ranks, 2048)
        result = backend.plan_and_run(Primitive.ALLREDUCE, inputs, ranks)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_alltoall_via_p2p(self):
        topo = make_topo()
        backend = make_backend("nccl", topo)
        ranks = list(range(8))
        inputs = make_inputs(ranks, 8 * 16)
        result = backend.plan_and_run(Primitive.ALLTOALL, inputs, ranks)
        assert result.duration > 0


class TestMscclModel:
    def test_two_channels(self):
        topo = make_topo()
        strategy = make_backend("msccl", topo).plan(Primitive.ALLREDUCE, 64 * MB, range(8))
        assert strategy.parallelism == 2

    def test_latency_vs_bandwidth_points(self):
        topo = make_topo()
        backend = make_backend("msccl", topo)
        small = backend.plan(Primitive.ALLREDUCE, 1 * MB, range(8))
        large = backend.plan(Primitive.ALLREDUCE, 64 * MB, range(8))
        assert small.routing_family == "msccl-latency"
        assert large.routing_family == "msccl-bandwidth"

    def test_collective_correct(self):
        topo = make_topo()
        backend = make_backend("msccl", topo)
        ranks = list(range(8))
        inputs = make_inputs(ranks, 1024)
        result = backend.plan_and_run(Primitive.ALLREDUCE, inputs, ranks)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)


class TestBlinkModel:
    def test_fixed_8mb_chunks(self):
        topo = make_topo()
        strategy = make_backend("blink", topo).plan(Primitive.ALLREDUCE, 64 * MB, range(8))
        assert strategy.subcollectives[0].chunk_size == BLINK_CHUNK_BYTES

    def test_stages_not_pipelined(self):
        topo = make_topo()
        assert make_backend("blink", topo).pipelines_stages() is False

    def test_alltoall_multiserver_unsupported(self):
        topo = make_topo()
        with pytest.raises(SynthesisError):
            make_backend("blink", topo).plan(Primitive.ALLTOALL, MB, range(8))

    def test_spanning_tree_uses_partial_nvlinks(self):
        """On a server with NVLink only between (0,1) and (1,2), Blink's
        spanning tree must route GPU 2 over NVLink via GPU 1 rather than
        falling back to PCIe (its headline improvement over NCCL)."""
        spec = a100_server(nvlink_pairs=frozenset({(0, 1), (1, 2)}))
        topo = make_topo([spec])
        backend = make_backend("blink", topo)
        strategy = backend.plan(Primitive.REDUCE, 16 * MB, range(4), root=0)
        sc = strategy.subcollectives[0]
        flow2 = next(f for f in sc.flows if f.src == gpu_node(2))
        assert flow2.path == [gpu_node(2), gpu_node(1), gpu_node(0)]
        kinds = [e.kind for e in topo.path_edges(flow2.path)]
        assert all(k is EdgeKind.NVLINK for k in kinds)

    def test_collective_correct(self):
        topo = make_topo()
        backend = make_backend("blink", topo)
        ranks = list(range(8))
        inputs = make_inputs(ranks, 1024)
        result = backend.plan_and_run(Primitive.ALLREDUCE, inputs, ranks)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)


class TestAdapccBackend:
    def test_profiles_on_init_and_caches_plans(self):
        topo = make_topo()
        backend = make_backend("adapcc", topo)
        assert backend.profiler.passes_completed == 1
        a = backend.plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        b = backend.plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        assert a is b

    def test_refresh_reprofiles_and_invalidates(self):
        topo = make_topo()
        backend = make_backend("adapcc", topo)
        a = backend.plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        backend.refresh()
        assert backend.profiler.passes_completed == 2
        b = backend.plan(Primitive.ALLREDUCE, 16 * MB, range(8))
        assert a is not b


class TestRelativePerformance:
    """The comparative shapes the paper's Sec. VI-C reports."""

    def algbw(self, backend_name, topo, primitive, nbytes, ranks, **kwargs):
        backend = make_backend(backend_name, topo, **kwargs)
        length = int(nbytes // 8)
        inputs = make_inputs(ranks, length)
        result = backend.plan_and_run(primitive, inputs, ranks)
        return result.algorithm_bandwidth(nbytes)

    def test_adapcc_beats_nccl_allreduce_hetero(self):
        """Fig. 12's headline: AdapCC > NCCL on the heterogeneous testbed."""
        ranks = list(range(16))
        nbytes = 32 * MB
        adapcc = self.algbw(
            "adapcc", make_topo(make_hetero_cluster()), Primitive.ALLREDUCE, nbytes, ranks
        )
        nccl = self.algbw(
            "nccl", make_topo(make_hetero_cluster()), Primitive.ALLREDUCE, nbytes, ranks
        )
        assert adapcc > nccl

    def test_adapcc_beats_blink_multiserver(self):
        """Blink is the weakest multi-server baseline (geomean 1.49x)."""
        ranks = list(range(16))
        nbytes = 32 * MB
        adapcc = self.algbw(
            "adapcc", make_topo(make_hetero_cluster()), Primitive.ALLREDUCE, nbytes, ranks
        )
        blink = self.algbw(
            "blink", make_topo(make_hetero_cluster()), Primitive.ALLREDUCE, nbytes, ranks
        )
        assert adapcc > blink

    def test_tcp_gap_is_larger_than_rdma_gap(self):
        """NCCL's single channel caps at ~20 Gbps on TCP, so AdapCC's
        advantage grows on TCP (Sec. VI-D)."""
        ranks = list(range(16))
        nbytes = 32 * MB

        def ratio(network):
            adapcc = self.algbw(
                "adapcc", make_topo(make_homo_cluster(4, network=network)),
                Primitive.ALLREDUCE, nbytes, ranks,
            )
            nccl = self.algbw(
                "nccl", make_topo(make_homo_cluster(4, network=network)),
                Primitive.ALLREDUCE, nbytes, ranks,
            )
            return adapcc / nccl

        assert ratio("tcp") > ratio("rdma")
        assert ratio("rdma") >= 0.95  # AdapCC at least matches NCCL on RDMA
