"""The communicator service: Work Queue → execution → Result Queue.

Fig. 4's dataflow: each iteration the ML framework pushes tensors into a
per-rank *Work Queue*; persistent context threads poll it, execute the
communication, and deliver communicated tensors through the *Result Queue*
for continued computation. :class:`CollectiveService` reproduces that
loop on the simulator: a dispatcher process matches same-position requests
across ranks (a collective needs all participants' submissions), executes
them in submission order, and completes every rank's result queue.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import CommunicatorError
from repro.runtime.collectives import launch_allreduce
from repro.runtime.queues import WorkItem, WorkQueues
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology


class CollectiveService:
    """Executes queued collective requests in order, across all ranks.

    One service per job. Ranks submit with :meth:`submit`; the dispatcher
    (a simulated process started by :meth:`start`) waits until every
    participant has submitted the next request, checks they agree on the
    primitive, executes, and pushes each rank's output into its result
    queue. FIFO order per rank is preserved — the paper's "executed in
    order" guarantee.
    """

    def __init__(
        self,
        topology: LogicalTopology,
        strategy_provider,
        byte_scale: float = 1.0,
    ):
        self.topology = topology
        self.sim = topology.cluster.sim
        #: Callable (primitive, tensor_size, participants) -> Strategy.
        self.strategy_provider = strategy_provider
        self.byte_scale = byte_scale
        self.queues: Dict[int, WorkQueues] = {
            gpu.rank: WorkQueues(self.sim, gpu.rank) for gpu in topology.cluster.gpus
        }
        self.executed = 0
        self._running = False

    # -- framework-facing API -------------------------------------------------------

    def submit(self, rank: int, primitive: Primitive, tensor: np.ndarray) -> int:
        """Push one rank's request; returns its sequence number."""
        if rank not in self.queues:
            raise CommunicatorError(f"unknown rank {rank}")
        return self.queues[rank].submit(primitive, tensor)

    def fetch(self, rank: int):
        """Event yielding the next (sequence, output tensor) for a rank."""
        return self.queues[rank].fetch_result()

    # -- dispatcher -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._dispatch(), name="collective-service")

    def stop(self) -> None:
        """Stop after the in-flight request completes."""
        self._running = False

    def _dispatch(self):
        ranks = sorted(self.queues)
        while self._running:
            # Wait for every rank's next request (a collective is only
            # triggered when all participants have submitted).
            items: List[WorkItem] = []
            for rank in ranks:
                item = yield self.queues[rank].poll_work()
                items.append(item)
            primitives = {item.primitive for item in items}
            if len(primitives) != 1:
                raise CommunicatorError(
                    f"ranks disagree on the collective: {sorted(p.value for p in primitives)}"
                )
            primitive = items[0].primitive
            if primitive is not Primitive.ALLREDUCE:
                raise CommunicatorError(
                    "the queued dispatcher currently serves AllReduce (the "
                    f"training path); got {primitive.value}"
                )
            tensors = {item.rank: item.tensor for item in items}
            length = len(items[0].tensor)
            tensor_size = length * items[0].tensor.itemsize * self.byte_scale
            strategy = self.strategy_provider(primitive, tensor_size, ranks)
            # The dispatcher runs *inside* the simulation, so it uses the
            # non-blocking launch form and yields on completion.
            pending = launch_allreduce(
                self.topology, strategy, tensors, byte_scale=self.byte_scale
            )
            yield pending.done
            result = pending.result()
            for item in items:
                self.queues[item.rank].complete(item, result.outputs[item.rank])
            self.executed += 1
