"""Post-run lint over fluid-network trace streams.

With a :class:`repro.simulation.records.TraceRecorder` attached to the
:class:`repro.simulation.fluid.FluidNetwork` (``network.recorder = rec``),
every run leaves a stream of ``net-flow-start`` / ``net-flow-end`` /
``net-flow-cancel`` events plus one ``net-rates`` allocation snapshot per
recompute instant. This module replays that stream and checks the
simulator's physical invariants:

* **capacity** — at every snapshot, each link's aggregate allocated rate
  (Σ rate × multiplicity) stays within its capacity;
* **per-stream caps** — no flow exceeds min(per_stream_cap / multiplicity)
  over its links;
* **max-min fairness** — a flow allocated less than its cap must cross at
  least one saturated link (the defining property of progressive filling);
* **byte conservation** — integrating each flow's piecewise-constant rate
  over its lifetime recovers its size;
* **event ordering** — timestamps are non-decreasing, remaining bytes are
  non-increasing, flows end after they start and never appear in a
  snapshot outside their lifetime.

Violations share the :class:`repro.analysis.verify_strategy.Violation`
record type.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.verify_strategy import Violation
from repro.simulation.records import TraceRecord

#: Relative tolerance for rate/capacity comparisons.
_REL_TOL = 1e-6
#: Absolute slack (bytes) forgiven by byte conservation — covers the fluid
#: model's force-completion of numerically-done transfers.
_BYTE_ATOL = 0.01


class _FlowState:
    __slots__ = ("started", "rate", "last_time", "moved", "last_remaining", "size", "tag")

    def __init__(self, started: float, size: float, tag: str):
        self.started = started
        self.rate = 0.0
        self.last_time = started
        self.moved = 0.0
        self.last_remaining = size
        self.size = size
        self.tag = tag


def lint_trace(records: Iterable[TraceRecord]) -> List[Violation]:
    """Check one recorded run; returns all violations found (empty = clean)."""
    violations: List[Violation] = []
    flows: Dict[int, _FlowState] = {}
    ended: Dict[int, float] = {}
    last_time = float("-inf")

    for record in records:
        if record.time < last_time:
            violations.append(
                Violation(
                    "event-order",
                    record.subject,
                    f"{record.kind} at t={record.time} after t={last_time}",
                )
            )
        last_time = max(last_time, record.time)

        if record.kind == "net-flow-start":
            fid = record.payload["flow"]
            if fid in flows or fid in ended:
                violations.append(
                    Violation("event-order", record.subject, "flow started twice")
                )
            flows[fid] = _FlowState(
                record.time, record.payload["size"], record.payload.get("tag", "")
            )
        elif record.kind in ("net-flow-end", "net-flow-cancel"):
            fid = record.payload["flow"]
            state = flows.pop(fid, None)
            if state is None:
                violations.append(
                    Violation(
                        "event-order", record.subject, f"{record.kind} without a start"
                    )
                )
                continue
            ended[fid] = record.time
            if record.time < state.started:
                violations.append(
                    Violation(
                        "event-order",
                        record.subject,
                        f"flow ends at t={record.time} before its start t={state.started}",
                    )
                )
            if record.kind == "net-flow-end":
                state.moved += state.rate * (record.time - state.last_time)
                slack = max(_BYTE_ATOL, _REL_TOL * state.size)
                if abs(state.moved - state.size) > slack:
                    violations.append(
                        Violation(
                            "byte-conservation",
                            record.subject,
                            f"flow {state.tag or fid} moved {state.moved:.6g} B of "
                            f"{state.size:.6g} B by completion",
                        )
                    )
        elif record.kind == "net-rates":
            violations.extend(_check_snapshot(record, flows, ended))

    return violations


def _check_snapshot(
    record: TraceRecord, flows: Dict[int, "_FlowState"], ended: Dict[int, float]
) -> List[Violation]:
    violations: List[Violation] = []
    now = record.time
    links = {
        lid: (name, capacity, per_stream_cap)
        for lid, name, capacity, per_stream_cap in record.payload["links"]
    }
    loads: Dict[int, float] = {lid: 0.0 for lid in links}

    snapshot_flows = record.payload["flows"]
    for fid, tag, rate, remaining, incidence in snapshot_flows:
        label = tag or f"flow{fid}"
        state = flows.get(fid)
        if state is None:
            violations.append(
                Violation(
                    "event-order",
                    label,
                    "flow appears in a rate snapshot outside its lifetime"
                    + (" (already ended)" if fid in ended else " (never started)"),
                )
            )
            continue
        if rate < 0:
            violations.append(Violation("rate-sign", label, f"negative rate {rate}"))
        if remaining > state.last_remaining + _BYTE_ATOL:
            violations.append(
                Violation(
                    "byte-conservation",
                    label,
                    f"remaining grew from {state.last_remaining:.6g} to {remaining:.6g} B",
                )
            )
        # Advance the piecewise-constant integration to this snapshot.
        state.moved += state.rate * (now - state.last_time)
        state.last_time = now
        state.rate = rate
        state.last_remaining = min(state.last_remaining, remaining)

        for lid, mult in incidence:
            if lid in loads:
                loads[lid] += rate * mult

        # Max-min: a flow below its per-stream cap must be blocked by a
        # saturated link (checked after loads are complete, below).

    # Per-link capacity.
    for lid, load in loads.items():
        name, capacity, _cap = links[lid]
        if capacity != float("inf") and load > capacity * (1 + _REL_TOL) + 1e-9:
            violations.append(
                Violation(
                    "link-capacity",
                    name,
                    f"allocated {load:.6g} B/s exceeds capacity {capacity:.6g} B/s "
                    f"at t={now}",
                )
            )

    for fid, tag, rate, _remaining, incidence in snapshot_flows:
        if fid not in flows:
            continue
        label = tag or f"flow{fid}"
        stream_cap = float("inf")
        for lid, mult in incidence:
            if lid in links:
                stream_cap = min(stream_cap, links[lid][2] / mult)
        if stream_cap != float("inf") and rate > stream_cap * (1 + _REL_TOL) + 1e-9:
            violations.append(
                Violation(
                    "stream-cap",
                    label,
                    f"rate {rate:.6g} B/s exceeds per-stream cap {stream_cap:.6g} B/s",
                )
            )
        if rate != float("inf") and (
            stream_cap == float("inf") or rate < stream_cap * (1 - _REL_TOL)
        ):
            # Below its cap: some crossed link must be saturated.
            blocked = False
            for lid, mult in incidence:
                if lid not in links:
                    continue
                _name, capacity, _cap = links[lid]
                if capacity == float("inf"):
                    continue
                if capacity - loads[lid] <= max(_REL_TOL * capacity, _REL_TOL):
                    blocked = True
                    break
            if not blocked:
                violations.append(
                    Violation(
                        "max-min",
                        label,
                        f"rate {rate:.6g} B/s is below its cap with no saturated "
                        f"link on its path at t={now}",
                    )
                )
    return violations
