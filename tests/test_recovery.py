"""Conformance suite for the fault-tolerant recovery control plane.

Central claims, asserted per seed (override with ``REPRO_CHAOS_SEED``, as
the CI chaos job does):

* **failover** — when the acting coordinator's role crashes or is
  partitioned away, the lowest-ranked reachable worker takes over under
  the next epoch, and exactly one coordinator acts per epoch;
* **fencing** — every message composed under a deposed coordinator's
  epoch is dropped and counted, never silently acted on;
* **replay** — a new coordinator rebuilds its state from the journal
  (latest checkpoint + suffix) and resumes the in-flight iteration, so a
  coordinator-crash run stays *bit-identical* to the fault-free run;
* **transactional transitions** — strategy installs are prepare/commit
  with a quorum of epoch-checked acks; a crash between the phases rolls
  back to the last committed strategy;
* **lint** — every journal this suite produces passes
  :func:`repro.analysis.lint_recovery.lint_recovery`, and the lint
  catches synthetically corrupted journals.
"""

import os

import numpy as np
import pytest

from repro.analysis.lint_recovery import lint_recovery
from repro.chaos import (
    DECIDE_PHASE,
    TRANSITION_PHASE,
    ChaosRunner,
    CoordinatorCrashFault,
    FaultPlan,
    PartitionFault,
)
from repro.errors import ChaosError, RecoveryError
from repro.hardware import Cluster, make_homo_cluster
from repro.recovery import (
    DEFAULT_LEASE_SECONDS,
    CoordinatorLease,
    EpochFence,
    EventLog,
    LogRecord,
    RecoveringControlPlane,
    StrategyTransition,
    TransitionState,
    quorum_size,
)
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.telemetry import TelemetryHub, set_hub
from repro.topology import LogicalTopology

#: The CI chaos job sweeps this over several fixed seeds.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "5"))

SPECS = make_homo_cluster(num_servers=2, gpus_per_server=4)
WORLD = 8
LENGTH = 512


def fixed_rpc(_rng):
    return 0.001


@pytest.fixture
def fresh_hub():
    """Install a fresh enabled hub; restore the previous one afterwards."""
    new = TelemetryHub(enabled=True)
    previous = set_hub(new)
    yield new
    set_hub(previous)


# -- lease + election -----------------------------------------------------------


class TestCoordinatorLease:
    def make(self, members=(0, 1, 2, 3)):
        return CoordinatorLease(members, fixed_rpc, np.random.default_rng(0))

    def test_initial_grant_is_lowest_rank_epoch_one(self):
        lease = self.make(members=[3, 1, 2])
        assert lease.holder == 1
        assert lease.epoch == 1
        assert lease.elections == 0

    def test_renew_extends_expiry_and_accounts_rpc(self):
        lease = self.make()
        cost = lease.renew(now=1.0)
        assert cost == pytest.approx(0.001)
        assert lease.lease.expires_at == pytest.approx(1.0 + 0.001 + DEFAULT_LEASE_SECONDS)
        assert lease.rpc_seconds_total == pytest.approx(0.001)
        assert not lease.lease.expired(1.0)
        assert lease.lease.expired(2.0)

    def test_elect_grants_next_epoch_to_lowest_live_candidate(self):
        lease = self.make()
        grant = lease.elect(now=0.1, live=[3, 1, 2])
        assert grant.holder == 1
        assert grant.epoch == 2
        assert lease.elections == 1
        # The deposed holder never wins its own succession.
        grant = lease.elect(now=0.2, live=[1, 2, 3])
        assert grant.holder == 2
        assert grant.epoch == 3

    def test_elect_with_nobody_live_raises(self):
        lease = self.make()
        with pytest.raises(RecoveryError):
            lease.elect(now=0.1, live=[0])  # only the failed incumbent

    def test_validation(self):
        with pytest.raises(RecoveryError):
            CoordinatorLease([], fixed_rpc, np.random.default_rng(0))
        with pytest.raises(RecoveryError):
            CoordinatorLease([0], fixed_rpc, np.random.default_rng(0), lease_seconds=0.0)


class TestEpochFence:
    def test_admits_current_newer_and_epoch_unaware(self):
        fence = EpochFence()
        assert fence.admit(2, 2, 0.0, "ready-report")
        assert fence.admit(3, 2, 0.0, "ready-report")
        assert fence.admit(None, 2, 0.0, "ready-report")
        assert fence.fenced == 0

    def test_counts_every_stale_drop(self):
        fence = EpochFence()
        assert not fence.admit(1, 2, 0.0, "ready-report", sender=3)
        assert not fence.admit(1, 3, 0.0, "prepare-ack", sender=3)
        assert fence.fenced == 2


# -- write-ahead log ------------------------------------------------------------


class TestEventLog:
    def test_append_assigns_gapless_indices(self):
        log = EventLog()
        a = log.append(1, 0, "membership", 0.0, members=(0, 1))
        b = log.append(1, 0, "ready-report", 0.1, iteration=0, ready=((0, 0.0),))
        assert (a.index, b.index) == (0, 1)
        assert len(log) == 2
        assert b.get("iteration") == 0
        assert b.get("absent", "x") == "x"

    def test_unknown_kind_rejected(self):
        with pytest.raises(RecoveryError):
            EventLog().append(1, 0, "gossip", 0.0)

    def test_epoch_regression_rejected(self):
        log = EventLog()
        log.append(2, 1, "election", 0.0)
        with pytest.raises(RecoveryError):
            log.append(1, 0, "membership", 0.1)

    def test_record_validation(self):
        with pytest.raises(RecoveryError):
            LogRecord(index=-1, epoch=1, coordinator=0, kind="membership", time=0.0)
        with pytest.raises(RecoveryError):
            LogRecord(index=0, epoch=0, coordinator=0, kind="membership", time=0.0)

    def test_checkpoint_interval(self):
        log = EventLog(checkpoint_interval=2)
        log.append(1, 0, "membership", 0.0, members=(0, 1))
        assert log.checkpoint(1, 0, 0, (0, 1), None) is None
        log.append(1, 0, "ready-report", 0.1, iteration=0, ready=())
        snapshot = log.checkpoint(1, 0, 0, (0, 1), None)
        assert snapshot is not None
        assert snapshot.index == 1
        # The interval counts from the last checkpoint, not from zero.
        assert log.checkpoint(1, 0, 0, (0, 1), None) is None

    def test_replay_rebuilds_from_checkpoint_plus_suffix(self):
        log = EventLog(checkpoint_interval=1)
        log.append(1, 0, "membership", 0.0, iteration=0, members=(0, 1, 2))
        log.checkpoint(1, 0, 0, (0, 1, 2), None)
        log.append(1, 0, "ready-report", 0.1, iteration=1, ready=((0, 0.0), (1, 0.5)))
        state = log.replay()
        assert state.from_checkpoint
        assert state.members == (0, 1, 2)
        assert state.iteration == 1
        assert state.ready_reports == {0: 0.0, 1: 0.5}
        assert state.replayed_records == 1  # only the suffix

    def test_replay_surfaces_dangling_prepare(self):
        log = EventLog()
        log.append(1, 0, "strategy-prepare", 0.0, transition=0, members=(0, 1))
        state = log.replay()
        assert state.dangling_prepare == 0
        assert state.dangling_members == (0, 1)
        log.append(1, 0, "strategy-commit", 0.1, transition=0, members=(0, 1), acks=(0, 1))
        state = log.replay()
        assert state.dangling_prepare is None
        assert state.committed_members == (0, 1)

    def test_signature_is_content_stable(self):
        def build():
            log = EventLog()
            log.append(1, 0, "membership", 0.0, members=(0, 1))
            log.append(1, 0, "decision", 0.2, iteration=0, proceed=True)
            return log

        assert build().signature() == build().signature()
        other = build()
        other.append(1, 0, "heal", 0.3, ranks=(1,))
        assert other.signature() != build().signature()


# -- two-phase transitions ------------------------------------------------------


class TestStrategyTransition:
    def make(self):
        return StrategyTransition(EventLog(), EpochFence())

    def test_quorum_size_is_strict_majority(self):
        assert quorum_size((0,)) == 1
        assert quorum_size((0, 1)) == 2
        assert quorum_size((0, 1, 2)) == 2
        assert quorum_size(tuple(range(8))) == 5

    def test_prepare_commit_happy_path(self):
        transition = self.make()
        tid = transition.prepare(1, 0, 0.0, (0, 1, 2, 3), [(r, 1) for r in range(4)])
        assert tid == 0
        assert transition.state is TransitionState.PREPARED
        committed = transition.commit(1, 0, 0.1)
        assert committed == (0, 1, 2, 3)
        assert transition.state is TransitionState.COMMITTED
        assert transition.commits == 1
        kinds = [r.kind for r in transition.log.records]
        assert kinds == ["strategy-prepare"] + ["prepare-ack"] * 4 + ["strategy-commit"]

    def test_stale_acks_are_fenced_and_break_quorum(self):
        transition = self.make()
        transition.prepare(2, 1, 0.0, (0, 1, 2, 3), [(0, 2), (1, 1), (2, 1), (3, 1)])
        assert transition.fence.fenced == 3
        with pytest.raises(RecoveryError):
            transition.commit(2, 1, 0.1)

    def test_double_prepare_rejected(self):
        transition = self.make()
        transition.prepare(1, 0, 0.0, (0, 1), [(0, 1), (1, 1)])
        with pytest.raises(RecoveryError):
            transition.prepare(1, 0, 0.1, (0, 1), [(0, 1), (1, 1)])

    def test_commit_without_prepare_rejected(self):
        with pytest.raises(RecoveryError):
            self.make().commit(1, 0, 0.0)

    def test_rollback_without_prepare_rejected(self):
        with pytest.raises(RecoveryError):
            self.make().rollback(1, 0, 0.0)

    def test_rollback_resolves_and_spends_the_id(self):
        transition = self.make()
        tid = transition.prepare(1, 0, 0.0, (0, 1), [(0, 1), (1, 1)])
        transition.rollback(1, 0, 0.1)
        assert transition.state is TransitionState.ROLLED_BACK
        assert transition.rollbacks == 1
        # The next prepare must not reuse the rolled-back id.
        assert transition.prepare(1, 0, 0.2, (0, 1), [(0, 1), (1, 1)]) == tid + 1

    def test_rollback_of_replayed_dangling_id_advances_counter(self):
        transition = self.make()
        transition.log.append(1, 0, "strategy-prepare", 0.0, transition=5, members=(0, 1))
        transition.rollback(2, 1, 0.1, transition=5)
        assert transition.prepare(2, 1, 0.2, (0, 1), [(0, 2), (1, 2)]) == 6


# -- the recovering control plane ----------------------------------------------


def make_plane(**kwargs):
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2, gpus_per_server=2))
    topology = LogicalTopology.from_cluster(cluster)
    plane = RecoveringControlPlane(topology, **kwargs)
    return sim, topology, plane


def make_strategy(topology, world=4):
    return Synthesizer(topology).synthesize(Primitive.ALLREDUCE, LENGTH * 8, range(world))


class TestRecoveringControlPlane:
    def test_seed_state(self):
        _, _, plane = make_plane()
        assert plane.epoch == 1
        assert plane.coordinator == 0
        assert plane.elections == 0
        assert [r.kind for r in plane.log.records] == ["membership"]

    def test_role_crash_elects_next_rank_under_next_epoch(self):
        _, _, plane = make_plane()
        assert plane.crash_coordinator() == 0
        plane.begin_iteration(0, [0, 1, 2, 3])
        assert plane.epoch == 2
        assert plane.coordinator == 1
        assert plane.elections == 1
        assert plane.replayed_records_total > 0
        # The new epoch's first journal record is its election.
        epoch2 = [r for r in plane.log.records if r.epoch == 2]
        assert epoch2[0].kind == "election"
        assert epoch2[0].get("reason") == "role-crash"
        assert epoch2[0].get("previous") == 0

    def test_restarted_ex_coordinator_is_fenced_once_then_synced(self):
        _, topology, plane = make_plane()
        strategy = make_strategy(topology)
        plane.crash_coordinator()
        ready = {rank: 0.0 for rank in range(4)}
        plane.decide(strategy, LENGTH * 8, ready)
        # Rank 0 restarted as a follower still on epoch 1: its first
        # report is dropped, which is also how it learns epoch 2.
        assert plane.fence.fenced == 1
        plane.decide(strategy, LENGTH * 8, ready)
        assert plane.fence.fenced == 1

    def test_takeover_waits_out_the_old_lease(self):
        sim, _, plane = make_plane()
        expires = plane.lease.lease.expires_at
        plane.crash_coordinator()
        plane.begin_iteration(0, [0, 1, 2, 3])
        assert sim.now >= expires

    def test_partitioned_coordinator_deposed_and_fenced_at_heal(self):
        _, _, plane = make_plane()
        assert plane.partition([0]) == [0]
        plane.begin_iteration(0, [0, 1, 2, 3])
        assert (plane.epoch, plane.coordinator) == (2, 1)
        election = [r for r in plane.log.records if r.kind == "election"][0]
        assert election.get("reason") == "partition"
        # Behind the partition rank 0 still believes it leads epoch 1;
        # its post-heal probe is the split-brain message and is fenced.
        assert plane.fence.fenced == 0
        assert plane.heal() == [0]
        assert plane.fence.fenced == 1
        assert lint_recovery(plane.log) == []

    def test_partition_of_everyone_rejected(self):
        _, _, plane = make_plane()
        with pytest.raises(RecoveryError):
            plane.partition([0, 1, 2, 3])

    def test_partition_of_follower_does_not_depose(self):
        _, _, plane = make_plane()
        plane.partition([3])
        plane.begin_iteration(0, [0, 1, 2, 3])
        assert (plane.epoch, plane.coordinator) == (1, 0)
        assert plane.elections == 0

    def test_install_strategy_commits_with_quorum(self):
        _, _, plane = make_plane()
        assert plane.install_strategy([3, 1, 0, 2]) == (0, 1, 2, 3)
        assert plane.committed_members == (0, 1, 2, 3)
        kinds = [r.kind for r in plane.log.records]
        assert kinds.count("strategy-prepare") == 1
        assert kinds.count("prepare-ack") == 4
        assert kinds.count("strategy-commit") == 1
        assert lint_recovery(plane.log) == []

    def test_crash_between_prepare_and_commit_rolls_back(self):
        _, _, plane = make_plane()
        committed = plane.install_strategy([0, 1, 2, 3], crash_after_prepare=True)
        assert committed == (0, 1, 2, 3)
        assert plane.elections == 1
        assert plane.transition.rollbacks == 1
        assert plane.transition.commits == 1
        kinds = [r.kind for r in plane.log.records]
        # prepare (orphaned) -> election -> rollback -> prepare -> commit.
        assert kinds.count("strategy-prepare") == 2
        assert kinds.count("strategy-rollback") == 1
        assert kinds.count("strategy-commit") == 1
        assert kinds.index("strategy-rollback") < kinds.index("strategy-commit")
        rollback = [r for r in plane.log.records if r.kind == "strategy-rollback"][0]
        assert rollback.epoch == 2
        assert rollback.get("reason") == "coordinator-crash"
        assert lint_recovery(plane.log) == []

    def test_decide_journals_ready_and_decision(self):
        _, topology, plane = make_plane()
        strategy = make_strategy(topology)
        decision = plane.decide(strategy, LENGTH * 8, {r: 0.0 for r in range(4)})
        assert decision.active_ranks == [0, 1, 2, 3]
        kinds = [r.kind for r in plane.log.records]
        assert kinds[-2:] == ["ready-report", "decision"]
        report = plane.log.records[-2]
        assert report.get("ready") == tuple((r, 0.0) for r in range(4))

    def test_checkpoint_bounds_replay(self):
        _, topology, plane = make_plane(checkpoint_interval=4)
        strategy = make_strategy(topology)
        ready = {r: 0.0 for r in range(4)}
        for iteration in range(8):
            plane.begin_iteration(iteration, [0, 1, 2, 3])
            plane.decide(strategy, LENGTH * 8, ready)
        assert plane.log.checkpoints
        plane.crash_coordinator()
        plane.begin_iteration(8, [0, 1, 2, 3])
        # The takeover replayed only the post-checkpoint suffix.
        assert 0 < plane.replayed_records_total < len(plane.log)

    def test_telemetry_spans_and_metrics_for_failover(self, fresh_hub):
        _, _, plane = make_plane()
        plane.install_strategy([0, 1, 2, 3], crash_after_prepare=True)
        names = [span.name for span in fresh_hub.tracer.spans]
        assert "election" in names
        assert "log-replay" in names
        election = next(s for s in fresh_hub.tracer.spans if s.name == "election")
        replay = next(s for s in fresh_hub.tracer.spans if s.name == "log-replay")
        assert replay.parent_id == election.span_id
        metric_names = fresh_hub.metrics.names()
        for expected in (
            "recovery_elections_total",
            "recovery_replayed_records_total",
            "recovery_rollbacks_total",
            "recovery_transitions_total",
            "recovery_fenced_messages_total",
        ):
            assert expected in metric_names


# -- chaos integration ----------------------------------------------------------


def crash_plan(seed=CHAOS_SEED, iterations=4):
    return FaultPlan(
        seed=seed,
        iterations=iterations,
        coordinator_crashes=(
            CoordinatorCrashFault(1, DECIDE_PHASE),
            CoordinatorCrashFault(2, TRANSITION_PHASE),
        ),
    )


def run_plan(plan, length=LENGTH):
    runner = ChaosRunner(SPECS, plan, length=length)
    return runner, runner.run()


class TestCoordinatorCrashConformance:
    def test_crash_run_bit_identical_to_fault_free(self):
        _, baseline = run_plan(FaultPlan(seed=CHAOS_SEED, iterations=4))
        _, crashed = run_plan(crash_plan())
        assert baseline.all_exact and crashed.all_exact
        reference = baseline.final_outputs()
        outputs = crashed.final_outputs()
        assert sorted(outputs) == sorted(reference)
        for rank in reference:
            np.testing.assert_array_equal(outputs[rank], reference[rank])

    def test_epoch_and_leadership_progression(self):
        _, report = run_plan(crash_plan())
        assert [(o.epoch, o.coordinator) for o in report.iterations] == [
            (1, 0),  # fault-free
            (2, 1),  # decide-phase crash of rank 0 -> rank 1 takes over
            (3, 0),  # transition-phase crash of rank 1 -> rank 0 again
            (3, 0),
        ]
        assert report.elections == 2
        assert report.rollbacks == 1
        assert report.fenced_messages == 2
        assert report.replayed_records > 0

    def test_same_seed_replays_identically(self):
        _, first = run_plan(crash_plan())
        _, second = run_plan(crash_plan())
        assert first.log_signature == second.log_signature
        assert first.event_trace == second.event_trace
        for rank, tensor in first.final_outputs().items():
            np.testing.assert_array_equal(second.final_outputs()[rank], tensor)

    def test_journal_passes_recovery_lint(self):
        runner, report = run_plan(crash_plan())
        assert report.all_exact
        assert lint_recovery(runner.control_plane.log) == []

    def test_partition_run_bit_identical_with_one_election(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            iterations=4,
            partitions=(PartitionFault((0,), 1, 3),),
        )
        _, baseline = run_plan(FaultPlan(seed=CHAOS_SEED, iterations=4))
        runner, report = run_plan(plan)
        assert report.all_exact
        assert report.elections == 1
        assert report.fenced_messages == 1
        assert [(o.epoch, o.coordinator) for o in report.iterations] == [
            (1, 0),
            (2, 1),
            (2, 1),
            (2, 1),
        ]
        for rank, tensor in baseline.final_outputs().items():
            np.testing.assert_array_equal(report.final_outputs()[rank], tensor)
        assert lint_recovery(runner.control_plane.log) == []

    def test_plan_validation(self):
        with pytest.raises(ChaosError):
            CoordinatorCrashFault(-1, DECIDE_PHASE)
        with pytest.raises(ChaosError):
            CoordinatorCrashFault(0, "reboot")
        with pytest.raises(ChaosError):
            PartitionFault((0,), 2, 2)  # heal must be after the start
        with pytest.raises(ChaosError):
            FaultPlan(
                seed=0,
                iterations=3,
                coordinator_crashes=(
                    CoordinatorCrashFault(1, DECIDE_PHASE),
                    CoordinatorCrashFault(1, TRANSITION_PHASE),
                ),
            )

    def test_generate_covers_new_fault_families(self):
        found_crash = found_partition = False
        for seed in range(12):
            plan = FaultPlan.generate(
                seed=seed,
                world=WORLD,
                iterations=4,
                coordinator_crash_rate=0.5,
                partition_rate=0.5,
            )
            found_crash |= bool(plan.coordinator_crashes)
            found_partition |= bool(plan.partitions)
            twin = FaultPlan.generate(
                seed=seed,
                world=WORLD,
                iterations=4,
                coordinator_crash_rate=0.5,
                partition_rate=0.5,
            )
            assert plan.signature() == twin.signature()
        assert found_crash and found_partition


# -- the lint itself ------------------------------------------------------------


def _record(index, epoch, coordinator, kind, time, **payload):
    return LogRecord(
        index=index,
        epoch=epoch,
        coordinator=coordinator,
        kind=kind,
        time=time,
        payload=tuple(sorted(payload.items())),
    )


class TestLintRecovery:
    def test_flags_index_gap(self):
        records = [
            _record(0, 1, 0, "membership", 0.0, members=(0, 1)),
            _record(2, 1, 0, "heal", 0.1, ranks=(1,)),
        ]
        assert any(v.check == "record-index" for v in lint_recovery(records))

    def test_flags_time_reversal(self):
        records = [
            _record(0, 1, 0, "membership", 1.0, members=(0, 1)),
            _record(1, 1, 0, "heal", 0.5, ranks=(1,)),
        ]
        assert any(v.check == "record-time" for v in lint_recovery(records))

    def test_flags_epoch_without_election(self):
        records = [
            _record(0, 1, 0, "membership", 0.0, members=(0, 1)),
            _record(1, 2, 1, "membership", 0.1, members=(0, 1)),
        ]
        assert any(v.check == "election-first" for v in lint_recovery(records))

    def test_flags_split_brain(self):
        records = [
            _record(0, 1, 0, "membership", 0.0, members=(0, 1)),
            _record(1, 1, 1, "decision", 0.1, iteration=0, proceed=True),
        ]
        assert any(v.check == "split-brain" for v in lint_recovery(records))

    def test_flags_commit_without_quorum(self):
        records = [
            _record(0, 1, 0, "strategy-prepare", 0.0, transition=0, members=(0, 1, 2, 3)),
            _record(1, 1, 0, "prepare-ack", 0.0, transition=0, rank=0),
            _record(2, 1, 0, "strategy-commit", 0.1, transition=0, members=(0, 1, 2, 3)),
        ]
        assert any(v.check == "commit-quorum" for v in lint_recovery(records))

    def test_flags_commit_never_prepared(self):
        records = [
            _record(0, 1, 0, "strategy-commit", 0.0, transition=7, members=(0, 1)),
        ]
        assert any(v.check == "commit-unprepared" for v in lint_recovery(records))

    def test_flags_cross_epoch_commit(self):
        records = [
            _record(0, 1, 0, "strategy-prepare", 0.0, transition=0, members=(0, 1)),
            _record(1, 1, 0, "prepare-ack", 0.0, transition=0, rank=0),
            _record(2, 1, 0, "prepare-ack", 0.0, transition=0, rank=1),
            _record(3, 2, 1, "election", 0.1, previous=0, reason="role-crash"),
            _record(4, 2, 1, "strategy-commit", 0.2, transition=0, members=(0, 1)),
        ]
        assert any(v.check == "commit-epoch" for v in lint_recovery(records))

    def test_flags_rollback_after_commit_and_dangling_prepare(self):
        records = [
            _record(0, 1, 0, "strategy-prepare", 0.0, transition=0, members=(0, 1)),
            _record(1, 1, 0, "prepare-ack", 0.0, transition=0, rank=0),
            _record(2, 1, 0, "prepare-ack", 0.0, transition=0, rank=1),
            _record(3, 1, 0, "strategy-commit", 0.1, transition=0, members=(0, 1)),
            _record(4, 1, 0, "strategy-rollback", 0.2, transition=0, reason="x"),
            _record(5, 1, 0, "strategy-prepare", 0.3, transition=1, members=(0, 1)),
        ]
        checks = {v.check for v in lint_recovery(records)}
        assert "rollback-after-commit" in checks
        assert "dangling-prepare" in checks

    def test_flags_ack_from_nonmember(self):
        records = [
            _record(0, 1, 0, "strategy-prepare", 0.0, transition=0, members=(0, 1)),
            _record(1, 1, 0, "prepare-ack", 0.0, transition=0, rank=0),
            _record(2, 1, 0, "prepare-ack", 0.0, transition=0, rank=1),
            _record(3, 1, 0, "prepare-ack", 0.0, transition=0, rank=9),
            _record(4, 1, 0, "strategy-commit", 0.1, transition=0, members=(0, 1)),
        ]
        assert any(v.check == "ack-nonmember" for v in lint_recovery(records))
