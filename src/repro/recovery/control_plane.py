"""The control plane the relay executor is refactored against.

:class:`ControlPlane` is the seam: anything with a ``decide`` method
matching :meth:`repro.relay.coordinator.Coordinator.decide` can drive the
two-phase adaptive AllReduce. The plain :class:`Coordinator` satisfies it
trivially (pure logic, pinned to rank 0, no failure handling) — that is
the paper's shape, and the seed behaviour when no control plane is given.

:class:`RecoveringControlPlane` is the fault-tolerant one. It wraps the
same decision logic in the three recovery mechanisms:

* the acting coordinator holds a :class:`~repro.recovery.lease.
  CoordinatorLease`; when its role crashes (or a partition isolates it),
  the lease lapses, the lowest-ranked reachable worker takes over under
  the next epoch, and the :class:`~repro.recovery.lease.EpochFence` drops
  everything the deposed incumbent still says;
* every externally visible step is journaled to an
  :class:`~repro.recovery.log.EventLog` *before* it takes effect, so the
  new coordinator replays checkpoint + suffix and resumes the in-flight
  iteration — the data path never re-executes, which is why a run with a
  coordinator crash stays bit-identical to the fault-free run;
* strategy installs go through the two-phase
  :class:`~repro.recovery.transitions.StrategyTransition`; a crash
  between prepare and commit rolls back to the last committed strategy.

A coordinator crash here is a *control-plane-role* crash: the rank's
worker (its tensors, its data-path links) keeps running, only its
coordination agent dies and restarts as a follower. Whole-worker crashes
remain :class:`~repro.chaos.plan.CrashFault` territory — the T_fault
eviction path. Partitions are likewise control-channel-only: an isolated
rank stops hearing epoch announcements (so its next control message gets
fenced after the heal) but its data-plane traffic is untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RecoveryError
from repro.recovery.lease import DEFAULT_LEASE_SECONDS, CoordinatorLease, EpochFence
from repro.recovery.log import EventLog
from repro.recovery.transitions import StrategyTransition
from repro.relay.coordinator import Coordinator, Decision, default_rpc_latency
from repro.relay.ski_rental import BreakEvenPolicy
from repro.synthesis.strategy import Strategy
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology


class ControlPlane(ABC):
    """What the adaptive executor needs from its coordination layer."""

    @abstractmethod
    def decide(
        self,
        strategy: Strategy,
        tensor_size: float,
        ready_delays: Dict[int, Optional[float]],
    ) -> Decision:
        """The wait-or-proceed verdict for one collective request."""


class RecoveringControlPlane(ControlPlane):
    """Lease + WAL + two-phase transitions around the ski-rental scan."""

    def __init__(
        self,
        topology: LogicalTopology,
        members: Optional[Iterable[int]] = None,
        policy: Optional[BreakEvenPolicy] = None,
        rpc_latency: Callable[[np.random.Generator], float] = default_rpc_latency,
        seed: int = 0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        checkpoint_interval: int = 16,
    ):
        self.topology = topology
        self.sim = topology.cluster.sim
        self.decider = Coordinator(topology, policy)
        if members is None:
            members = [gpu.rank for gpu in topology.cluster.gpus]
        self.members: List[int] = sorted(members)
        self.rng = np.random.default_rng(seed)
        self.lease = CoordinatorLease(
            self.members, rpc_latency, self.rng, lease_seconds=lease_seconds
        )
        self.fence = EpochFence()
        self.log = EventLog(checkpoint_interval=checkpoint_interval)
        self.transition = StrategyTransition(self.log, self.fence)
        #: Last epoch each worker's control agent has been told about.
        self._worker_epochs: Dict[int, int] = {
            rank: self.lease.epoch for rank in self.members
        }
        #: Ranks whose coordination *role* is down (data path unaffected).
        self._crashed_roles: set = set()
        #: Ranks currently cut off from the control channel.
        self._partitioned: set = set()
        #: Deposed-while-isolated leaders; their post-heal message is the
        #: classic split-brain probe and must be fenced.
        self._stale_leaders: set = set()
        self._iteration = -1
        self._committed_members: Optional[Tuple[int, ...]] = None
        self.replayed_records_total = 0
        self.log.append(
            self.lease.epoch,
            self.lease.holder,
            "membership",
            self.sim.now,
            iteration=self._iteration,
            members=tuple(self.members),
        )

    # -- identity --------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current fencing epoch (monotonically increasing)."""
        return self.lease.epoch

    @property
    def coordinator(self) -> int:
        """The rank currently holding the coordination lease."""
        return self.lease.holder

    @property
    def elections(self) -> int:
        """How many takeovers have happened."""
        return self.lease.elections

    def _reachable(self, ranks: Iterable[int]) -> List[int]:
        """Ranks whose control agents the coordinator can talk to."""
        return [
            rank
            for rank in sorted(ranks)
            if rank not in self._crashed_roles and rank not in self._partitioned
        ]

    # -- fault entry points (driven by the chaos layer) ------------------------

    def crash_coordinator(self) -> int:
        """Kill the incumbent's coordination role; returns the victim rank.

        The lease stops being renewed from this instant; the actual
        takeover happens lazily, when the next coordinator action finds
        the incumbent dead (:meth:`_ensure_coordinator`).
        """
        victim = self.lease.holder
        self._crashed_roles.add(victim)
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "coordinator-crash",
                self.sim.now,
                category="recovery",
                track="recovery",
                rank=victim,
                epoch=self.epoch,
            )
        return victim

    def partition(self, ranks: Iterable[int]) -> List[int]:
        """Cut ``ranks`` off the control channel until :meth:`heal`."""
        isolated = sorted(set(ranks) & set(self.members))
        if not isolated:
            return []
        if set(isolated) >= set(self.members):
            raise RecoveryError("a partition cannot isolate every member")
        self._partitioned.update(isolated)
        self.log.append(
            self.epoch,
            self.coordinator,
            "partition",
            self.sim.now,
            ranks=tuple(isolated),
        )
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "partition",
                self.sim.now,
                category="recovery",
                track="recovery",
                ranks=isolated,
                epoch=self.epoch,
            )
        return isolated

    def heal(self, ranks: Optional[Iterable[int]] = None) -> List[int]:
        """Reconnect isolated ranks (all of them by default) and resolve
        any split-brain.

        Each healed rank's first control message is composed under the
        epoch it last saw; if an election happened behind the partition
        that message is fenced (one counted drop per stale rank — the
        deposed leader's under the ``stale-coordinator`` site), after
        which the rank adopts the current epoch.
        """
        if ranks is None:
            healed = sorted(self._partitioned)
        else:
            healed = sorted(set(ranks) & self._partitioned)
        if not healed:
            return []
        self._partitioned.difference_update(healed)
        self._ensure_coordinator()
        now = self.sim.now
        self.log.append(self.epoch, self.coordinator, "heal", now, ranks=tuple(healed))
        for rank in healed:
            seen = self._worker_epochs.get(rank, self.epoch)
            site = "stale-coordinator" if rank in self._stale_leaders else "heal-report"
            self.fence.admit(seen, self.epoch, now, site, sender=rank)
            self._worker_epochs[rank] = self.epoch
            self._stale_leaders.discard(rank)
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "heal",
                now,
                category="recovery",
                track="recovery",
                ranks=healed,
                epoch=self.epoch,
            )
        return healed

    # -- failover --------------------------------------------------------------

    def _ensure_coordinator(self) -> None:
        """Fail over if the incumbent's role is dead or unreachable."""
        holder = self.lease.holder
        if holder not in self._crashed_roles and holder not in self._partitioned:
            return
        self._failover(
            "role-crash" if holder in self._crashed_roles else "partition"
        )

    def _failover(self, reason: str) -> None:
        sim = self.sim
        old_holder = self.lease.holder
        telemetry = telemetry_hub()
        span = telemetry.begin(
            "election",
            sim.now,
            category="recovery",
            track="recovery",
            reason=reason,
            previous=old_holder,
            previous_epoch=self.epoch,
        )
        # Takeover waits out the incumbent's grant: nobody else may act
        # until the lease provably lapsed.
        if self.lease.lease.expires_at > sim.now:
            sim.run(until=self.lease.lease.expires_at)
        live = self._reachable(self.members)
        lease = self.lease.elect(sim.now, live)
        if telemetry.enabled:
            telemetry.metrics.counter(
                "recovery_elections_total", "coordinator lease takeovers"
            ).inc(reason=reason)
        self.log.append(
            lease.epoch,
            lease.holder,
            "election",
            sim.now,
            previous=old_holder,
            reason=reason,
        )
        # Announce the new epoch to every reachable agent; the deposed
        # incumbent is not among them and stays on its stale epoch (its
        # next message documents the fencing).
        for rank in live:
            self._worker_epochs[rank] = lease.epoch
        if reason == "partition":
            self._stale_leaders.add(old_holder)
        else:
            # A crashed role restarts as a follower immediately; it will
            # learn the epoch the first time the fence rejects it.
            self._crashed_roles.discard(old_holder)

        replay_span = telemetry.begin(
            "log-replay",
            sim.now,
            category="recovery",
            track="recovery",
            parent=span,
        )
        state = self.log.replay()
        self.replayed_records_total += state.replayed_records
        if replay_span is not None:
            replay_span.args["replayed_records"] = state.replayed_records
            replay_span.args["from_checkpoint"] = state.from_checkpoint
            replay_span.args["iteration"] = state.iteration
            telemetry.end(replay_span, sim.now)
            telemetry.metrics.counter(
                "recovery_replayed_records_total",
                "journal records replayed during takeovers",
            ).inc(amount=float(state.replayed_records))
        if state.dangling_prepare is not None:
            # The old coordinator died between prepare and commit: stay on
            # the last committed strategy and void the orphaned proposal.
            self.transition.rollback(
                lease.epoch,
                lease.holder,
                sim.now,
                transition=state.dangling_prepare,
                reason="coordinator-crash",
            )
        if span is not None:
            span.args["new_holder"] = lease.holder
            span.args["new_epoch"] = lease.epoch
            telemetry.end(span, sim.now)

    # -- the coordinator's working loop ----------------------------------------

    def begin_iteration(self, iteration: int, members: Sequence[int]) -> None:
        """Open one training iteration, journaling membership changes."""
        self._ensure_coordinator()
        self._iteration = iteration
        key = tuple(sorted(members))
        if key != tuple(self.members):
            self.members = list(key)
            self.log.append(
                self.epoch,
                self.coordinator,
                "membership",
                self.sim.now,
                iteration=iteration,
                members=key,
            )

    def decide(
        self,
        strategy: Strategy,
        tensor_size: float,
        ready_delays: Dict[int, Optional[float]],
    ) -> Decision:
        """Journal the ready set, then run the ski-rental scan.

        Every reporting worker's message passes the epoch fence first; a
        stale report (the one message a restarted ex-coordinator sends
        before it learns the epoch) is dropped and counted, then the
        worker re-sends under the epoch the rejection taught it — the
        ready *information* is therefore never lost, only the stale
        envelope, which is what keeps fenced runs bit-identical.
        """
        self._ensure_coordinator()
        now = self.sim.now
        self.lease.renew(now)
        for rank in self._reachable(ready_delays):
            seen = self._worker_epochs.get(rank, self.epoch)
            self.fence.admit(seen, self.epoch, now, "ready-report", sender=rank)
            self._worker_epochs[rank] = self.epoch
        self.log.append(
            self.epoch,
            self.coordinator,
            "ready-report",
            now,
            iteration=self._iteration,
            ready=tuple(sorted(ready_delays.items())),
        )
        decision = self.decider.decide(strategy, tensor_size, ready_delays)
        self.log.append(
            self.epoch,
            self.coordinator,
            "decision",
            self.sim.now,
            iteration=self._iteration,
            proceed=decision.proceed,
            trigger_time=decision.trigger_time,
            active=tuple(decision.active_ranks),
            relays=tuple(decision.relays),
        )
        self.log.checkpoint(
            self.epoch,
            self.coordinator,
            self._iteration,
            tuple(self.members),
            self._committed_members,
        )
        return decision

    # -- transactional strategy installs ---------------------------------------

    def install_strategy(
        self,
        members: Sequence[int],
        crash_after_prepare: bool = False,
    ) -> Tuple[int, ...]:
        """Install a (re-)synthesized strategy's membership transactionally.

        Returns the committed member tuple the caller may now synthesize
        for. With ``crash_after_prepare`` the incumbent's role is killed
        between the two phases — the chaos hook for the rollback path:
        the successor replays, rolls the dangling prepare back to the
        last committed strategy, then re-runs prepare/commit under its
        own epoch.
        """
        self._ensure_coordinator()
        proposed = tuple(sorted(members))
        self._prepare(proposed)
        if crash_after_prepare:
            self.crash_coordinator()
            self._ensure_coordinator()  # failover + rollback of the orphan
            self._prepare(proposed)
        committed = self.transition.commit(self.epoch, self.coordinator, self.sim.now)
        self._committed_members = committed
        self.log.checkpoint(
            self.epoch,
            self.coordinator,
            self._iteration,
            tuple(self.members),
            self._committed_members,
        )
        return committed

    def _prepare(self, proposed: Tuple[int, ...]) -> None:
        """Collect acks for one proposal; a stale ack is fenced, then the
        taught worker re-acks under the current epoch."""
        ack_epochs: List[Tuple[int, int]] = []
        for rank in self._reachable(proposed):
            seen = self._worker_epochs.get(rank, self.epoch)
            if seen < self.epoch:
                ack_epochs.append((rank, seen))  # fenced, teaches the epoch
            ack_epochs.append((rank, self.epoch))
            self._worker_epochs[rank] = self.epoch
        self.transition.prepare(
            self.epoch, self.coordinator, self.sim.now, proposed, ack_epochs
        )

    @property
    def committed_members(self) -> Optional[Tuple[int, ...]]:
        """Membership of the last committed strategy (``None`` before any)."""
        return self._committed_members
