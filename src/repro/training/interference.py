"""Co-located online-serving interference (paper Sec. VI-D).

In hybrid clusters, online CPU serving tasks contend with training workers
for CPU cache and memory bandwidth. The paper's experiment launches online
inference tasks on the affinity CPU socket of 0–2 randomly chosen GPUs per
server every 5 minutes, with a *CPU interference level* from 0 % to 400 %.

The model maps an interference level L to a compute slowdown
``1 + slowdown_per_100 × L/100`` on the victim GPUs and re-rolls victims
every ``reroll_seconds``.

.. deprecated:: use :mod:`repro.fleet` for network contention.
   This model injects *synthetic* compute slowdowns. Where the dynamics
   under study are link-level — concurrent jobs contending for the shared
   fabric — prefer :class:`repro.fleet.FleetRunner`, which generates real
   contending traffic from concurrent jobs and attributes the resulting
   slowdowns to the aggressor job (DESIGN.md §14). This model remains the
   right tool for the paper's Sec. VI-D *compute-side* (CPU cache/memory
   bandwidth) interference experiment, which fleet replay does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import TrainingError
from repro.hardware.cluster import Cluster


@dataclass
class InterferenceModel:
    """Periodically re-rolled per-GPU compute slowdowns."""

    cluster: Cluster
    #: CPU utilization of each online task, in percent (0-400 in the paper).
    level_percent: float
    #: GPUs per server disturbed at a time (paper: 0-2, chosen randomly).
    max_victims_per_server: int = 2
    #: How often victims are re-chosen (paper: every 5 minutes).
    reroll_seconds: float = 300.0
    #: Slowdown per 100% CPU interference.
    slowdown_per_100: float = 0.14
    seed: int = 0

    def __post_init__(self) -> None:
        if self.level_percent < 0:
            raise TrainingError("interference level must be non-negative")
        if self.max_victims_per_server < 0:
            raise TrainingError("victim count must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        self._current: Dict[int, float] = {}
        self._next_reroll = 0.0

    @property
    def slowdown_factor(self) -> float:
        """Multiplier applied to a victim GPU's compute time."""
        return 1.0 + self.slowdown_per_100 * self.level_percent / 100.0

    def at(self, now: float) -> Dict[int, float]:
        """Current rank → slowdown map, re-rolling victims when due."""
        if now >= self._next_reroll:
            self._reroll()
            self._next_reroll = now + self.reroll_seconds
        return dict(self._current)

    def _reroll(self) -> None:
        self._current = {}
        if self.level_percent == 0:
            return
        for instance in self.cluster.instances:
            count = int(self._rng.integers(0, self.max_victims_per_server + 1))
            if count == 0:
                continue
            chosen = self._rng.choice(
                len(instance.gpus), size=min(count, len(instance.gpus)), replace=False
            )
            for local_index in chosen:
                self._current[instance.gpus[int(local_index)].rank] = self.slowdown_factor

    def victims(self) -> List[int]:
        """Ranks currently slowed down."""
        return sorted(self._current)
