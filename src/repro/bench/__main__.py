"""``python -m repro.bench`` — the Fig. 11–13 micro-benchmarks, aggregated.

Runs the same measurement loops as ``benchmarks/bench_fig11_reduce.py``,
``bench_fig12_allreduce.py`` and ``bench_fig13_alltoall.py`` (Reduce,
AllReduce and AlltoAll Algo.bw across the paper's A100/V100 testbed
configurations) and writes one machine-readable aggregate,
``BENCH_fig11_13.json``: every per-cell bandwidth plus the geomean
speedups the paper quotes. The simulator is deterministic, so the file
is byte-stable across runs of the same code — which is what makes it a
committable perf baseline.

Modes:

* default — measure, print the three figure tables, write the aggregate
  (to ``REPRO_BENCH_DIR`` via the shared payload path when set, else to
  ``--output``);
* ``--check [BASELINE]`` — measure and compare against a committed
  baseline instead of writing; any cell slower than the tolerance
  (default 10 %) exits non-zero, which is the CI perf-regression gate;
* ``--quick`` — first configuration and two backends per figure only
  (fast smoke for local use);
* ``--figures fig11,fig13`` — restrict to a subset of figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import measure_algorithm_bandwidth
from repro.bench.report import Table, bench_dir, geometric_mean, write_bench_payload
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.synthesis.strategy import Primitive

TENSOR_BYTES = 64 * MB

#: The five paper configurations shared by Fig. 11/12 (Fig. 13 drops the
#: largest one and Blink, which lacks multi-server AlltoAll).
_CONFIG_RECIPES: Dict[str, Tuple[List[int], Optional[List[int]]]] = {
    "A100:(4,4)": ([4, 4], None),
    "A100:(4,4,4,4)": ([4, 4, 4, 4], None),
    "A100:(4,4) V100:(4,4)": ([4, 4], [4, 4]),
    "A100:(4,4,4,4) V100:(4,4)": ([4, 4, 4, 4], [4, 4]),
    "A100:(2,2) V100:(4,4)": ([2, 2], [4, 4]),
}

FIGURES: Dict[str, Dict] = {
    "fig11": {
        "title": "Fig. 11 — Reduce Algo.bw (GB/s), 64 MB float tensor",
        "primitive": Primitive.REDUCE,
        "configs": list(_CONFIG_RECIPES),
        "backends": ["adapcc", "nccl", "msccl", "blink"],
        "max_chunks": None,
    },
    "fig12": {
        "title": "Fig. 12 — AllReduce Algo.bw (GB/s), 64 MB float tensor",
        "primitive": Primitive.ALLREDUCE,
        "configs": list(_CONFIG_RECIPES),
        "backends": ["adapcc", "nccl", "msccl", "blink"],
        "max_chunks": None,
    },
    "fig13": {
        "title": "Fig. 13 — AlltoAll Algo.bw (GB/s), 64 MB per rank",
        "primitive": Primitive.ALLTOALL,
        "configs": [c for c in _CONFIG_RECIPES if c != "A100:(4,4,4,4) V100:(4,4)"],
        "backends": ["adapcc", "nccl", "msccl"],
        "max_chunks": 4,
    },
}

#: Default regression tolerance of ``--check``: a cell may lose up to
#: this fraction of its baseline bandwidth before the gate fails.
DEFAULT_TOLERANCE = 0.10

#: Name stem of the aggregate payload (file: ``BENCH_fig11_13.json``).
AGGREGATE_NAME = "fig11_13"


def cell_key(config: str, backend: str) -> str:
    """The JSON key of one measurement cell."""
    return f"{config}|{backend}"


def measure_figure(name: str, quick: bool = False) -> Dict:
    """Measure one figure's cells; returns its aggregate payload block."""
    spec = FIGURES[name]
    configs = spec["configs"][:1] if quick else spec["configs"]
    backends = spec["backends"][:2] if quick else spec["backends"]
    cells: Dict[str, float] = {}
    for config in configs:
        a100, v100 = _CONFIG_RECIPES[config]
        specs = make_config(a100, v100) if v100 else make_config(a100)
        for backend in backends:
            cells[cell_key(config, backend)] = measure_algorithm_bandwidth(
                specs,
                backend,
                spec["primitive"],
                TENSOR_BYTES,
                max_chunks=spec["max_chunks"],
            )
    speedups: Dict[str, float] = {}
    reference = backends[0]
    for baseline in backends[1:]:
        ratios = [
            cells[cell_key(config, reference)] / cells[cell_key(config, baseline)]
            for config in configs
        ]
        speedups[baseline] = geometric_mean(ratios)
    return {
        "title": spec["title"],
        "primitive": spec["primitive"].value,
        "configs": configs,
        "backends": backends,
        "cells": cells,
        "geomean_speedups": speedups,
    }


def measure_all(figures: Sequence[str], quick: bool = False) -> Dict:
    """Measure the selected figures into one aggregate payload."""
    payload = {
        "kind": "fig11_13_aggregate",
        "tensor_bytes": TENSOR_BYTES,
        "quick": quick,
        "figures": {},
    }
    for name in figures:
        payload["figures"][name] = measure_figure(name, quick=quick)
    return payload


def render_tables(payload: Dict) -> None:
    """Print each measured figure as its paper-style table."""
    for name, figure in payload["figures"].items():
        table = Table(figure["title"], figure["backends"])
        for config in figure["configs"]:
            table.add_row(
                config,
                [
                    figure["cells"][cell_key(config, b)] / 1e9
                    for b in figure["backends"]
                ],
            )
        table.show()
        for baseline, speedup in figure["geomean_speedups"].items():
            print(f"{name}: adapcc vs {baseline} geomean {speedup:.2f}x")
        print()


def compare_payloads(
    current: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regressions of ``current`` against ``baseline``, as human lines.

    A regression is a cell whose bandwidth fell below ``(1 - tolerance)``
    of the baseline value, or a baseline cell that is missing from the
    current run (silently dropping a measurement must not pass the gate).
    Cells new in ``current`` are fine — the baseline just needs updating.
    """
    problems: List[str] = []
    for name, figure in baseline.get("figures", {}).items():
        current_figure = current.get("figures", {}).get(name)
        if current_figure is None:
            problems.append(f"{name}: missing from the current run")
            continue
        for key, reference in figure.get("cells", {}).items():
            measured = current_figure.get("cells", {}).get(key)
            if measured is None:
                problems.append(f"{name}/{key}: cell missing from the current run")
            elif measured < reference * (1.0 - tolerance):
                problems.append(
                    f"{name}/{key}: {measured / 1e9:.3f} GB/s is "
                    f"{(1.0 - measured / reference) * 100:.1f}% below the "
                    f"baseline {reference / 1e9:.3f} GB/s "
                    f"(tolerance {tolerance * 100:.0f}%)"
                )
    return problems


def _write_aggregate(payload: Dict, output: str) -> Path:
    if bench_dir() is not None:
        return write_bench_payload(AGGREGATE_NAME, payload)
    path = Path(output)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the Fig. 11-13 micro-benchmarks and write/check "
        "the aggregate BENCH_fig11_13.json baseline.",
    )
    parser.add_argument(
        "--check",
        nargs="?",
        const="BENCH_fig11_13.json",
        default=False,
        metavar="BASELINE",
        help="compare against a committed baseline instead of writing "
        "(default baseline path: BENCH_fig11_13.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fractional bandwidth loss tolerated by --check (default 0.10)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_fig11_13.json",
        help="aggregate output path when REPRO_BENCH_DIR is unset",
    )
    parser.add_argument(
        "--figures",
        default=",".join(FIGURES),
        help="comma-separated subset of figures (fig11,fig12,fig13)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="first configuration + two backends per figure only",
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.figures.split(",") if n.strip()]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown} (have {list(FIGURES)})")

    payload = measure_all(names, quick=args.quick)
    render_tables(payload)

    if args.check is not False:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            print(f"FAIL bench: baseline {baseline_path} does not exist")
            return 1
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        problems = compare_payloads(payload, baseline, tolerance=args.tolerance)
        if problems:
            print(f"FAIL bench: {len(problems)} regression(s) vs {baseline_path}")
            for line in problems:
                print(f"  {line}")
            return 1
        cells = sum(
            len(f.get("cells", {})) for f in baseline.get("figures", {}).values()
        )
        print(f"ok   bench: {cells} cells within {args.tolerance * 100:.0f}% of baseline")
        return 0

    path = _write_aggregate(payload, args.output)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
