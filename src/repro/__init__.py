"""repro — a reproduction of AdapCC (ICDCS 2024) on a simulated GPU cluster.

AdapCC is an adaptive collective-communication library for distributed
training: it detects the cluster topology, profiles links on the fly,
synthesizes communication strategies (routing, chunk size, aggregation
control) from the measurements, and uses a ski-rental coordinator to
trade waiting for stragglers against partial communication with relays.

Quick start::

    import numpy as np
    from repro import AdapCCSession
    from repro.hardware import make_hetero_cluster

    session = AdapCCSession(make_hetero_cluster()).init()
    session.setup()
    tensors = {rank: np.ones(1024) for rank in range(16)}
    result = session.allreduce(tensors)
    print(result.outputs[0][:4], result.duration)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.simulation` — discrete-event engine + fluid network (the
  testbed substitute);
* :mod:`repro.hardware` — cluster models and the paper's testbed presets;
* :mod:`repro.topology`, :mod:`repro.profiling` — detection and α–β
  profiling;
* :mod:`repro.synthesis` — the strategy synthesizer (core contribution);
* :mod:`repro.runtime` — the communicator executing strategies with real
  payloads;
* :mod:`repro.relay` — ski-rental relay control and fault recovery;
* :mod:`repro.baselines` — NCCL / MSCCL / Blink models;
* :mod:`repro.training` — workload models and the trainer loop;
* :mod:`repro.observe` — the online watchdog closing the telemetry loop
  (anomaly verdicts → targeted re-probes → hysteresis-gated re-synthesis);
* :mod:`repro.bench` — measurement harness used by ``benchmarks/`` and
  ``python -m repro.bench``.
"""

from repro.adapcc import AdapCCSession
from repro.observe.watchdog import ObserveConfig
from repro.synthesis.strategy import Primitive

__version__ = "0.1.0"

__all__ = ["AdapCCSession", "ObserveConfig", "Primitive", "__version__"]
