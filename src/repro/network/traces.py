"""Synthetic public-cloud network performance traces.

Fig. 1 of the paper measures bandwidth and latency between two 15 Gbps
cloud instances over six hours and sees up to 34 % bandwidth and 17 %
latency degradation from peak. We generate traces with the same anatomy:

* slow diurnal drift (cross-datacenter load),
* AR(1) jitter (short-term contention),
* occasional deep dips (co-located bulk transfers / cross-traffic bursts).

The generator is deterministic given a seed, and the summary statistics
(`degradation`) let tests pin the paper-reported shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TracePoint:
    """One sample: time (s), bandwidth fraction of peak, latency multiple of best."""

    time: float
    bandwidth_fraction: float
    latency_factor: float


class CloudTrace:
    """A sampled time series of relative network performance.

    Values are *relative*: ``bandwidth_fraction`` multiplies a link's
    nominal bandwidth, ``latency_factor`` multiplies its base latency. This
    makes one trace reusable across 15 Gbps cloud pairs and 100 Gbps
    testbed NICs alike.
    """

    def __init__(self, points: Sequence[TracePoint]):
        if not points:
            raise ValueError("trace needs at least one point")
        self.points = list(points)
        self._times = np.array([p.time for p in self.points])
        self._bw = np.array([p.bandwidth_fraction for p in self.points])
        self._lat = np.array([p.latency_factor for p in self.points])

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return float(self._times[-1])

    def bandwidth_fraction(self, t: float) -> float:
        """Piecewise-constant (sample-and-hold) bandwidth fraction at time t."""
        index = int(np.searchsorted(self._times, t, side="right") - 1)
        index = max(0, min(index, len(self.points) - 1))
        return float(self._bw[index])

    def latency_factor(self, t: float) -> float:
        """Piecewise-constant latency factor at time t."""
        index = int(np.searchsorted(self._times, t, side="right") - 1)
        index = max(0, min(index, len(self.points) - 1))
        return float(self._lat[index])

    def amplified(self, x: float) -> "CloudTrace":
        """The paper's volatility amplification (Sec. VI-D).

        Deviations from 1.0 are scaled so a drop to fraction f becomes a
        drop to ``1 - x·(1-f)`` (clamped to stay positive); rises scale the
        same way. x=1 reproduces the trace, larger x is more volatile.
        """
        if x < 0:
            raise ValueError("amplification must be non-negative")
        points = [
            TracePoint(
                time=p.time,
                bandwidth_fraction=max(0.05, 1.0 - x * (1.0 - p.bandwidth_fraction)),
                latency_factor=max(0.2, 1.0 + x * (p.latency_factor - 1.0)),
            )
            for p in self.points
        ]
        return CloudTrace(points)

    def degradation(self) -> dict:
        """Summary stats mirroring Fig. 1's headline numbers."""
        return {
            "bandwidth_drop_from_peak": float(1.0 - self._bw.min() / self._bw.max()),
            "latency_rise_from_best": float(self._lat.max() / self._lat.min() - 1.0),
            "bandwidth_mean_fraction": float(self._bw.mean()),
        }


def generate_cloud_trace(
    duration: float = 6 * 3600.0,
    sample_interval: float = 30.0,
    seed: int = 0,
    target_bandwidth_drop: float = 0.34,
    target_latency_rise: float = 0.17,
) -> CloudTrace:
    """Generate a Fig. 1-style trace.

    The defaults reproduce the paper's measurement window (6 h) and
    degradation magnitudes (34 % bandwidth, 17 % latency). The trace is
    renormalized so the generated extremes match the targets exactly.
    """
    if duration <= 0 or sample_interval <= 0:
        raise ValueError("duration and sample_interval must be positive")
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, duration + sample_interval, sample_interval)
    n = len(times)

    # Diurnal-ish drift: one slow sinusoid with random phase.
    phase = rng.uniform(0, 2 * math.pi)
    drift = 0.5 * (1 + np.sin(2 * math.pi * times / duration + phase))  # [0, 1]

    # AR(1) jitter.
    jitter = np.empty(n)
    jitter[0] = 0.0
    rho = 0.95
    noise = rng.normal(0.0, 0.15, size=n)
    for i in range(1, n):
        jitter[i] = rho * jitter[i - 1] + noise[i]
    jitter = (jitter - jitter.min()) / max(1e-9, jitter.max() - jitter.min())  # [0, 1]

    # Sparse deep dips with exponential decay.
    dips = np.zeros(n)
    num_dips = max(1, int(duration / 1800))  # one every ~30 minutes
    for start in rng.choice(n, size=num_dips, replace=False):
        width = int(rng.integers(3, 20))
        depth = rng.uniform(0.5, 1.0)
        for offset in range(width):
            if start + offset < n:
                dips[start + offset] = max(dips[start + offset], depth * (1 - offset / width))

    badness = 0.45 * drift + 0.35 * jitter + 0.6 * dips
    # Normalize to [0, 1]: 0 = best observed moment, 1 = worst.
    badness = (badness - badness.min()) / max(1e-9, badness.max() - badness.min())

    bw = 1.0 - target_bandwidth_drop * badness
    lat = 1.0 + target_latency_rise * badness
    points = [
        TracePoint(time=float(t), bandwidth_fraction=float(b), latency_factor=float(l))
        for t, b, l in zip(times, bw, lat)
    ]
    return CloudTrace(points)
