"""Error paths of :func:`strategy_from_xml`.

Every malformed document must fail with a *typed* exception
(:class:`StrategyFormatError` or :class:`SynthesisError`, both
:class:`ReproError` subclasses) — never a bare ``KeyError`` /
``IndexError`` / ``ValueError`` leaking out of the parser.
"""

import pytest

from repro.errors import ReproError, StrategyFormatError, SynthesisError
from repro.synthesis.strategy import (
    Flow,
    Primitive,
    Strategy,
    SubCollective,
    strategy_from_xml,
    strategy_to_xml,
)
from repro.topology.graph import gpu_node, nic_node


def valid_document() -> str:
    sc = SubCollective(
        index=0,
        size=1000.0,
        chunk_size=100.0,
        flows=[
            Flow(
                src=gpu_node(0),
                dst=gpu_node(4),
                path=[gpu_node(0), nic_node(0), nic_node(1), gpu_node(4)],
            )
        ],
        aggregation={gpu_node(4): True},
        root=gpu_node(4),
    )
    strategy = Strategy(
        primitive=Primitive.REDUCE,
        tensor_size=1000.0,
        participants=[0, 4],
        subcollectives=[sc],
    )
    return strategy_to_xml(strategy)


class TestMalformedXml:
    def test_truncated_document(self):
        with pytest.raises(StrategyFormatError, match="malformed"):
            strategy_from_xml(valid_document()[:40])

    def test_not_xml_at_all(self):
        with pytest.raises(StrategyFormatError, match="malformed"):
            strategy_from_xml("reduce: g0 -> g4")

    def test_empty_document(self):
        with pytest.raises(StrategyFormatError):
            strategy_from_xml("")

    def test_wrong_root_element(self):
        with pytest.raises(StrategyFormatError, match="unexpected root"):
            strategy_from_xml("<plan primitive='reduce'/>")


class TestBadAttributes:
    def test_unknown_primitive(self):
        doc = valid_document().replace('primitive="reduce"', 'primitive="quickreduce"')
        with pytest.raises(StrategyFormatError, match="unknown primitive"):
            strategy_from_xml(doc)

    def test_missing_primitive(self):
        doc = valid_document().replace('primitive="reduce" ', "")
        with pytest.raises(StrategyFormatError, match="unknown primitive"):
            strategy_from_xml(doc)

    def test_missing_tensor_size(self):
        doc = valid_document().replace(' tensor_size="1000.0"', "")
        with pytest.raises(StrategyFormatError, match="bad strategy attributes"):
            strategy_from_xml(doc)

    def test_non_numeric_tensor_size(self):
        doc = valid_document().replace('tensor_size="1000.0"', 'tensor_size="big"')
        with pytest.raises(StrategyFormatError, match="bad strategy attributes"):
            strategy_from_xml(doc)

    def test_missing_chunk_size(self):
        doc = valid_document().replace(' chunk_size="100.0"', "")
        with pytest.raises(StrategyFormatError, match="bad sub-collective attributes"):
            strategy_from_xml(doc)

    def test_non_numeric_chunk_size(self):
        doc = valid_document().replace('chunk_size="100.0"', 'chunk_size="small"')
        with pytest.raises(StrategyFormatError, match="bad sub-collective attributes"):
            strategy_from_xml(doc)

    def test_zero_chunk_size_rejected_by_model(self):
        doc = valid_document().replace('chunk_size="100.0"', 'chunk_size="0.0"')
        with pytest.raises(SynthesisError, match="chunk size"):
            strategy_from_xml(doc)

    def test_missing_subcollective_index(self):
        doc = valid_document().replace('index="0" ', "")
        with pytest.raises(StrategyFormatError, match="bad sub-collective attributes"):
            strategy_from_xml(doc)


class TestBadNodesAndFlows:
    def test_garbage_node_id(self):
        doc = valid_document().replace('root="g4"', 'root="x4"')
        with pytest.raises(StrategyFormatError, match="bad node id"):
            strategy_from_xml(doc)

    def test_non_integer_node_id(self):
        doc = valid_document().replace('root="g4"', 'root="gfour"')
        with pytest.raises(StrategyFormatError, match="bad node id"):
            strategy_from_xml(doc)

    def test_missing_flow_src(self):
        doc = valid_document().replace('src="g0" ', "")
        with pytest.raises(StrategyFormatError, match="bad node id"):
            strategy_from_xml(doc)

    def test_empty_path(self):
        doc = valid_document().replace('path="g0 n0 n1 g4"', 'path=""')
        with pytest.raises(SynthesisError, match="path too short"):
            strategy_from_xml(doc)

    def test_non_contiguous_path_endpoints(self):
        # Path that neither starts at src nor ends at dst: the flow model
        # rejects it during construction with a typed error.
        doc = valid_document().replace('path="g0 n0 n1 g4"', 'path="n0 n1"')
        with pytest.raises(SynthesisError, match="endpoints"):
            strategy_from_xml(doc)

    def test_path_with_self_loop(self):
        doc = valid_document().replace('path="g0 n0 n1 g4"', 'path="g0 n0 n0 n1 g4"')
        with pytest.raises(SynthesisError, match="self-loop"):
            strategy_from_xml(doc)

    def test_gpu_revisit(self):
        doc = valid_document().replace('path="g0 n0 n1 g4"', 'path="g0 g4 n0 n1 g4"')
        with pytest.raises(SynthesisError, match="revisits"):
            strategy_from_xml(doc)


class TestModelLevelRejection:
    def test_partition_sum_mismatch(self):
        doc = valid_document().replace('index="0" size="1000.0"', 'index="0" size="1.0"')
        with pytest.raises(SynthesisError, match="sum to"):
            strategy_from_xml(doc)

    def test_every_error_is_a_repro_error(self):
        """All parser failure modes raise inside the ReproError hierarchy."""
        documents = [
            "<strategy",
            "<plan/>",
            valid_document().replace('primitive="reduce"', 'primitive="nope"'),
            valid_document().replace(' chunk_size="100.0"', ""),
            valid_document().replace('path="g0 n0 n1 g4"', 'path="n0 n1"'),
            valid_document().replace('root="g4"', 'root="4g"'),
        ]
        for doc in documents:
            with pytest.raises(ReproError):
                strategy_from_xml(doc)
