"""The profiler: measures α–β per link on the live simulator.

Profiling is triggered periodically during training (every ``period``
iterations; Sec. IV-B). Training is blocked while profiling runs — the
profiler is a simulated process the trainer yields to — and the results
are installed on the logical topology as ``estimate`` values, which the
synthesizer then prefers over nominal specs.

Two stages, as in the paper:

1. all instances profile their intra-instance (NVLink) links concurrently
   — links on different instances cannot interfere;
2. inter-instance NIC↔NIC links are profiled in the (N−1)-round schedule
   of :mod:`repro.profiling.rounds`, with a barrier between rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.network.cost_model import AlphaBeta, fit_alpha_beta
from repro.profiling.probes import DEFAULT_PROBE_PLAN, ProbePlan
from repro.profiling.rounds import inter_instance_rounds
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import Edge, EdgeKind, LogicalTopology, NodeId, nic_node


def _fit_residual(measurements, fitted: AlphaBeta) -> float:
    """RMS residual of the α–β fit over the raw probe measurements."""
    errors = []
    for n, piece, elapsed in measurements:
        predicted = n * fitted.alpha + n * piece * fitted.beta
        errors.append((elapsed - predicted) ** 2)
    return (sum(errors) / len(errors)) ** 0.5 if errors else 0.0


@dataclass
class ProfileResult:
    """Fitted link properties from one profiling pass."""

    estimates: Dict[Tuple[NodeId, NodeId], AlphaBeta] = field(default_factory=dict)
    #: Aggregate bandwidth under parallel streams, per edge (what M
    #: concurrent sub-collectives can extract together).
    parallel_estimates: Dict[Tuple[NodeId, NodeId], AlphaBeta] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds the pass took (training is blocked for these)."""
        return self.finished_at - self.started_at

    def bandwidth(self, src: NodeId, dst: NodeId) -> float:
        """Convenience: fitted bandwidth of one edge."""
        return self.estimates[(src, dst)].bandwidth


class Profiler:
    """Profiles the logical topology's NVLink and network edges."""

    def __init__(self, topology: LogicalTopology, plan: ProbePlan = DEFAULT_PROBE_PLAN):
        self.topology = topology
        self.plan = plan
        self.passes_completed = 0
        self.targeted_passes_completed = 0

    # -- public API ----------------------------------------------------------------

    def profile(self) -> ProfileResult:
        """Run one blocking profiling pass, driving the simulator."""
        sim = self.topology.cluster.sim
        process = sim.process(self.run(), name="profiler")
        return sim.run_until_complete(process)

    def run(self):
        """Generator form, for embedding in a training-loop process."""
        sim = self.topology.cluster.sim
        result = ProfileResult(started_at=sim.now)
        telemetry = telemetry_hub()
        pass_span = None
        if telemetry.enabled:
            pass_span = telemetry.begin(
                "profile-pass",
                sim.now,
                category="profile",
                track="profiler",
                pass_index=self.passes_completed,
            )

        # Stage 1: intra-instance links, all instances in parallel.
        intra = [
            sim.process(self._profile_edges(self._intra_edges(instance_id), result))
            for instance_id in range(len(self.topology.cluster.instances))
        ]
        yield sim.all_of(intra)

        # Stage 2: inter-instance links in (N-1) barrier-separated rounds.
        num_instances = len(self.topology.cluster.instances)
        for round_flows in inter_instance_rounds(num_instances):
            probes = []
            for src_instance, dst_instance in round_flows:
                if src_instance == dst_instance:
                    continue
                edge = self.topology.edge(nic_node(src_instance), nic_node(dst_instance))
                probes.append(sim.process(self._profile_edges([edge], result)))
            if probes:
                yield sim.all_of(probes)  # barrier

        result.finished_at = sim.now
        self._apply(result)
        self.passes_completed += 1
        if pass_span is not None:
            pass_span.args["edges_profiled"] = len(result.estimates)
            telemetry.end(pass_span, sim.now)
            telemetry.metrics.counter(
                "profiler_passes_total", "completed profiling passes"
            ).inc()
        return result

    def reprobe(self, edges: List[Edge]) -> ProfileResult:
        """Run one blocking *targeted* pass over only the given edges.

        This is the observe watchdog's entry point: a full pass probes
        every link in (N−1) barrier rounds, but a verdict implicates
        specific links, so re-measuring anything else wastes simulated
        training time. Estimates are applied exactly like a full pass;
        the periodic pass counter is untouched.
        """
        sim = self.topology.cluster.sim
        process = sim.process(self.run_targeted(edges), name="profiler-reprobe")
        return sim.run_until_complete(process)

    def run_targeted(self, edges: List[Edge]):
        """Generator form of the targeted pass, for embedding in a process."""
        sim = self.topology.cluster.sim
        result = ProfileResult(started_at=sim.now)
        telemetry = telemetry_hub()
        pass_span = None
        if telemetry.enabled:
            pass_span = telemetry.begin(
                "profile-reprobe",
                sim.now,
                category="profile",
                track="profiler",
                links=[f"{edge.src}->{edge.dst}" for edge in edges],
            )
        yield from self._profile_edges(list(edges), result)
        result.finished_at = sim.now
        self._apply(result)
        self.targeted_passes_completed += 1
        if pass_span is not None:
            pass_span.args["edges_profiled"] = len(result.estimates)
            telemetry.end(pass_span, sim.now)
            telemetry.metrics.counter(
                "profiler_targeted_passes_total", "targeted re-probe passes"
            ).inc()
        return result

    # -- internals ------------------------------------------------------------------

    def _intra_edges(self, instance_id: int) -> List[Edge]:
        """The profiled (NVLink) edges whose endpoints live on one instance."""
        ranks = set(self.topology.cluster.ranks_on_instance(instance_id))
        return [
            edge
            for edge in self.topology.profiled_edges()
            if edge.kind is EdgeKind.NVLINK and edge.src.index in ranks
        ]

    #: Streams and piece size of the parallel-aggregate probe.
    PARALLEL_STREAMS = 4
    PARALLEL_PIECE = 2_000_000.0

    def _profile_edges(self, edges: List[Edge], result: ProfileResult):
        """Sequentially probe a list of edges, fitting α–β for each.

        Two passes per edge: the paper's piecewise/grouped single-stream
        probes fit (α, β); a burst of parallel streams then measures the
        aggregate bandwidth, which bounds what M concurrent sub-collectives
        share (the evaluator's contention model needs both figures).
        """
        sim = self.topology.cluster.sim
        network = self.topology.cluster.network
        for edge in edges:
            measurements = []
            for n, piece in self.plan.settings:
                # Piecewise pass: n back-to-back sends of `piece` bytes.
                start = sim.now
                for _ in range(n):
                    yield network.transfer(edge.fluid_links, piece, tag="profile")
                measurements.append((n, piece, sim.now - start))
                # Grouped pass: one send of n*piece bytes.
                start = sim.now
                yield network.transfer(edge.fluid_links, n * piece, tag="profile")
                measurements.append((1, n * piece, sim.now - start))
            fitted = fit_alpha_beta(measurements)
            result.estimates[(edge.src, edge.dst)] = fitted
            telemetry = telemetry_hub()
            if telemetry.enabled:
                telemetry.instant(
                    "alpha-beta-fit",
                    sim.now,
                    category="profile",
                    track="profiler",
                    edge=f"{edge.src}->{edge.dst}",
                    alpha=fitted.alpha,
                    beta=fitted.beta,
                    residual=_fit_residual(measurements, fitted),
                    samples=len(measurements),
                )

            # Parallel-aggregate pass.
            start = sim.now
            burst = [
                network.transfer(edge.fluid_links, self.PARALLEL_PIECE, tag="profile-par")
                for _ in range(self.PARALLEL_STREAMS)
            ]
            yield sim.all_of(burst)
            elapsed = sim.now - start
            aggregate = self.PARALLEL_STREAMS * self.PARALLEL_PIECE / elapsed
            result.parallel_estimates[(edge.src, edge.dst)] = AlphaBeta(
                fitted.alpha, 1.0 / aggregate
            )

    def _apply(self, result: ProfileResult) -> None:
        for (src, dst), estimate in result.estimates.items():
            self.topology.set_estimate(
                src, dst, estimate, parallel=result.parallel_estimates.get((src, dst))
            )
