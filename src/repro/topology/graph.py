"""The logical topology connecting all GPUs and NICs in a job.

Mirrors Fig. 5(a) of the paper: nodes are GPUs and NICs; edges are

* **NVLink** GPU↔GPU edges inside an instance (green lines),
* **PCIe** GPU↔GPU edges where no NVLink exists (dotted lines),
* **local** GPU↔NIC edges (device↔host↔NIC staging, treated as pipelined
  behind network transfers),
* **network** NIC↔NIC edges between every pair of instances (blue lines) —
  instance-to-instance connectivity is taken as a full mesh (Sec. IV-A).

Each edge carries (a) the concrete fluid links a transfer over it crosses,
(b) a *nominal* α–β estimate derived from specs (what NCCL's empirical
tables amount to), and (c) an optional *profiled* α–β estimate filled in by
the profiler. ``effective()`` prefers the profiled value — the difference
between nominal and profiled is exactly the adaptivity gap the paper
exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.hardware.cluster import Cluster
from repro.network.cost_model import AlphaBeta
from repro.simulation.fluid import FluidLink


class NodeKind(enum.Enum):
    """Node classes of the logical topology (Fig. 5a)."""

    GPU = "gpu"
    NIC = "nic"


@dataclass(frozen=True, order=True)
class NodeId:
    """A node in the logical topology.

    ``index`` is the global rank for GPU nodes and the instance id for NIC
    nodes (the paper testbed has one NIC per server; multi-NIC instances
    get ``index = instance_id * 1000 + nic_idx``).
    """

    kind: NodeKind
    index: int

    def __str__(self) -> str:
        return f"{'g' if self.kind is NodeKind.GPU else 'n'}{self.index}"

    @property
    def is_gpu(self) -> bool:
        """Whether this node is a GPU (vs a NIC)."""
        return self.kind is NodeKind.GPU


def gpu_node(rank: int) -> NodeId:
    """NodeId of the GPU holding ``rank``."""
    return NodeId(NodeKind.GPU, rank)


def parse_node(text: str) -> NodeId:
    """Inverse of ``str(NodeId)``: ``"g3"`` → GPU 3, ``"n1"`` → NIC 1."""
    if len(text) >= 2 and text[0] in ("g", "n") and text[1:].isdigit():
        kind = NodeKind.GPU if text[0] == "g" else NodeKind.NIC
        return NodeId(kind, int(text[1:]))
    raise TopologyError(f"unparseable node name {text!r}")


def parse_link(link: str) -> Tuple[NodeId, NodeId]:
    """Parse a ``"src->dst"`` link name into its endpoint NodeIds."""
    src, sep, dst = link.partition("->")
    if not sep:
        raise TopologyError(f"unparseable link name {link!r}")
    return parse_node(src), parse_node(dst)


def nic_node(instance_id: int, nic_idx: int = 0) -> NodeId:
    """NodeId of a NIC (primary NIC unless ``nic_idx`` given)."""
    index = instance_id if nic_idx == 0 else instance_id * 1000 + nic_idx
    return NodeId(NodeKind.NIC, index)


class EdgeKind(enum.Enum):
    """Edge classes: intra-server links, staging, and network."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    LOCAL = "local"  # GPU <-> NIC staging inside an instance
    NETWORK = "network"  # NIC <-> NIC between instances

    @property
    def profiled(self) -> bool:
        """Whether the profiler measures this edge kind.

        The paper profiles NVLink and NIC-NIC connections; PCIe staging is
        overlapped with network transfers and not profiled (Sec. IV-B).
        """
        return self in (EdgeKind.NVLINK, EdgeKind.NETWORK)


#: β (seconds per byte) a quarantined edge reports: ~1e-9 B/s of usable
#: bandwidth. Finite — the synthesizer's eq.-4 evaluation stays well
#: defined — but so catastrophic that any widest-tree or cost comparison
#: routes around the edge whenever an alternative path exists.
QUARANTINE_BETA = 1e9


@dataclass
class Edge:
    """A directed logical edge with execution path and cost estimates.

    Two bandwidth figures describe an edge: the *single-stream* α–β (what
    one flow achieves — limited by per-channel caps) and the *parallel
    aggregate* (what several concurrent streams achieve together — the
    line rate). AdapCC's M parallel sub-collectives make the distinction
    matter, so the profiler measures both.
    """

    src: NodeId
    dst: NodeId
    kind: EdgeKind
    fluid_links: List[FluidLink]
    nominal: AlphaBeta
    estimate: Optional[AlphaBeta] = None
    #: Aggregate α–β of the edge when driven by parallel streams.
    nominal_parallel: Optional[AlphaBeta] = None
    estimate_parallel: Optional[AlphaBeta] = None
    #: Set by the integrity layer when the link is convicted of silent
    #: corruption; masks the edge's capacity so synthesis avoids it.
    quarantined: bool = False

    @property
    def effective(self) -> AlphaBeta:
        """Profiled single-stream α–β when available, nominal otherwise.

        A quarantined edge reports :data:`QUARANTINE_BETA` regardless of
        estimates: its capacity is masked, not its existence, so strategy
        synthesis avoids it wherever an alternative path exists but the
        model never divides by zero.
        """
        base = self.estimate if self.estimate is not None else self.nominal
        if self.quarantined:
            return AlphaBeta(base.alpha, QUARANTINE_BETA)
        return base

    @property
    def effective_parallel(self) -> AlphaBeta:
        """Profiled parallel-aggregate α–β, nominal otherwise."""
        if self.quarantined:
            return self.effective
        if self.estimate_parallel is not None:
            return self.estimate_parallel
        return self.nominal_parallel if self.nominal_parallel is not None else self.effective

    def ground_truth(self) -> AlphaBeta:
        """α–β a single probe flow would observe on the current fluid links.

        The bandwidth is the single-stream achievable rate — capped by both
        link capacity and per-stream limits — because that is what the α–β
        model (and the profiler) describe.
        """
        alpha = sum(link.latency for link in self.fluid_links)
        capacity = min(
            (min(link.capacity, link.per_stream_cap) for link in self.fluid_links),
            default=float("inf"),
        )
        beta = (
            0.0
            if capacity == float("inf")
            else (1.0 / capacity if capacity > 0 else float("inf"))
        )
        return AlphaBeta(alpha=alpha, beta=beta)


class LogicalTopology:
    """Directed multigraph-free topology: at most one edge per (src, dst)."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.nodes: List[NodeId] = []
        self.edges: Dict[Tuple[NodeId, NodeId], Edge] = {}
        self._out: Dict[NodeId, List[NodeId]] = {}
        self._in: Dict[NodeId, List[NodeId]] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_cluster(
        cls,
        cluster: Cluster,
        nvlink_pairs: Optional[Dict[int, Iterable[Tuple[int, int]]]] = None,
    ) -> "LogicalTopology":
        """Build the logical graph for a cluster.

        ``nvlink_pairs`` optionally overrides which local GPU pairs are
        treated as NVLink-connected per instance (normally the detector's
        output); by default the cluster ground truth is used.
        """
        topo = cls(cluster)
        for gpu in cluster.gpus:
            topo._add_node(gpu_node(gpu.rank))
        for instance in cluster.instances:
            topo._add_node(nic_node(instance.instance_id))

        for instance in cluster.instances:
            iid = instance.instance_id
            n = instance.spec.num_gpus
            if nvlink_pairs is not None and iid in nvlink_pairs:
                pairs = {tuple(sorted(p)) for p in nvlink_pairs[iid]}
            else:
                pairs = instance.spec.resolved_nvlink_pairs()
            for a in range(n):
                for b in range(n):
                    if a == b:
                        continue
                    src_rank = instance.gpus[a].rank
                    dst_rank = instance.gpus[b].rank
                    kind = EdgeKind.NVLINK if tuple(sorted((a, b))) in pairs else EdgeKind.PCIE
                    if kind is EdgeKind.NVLINK:
                        links = [cluster.nvlink(src_rank, dst_rank)]
                        if links[0] is None:
                            raise TopologyError(
                                f"detector claims NVLink between ranks {src_rank},{dst_rank} "
                                "but the cluster has none"
                            )
                    else:
                        links = cluster.gpu_path(src_rank, dst_rank)
                    topo._add_edge(gpu_node(src_rank), gpu_node(dst_rank), kind, links)
            # GPU <-> NIC staging edges.
            nic = instance.primary_nic
            for gpu in instance.gpus:
                staging = [cluster.pcie_bus(iid, gpu.pcie_switch)]
                if nic.pcie_switch != gpu.pcie_switch:
                    staging.append(cluster.pcie_bus(iid, nic.pcie_switch))
                topo._add_edge(gpu_node(gpu.rank), nic_node(iid), EdgeKind.LOCAL, list(staging))
                topo._add_edge(nic_node(iid), gpu_node(gpu.rank), EdgeKind.LOCAL, list(staging))

        # Full mesh between instance NICs.
        for a in cluster.instances:
            for b in cluster.instances:
                if a.instance_id == b.instance_id:
                    continue
                links = cluster.nic_path(a.instance_id, b.instance_id)
                topo._add_edge(
                    nic_node(a.instance_id), nic_node(b.instance_id), EdgeKind.NETWORK, links
                )
        return topo

    def _add_node(self, node: NodeId) -> None:
        if node in self._out:
            raise TopologyError(f"duplicate node {node}")
        self.nodes.append(node)
        self._out[node] = []
        self._in[node] = []

    def _add_edge(
        self, src: NodeId, dst: NodeId, kind: EdgeKind, links: List[FluidLink]
    ) -> Edge:
        if (src, dst) in self.edges:
            raise TopologyError(f"duplicate edge {src}->{dst}")
        alpha = sum(link.latency for link in links)
        capacity = min(
            (min(link.capacity, link.per_stream_cap) for link in links),
            default=float("inf"),
        )
        beta = 0.0 if capacity == float("inf") else 1.0 / capacity
        line_rate = min((link.capacity for link in links), default=float("inf"))
        line_beta = 0.0 if line_rate == float("inf") else 1.0 / line_rate
        edge = Edge(
            src,
            dst,
            kind,
            links,
            nominal=AlphaBeta(alpha, beta),
            nominal_parallel=AlphaBeta(alpha, line_beta),
        )
        self.edges[(src, dst)] = edge
        self._out[src].append(dst)
        self._in[dst].append(src)
        return edge

    # -- queries ------------------------------------------------------------------

    @property
    def gpu_nodes(self) -> List[NodeId]:
        """All GPU nodes, in rank order."""
        return [n for n in self.nodes if n.kind is NodeKind.GPU]

    @property
    def nic_nodes(self) -> List[NodeId]:
        """All NIC nodes, one per instance."""
        return [n for n in self.nodes if n.kind is NodeKind.NIC]

    def edge(self, src: NodeId, dst: NodeId) -> Edge:
        """The directed edge src→dst; raises TopologyError if absent."""
        try:
            return self.edges[(src, dst)]
        except KeyError:
            raise TopologyError(f"no edge {src}->{dst}")

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the directed edge exists."""
        return (src, dst) in self.edges

    def successors(self, node: NodeId) -> List[NodeId]:
        """Nodes reachable over one outgoing edge."""
        return list(self._out[node])

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Nodes with an edge into ``node``."""
        return list(self._in[node])

    def profiled_edges(self) -> List[Edge]:
        """Edges the profiler measures (NVLink + network)."""
        return [e for e in self.edges.values() if e.kind.profiled]

    def set_estimate(
        self,
        src: NodeId,
        dst: NodeId,
        estimate: AlphaBeta,
        parallel: Optional[AlphaBeta] = None,
    ) -> None:
        """Install profiled α–β estimates on an edge.

        When only the single-stream estimate is given, the parallel
        aggregate is scaled from the nominal ratio so shaping detected by
        the single-stream probe also shifts the aggregate.
        """
        edge = self.edge(src, dst)
        edge.estimate = estimate
        if parallel is not None:
            edge.estimate_parallel = parallel
        elif edge.nominal.bandwidth not in (0.0, float("inf")) and edge.nominal_parallel:
            ratio = estimate.bandwidth / edge.nominal.bandwidth
            aggregate = edge.nominal_parallel.bandwidth * ratio
            edge.estimate_parallel = AlphaBeta(
                estimate.alpha, 0.0 if aggregate == float("inf") else 1.0 / aggregate
            )

    def clear_estimates(self) -> None:
        """Drop all profiled estimates (fall back to nominal everywhere)."""
        for edge in self.edges.values():
            edge.estimate = None
            edge.estimate_parallel = None

    # -- quarantine ----------------------------------------------------------------

    def quarantine_link(self, link: str, both_directions: bool = True) -> List[Edge]:
        """Mask a convicted link's capacity (``link`` is ``"src->dst"``).

        By default the reverse edge is quarantined too: a corrupting
        physical link is not to be trusted in either direction. Returns
        the edges flagged. Unknown links raise — a conviction must name a
        real edge.
        """
        src, dst = parse_link(link)
        pairs = [(src, dst)]
        if both_directions and (dst, src) in self.edges:
            pairs.append((dst, src))
        flagged = []
        for a, b in pairs:
            edge = self.edge(a, b)
            edge.quarantined = True
            flagged.append(edge)
        return flagged

    def quarantined_links(self) -> List[str]:
        """Names of all quarantined edges, sorted."""
        return sorted(
            f"{src}->{dst}"
            for (src, dst), edge in self.edges.items()
            if edge.quarantined
        )

    def clear_quarantine(self) -> None:
        """Lift every quarantine (test/reset helper)."""
        for edge in self.edges.values():
            edge.quarantined = False

    def path_edges(self, path: List[NodeId]) -> List[Edge]:
        """Edges along a node path; validates adjacency."""
        return [self.edge(a, b) for a, b in zip(path, path[1:])]

    def to_networkx(self, use_estimates: bool = True) -> "nx.DiGraph":
        """Export to networkx with ``alpha``/``beta``/``bandwidth`` attributes."""
        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(node, kind=node.kind.value)
        for (src, dst), edge in self.edges.items():
            ab = edge.effective if use_estimates else edge.nominal
            graph.add_edge(
                src,
                dst,
                kind=edge.kind.value,
                alpha=ab.alpha,
                beta=ab.beta,
                bandwidth=ab.bandwidth,
            )
        return graph
