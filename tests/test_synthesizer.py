"""Tests for the synthesizer search (the Gurobi substitute)."""

import pytest

from repro.errors import SynthesisError
from repro.hardware import Cluster, MB, make_hetero_cluster, make_homo_cluster
from repro.simulation import Simulator
from repro.synthesis import (
    Primitive,
    Strategy,
    Synthesizer,
    SynthesizerConfig,
    strategy_from_xml,
    strategy_to_xml,
)
from repro.topology import LogicalTopology
from repro.topology.graph import NodeKind, gpu_node, nic_node


def make_synth(specs, **config_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, specs)
    topo = LogicalTopology.from_cluster(cluster)
    return topo, Synthesizer(topo, SynthesizerConfig(**config_kwargs))


@pytest.fixture
def hetero_synth():
    return make_synth(make_hetero_cluster())


@pytest.fixture
def homo_synth():
    return make_synth(make_homo_cluster(num_servers=2))


class TestReduce:
    def test_all_flows_end_at_root(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        for sc in strategy.subcollectives:
            assert sc.root == gpu_node(0)
            for flow in sc.flows:
                assert flow.dst == gpu_node(0)

    def test_every_participant_contributes(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        for sc in strategy.subcollectives:
            sources = {flow.src.index for flow in sc.flows}
            assert sources == set(range(1, 16))

    def test_m_subcollectives(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        assert strategy.parallelism == 4
        assert sum(sc.size for sc in strategy.subcollectives) == pytest.approx(64 * MB)

    def test_predicted_time_positive_and_reported(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        assert strategy.predicted_time > 0
        assert strategy.routing_family in synth.config.families or strategy.routing_family
        assert synth.last_report.candidates_evaluated > 0
        assert synth.last_report.solve_seconds > 0

    def test_root_must_participate(self, hetero_synth):
        _, synth = hetero_synth
        with pytest.raises(SynthesisError):
            synth.synthesize(Primitive.REDUCE, MB, [0, 1], root=7)

    def test_chunk_size_within_partition(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        for sc in strategy.subcollectives:
            assert 0 < sc.chunk_size <= sc.size

    def test_aggregation_only_on_gpus(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        for sc in strategy.subcollectives:
            for node, flag in sc.aggregation.items():
                if flag:
                    assert node.kind is NodeKind.GPU

    def test_subset_of_workers(self, hetero_synth):
        """Arbitrary participant subsets (the relay scenario)."""
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, MB, [1, 3, 6, 12], root=3)
        for sc in strategy.subcollectives:
            assert {f.src.index for f in sc.flows} == {1, 6, 12}

    def test_single_participant_trivial(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.REDUCE, MB, [5])
        assert strategy.predicted_time == 0.0
        assert strategy.subcollectives[0].flows == []

    def test_bad_inputs_rejected(self, hetero_synth):
        _, synth = hetero_synth
        with pytest.raises(SynthesisError):
            synth.synthesize(Primitive.REDUCE, 0, [0, 1])
        with pytest.raises(SynthesisError):
            synth.synthesize(Primitive.REDUCE, MB, [])


class TestBroadcast:
    def test_flows_start_at_root(self, homo_synth):
        _, synth = homo_synth
        strategy = synth.synthesize(Primitive.BROADCAST, 16 * MB, range(8), root=2)
        for sc in strategy.subcollectives:
            for flow in sc.flows:
                assert flow.src == gpu_node(2)
        destinations = {f.dst.index for f in strategy.subcollectives[0].flows}
        assert destinations == set(range(8)) - {2}

    def test_no_aggregation_flags(self, homo_synth):
        _, synth = homo_synth
        strategy = synth.synthesize(Primitive.BROADCAST, 16 * MB, range(8), root=0)
        for sc in strategy.subcollectives:
            assert not any(sc.aggregation.values())


class TestAllReduce:
    def test_roots_avoid_weak_nics_and_spread(self, hetero_synth):
        """Roots land only on well-connected (A100, 100 Gbps) instances and
        spread across all of them."""
        topo, synth = hetero_synth
        strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(16))
        root_instances = [
            topo.cluster.gpu(sc.root.index).instance_id for sc in strategy.subcollectives
        ]
        assert set(root_instances) == {0, 1}  # both A100 servers, no V100
        assert root_instances.count(0) == root_instances.count(1)

    def test_roots_spread_over_all_instances_when_homogeneous(self, homo_synth):
        topo, synth = homo_synth
        strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(8))
        root_instances = {
            topo.cluster.gpu(sc.root.index).instance_id for sc in strategy.subcollectives
        }
        assert root_instances == {0, 1}

    def test_flows_are_reduce_oriented(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(16))
        for sc in strategy.subcollectives:
            for flow in sc.flows:
                assert flow.dst == sc.root


class TestOtherPrimitives:
    def test_allgather_one_broadcast_per_rank(self, homo_synth):
        _, synth = homo_synth
        strategy = synth.synthesize(Primitive.ALLGATHER, 4 * MB, range(8))
        assert strategy.parallelism == 8
        roots = {sc.root.index for sc in strategy.subcollectives}
        assert roots == set(range(8))

    def test_reduce_scatter_partitions(self, homo_synth):
        _, synth = homo_synth
        strategy = synth.synthesize(Primitive.REDUCE_SCATTER, 8 * MB, range(8))
        assert strategy.parallelism == 8
        assert all(sc.size == pytest.approx(MB) for sc in strategy.subcollectives)

    def test_alltoall_pairwise_flows(self, homo_synth):
        _, synth = homo_synth
        strategy = synth.synthesize(Primitive.ALLTOALL, 8 * MB, range(8))
        for sc in strategy.subcollectives:
            assert len(sc.flows) == 56  # 8*7 ordered pairs
        assert strategy.routing_family == "direct"


class TestAdaptivity:
    def test_strategy_reacts_to_degraded_link(self):
        """Fig. 2 behaviour: degrading an instance's NIC changes the graph
        so that instance stops being an interior forwarder."""
        from repro.network.cost_model import AlphaBeta

        topo, synth = make_synth(make_homo_cluster(num_servers=4))
        baseline = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)

        # Degrade instance 2's NIC to 1/10 bandwidth in both directions.
        for other in (0, 1, 3):
            for src, dst in [(2, other), (other, 2)]:
                edge = topo.edge(nic_node(src), nic_node(dst))
                topo.set_estimate(
                    nic_node(src), nic_node(dst),
                    AlphaBeta(edge.nominal.alpha, edge.nominal.beta * 10),
                )
        degraded = synth.synthesize(Primitive.REDUCE, 64 * MB, range(16), root=0)
        assert degraded.predicted_time > baseline.predicted_time

        # Instance 2's GPUs (ranks 8-11) must not forward traffic of GPUs
        # from other instances in the degraded strategy.
        for sc in degraded.subcollectives:
            for flow in sc.flows:
                src_instance = topo.cluster.gpu(flow.src.index).instance_id
                if src_instance == 2:
                    continue
                interior = [n.index for n in flow.path[1:-1] if n.kind is NodeKind.GPU]
                assert all(topo.cluster.gpu(r).instance_id != 2 for r in interior)

    def test_solver_scales_to_paper_testbed(self):
        _, synth = make_synth(make_hetero_cluster(num_a100=4, num_v100=2))
        strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(24))
        assert strategy.predicted_time > 0
        assert synth.last_report.solve_seconds < 30.0


class TestConfig:
    def test_invalid_parallelism(self):
        with pytest.raises(SynthesisError):
            SynthesizerConfig(parallelism=0)

    def test_unknown_family(self):
        with pytest.raises(SynthesisError):
            SynthesizerConfig(families=("space-elevator",))

    def test_family_restriction_respected(self, homo_synth):
        _, synth = homo_synth
        synth.config = SynthesizerConfig(families=("flat-star",))
        strategy = synth.synthesize(Primitive.REDUCE, MB, range(8), root=0)
        assert strategy.routing_family == "flat-star"

    def test_custom_chunk_sizes(self, homo_synth):
        _, synth = homo_synth
        synth.config = SynthesizerConfig(chunk_sizes=(MB,))
        strategy = synth.synthesize(Primitive.REDUCE, 8 * MB, range(8), root=0)
        for sc in strategy.subcollectives:
            assert sc.chunk_size == pytest.approx(MB)


class TestXmlIntegration:
    def test_synthesized_strategy_round_trips(self, hetero_synth):
        _, synth = hetero_synth
        strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(16))
        parsed = strategy_from_xml(strategy_to_xml(strategy))
        assert parsed.parallelism == strategy.parallelism
        for sc_a, sc_b in zip(strategy.subcollectives, parsed.subcollectives):
            assert [f.path for f in sc_a.flows] == [f.path for f in sc_b.flows]
            assert sc_a.aggregation == sc_b.aggregation
