"""Chunk-size optimization (the C_m decision).

Chunking trades pipelining depth against per-chunk latency: with bottleneck
pace T_bottle(C) = max_edge (α + β̃C), a flow finishes after
``h_dst(C) + ⌈S/C⌉·T_bottle(C)`` (eq. 5). Small chunks overlap hops better
but multiply α (and kernel launches); one big chunk degenerates to
store-and-forward. The optimizer sweeps a geometric candidate grid and lets
the evaluator pick the argmin — matching how the paper treats C_m as a
decision variable of the MILP.
"""

from __future__ import annotations

from typing import List

from repro.errors import SynthesisError
from repro.hardware.links import KB, MB

#: Default geometric grid bounds.
MIN_CHUNK = 256 * KB
MAX_CHUNK = 32 * MB


def chunk_candidates(
    partition_size: float,
    min_chunk: float = MIN_CHUNK,
    max_chunk: float = MAX_CHUNK,
) -> List[float]:
    """Candidate chunk sizes for a partition of ``partition_size`` bytes.

    Powers of two between the bounds, capped by the partition itself, plus
    the unchunked option (one chunk = the whole partition). Always returns
    at least one candidate.
    """
    if partition_size <= 0:
        raise SynthesisError("partition size must be positive")
    if min_chunk <= 0 or max_chunk < min_chunk:
        raise SynthesisError("invalid chunk bounds")
    candidates: List[float] = []
    size = min_chunk
    while size <= min(max_chunk, partition_size):
        candidates.append(float(size))
        size *= 2
    if not candidates or candidates[-1] < partition_size:
        candidates.append(float(partition_size))
    return candidates
