"""The ski-rental wait-or-proceed rule (Sec. IV-C.1).

Each 5 ms coordinator cycle is a rental day: waiting for stragglers costs
one cycle; "buying" means triggering partial communication now, whose cost
is the estimated time of phase 1 (partial collective among ready workers)
plus phase 2 (aggregating late tensors). The classical break-even rule —
proceed once accumulated waiting exceeds the buying cost — is
2-competitive against the offline optimum, the best any deterministic
policy achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CoordinationError
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology

#: The paper's coordinator decision period.
DEFAULT_CYCLE_SECONDS = 0.005


def collective_volume(primitive: Primitive, tensor_size: float, world: int) -> float:
    """Total communicated volume S for the buy-cost estimate (Sec. IV-C.1).

    AllReduce moves 2(N−1)× the tensor, AlltoAll N×, Broadcast 1× — the
    paper's exact accounting.
    """
    if world <= 0:
        raise CoordinationError("world size must be positive")
    if primitive is Primitive.ALLREDUCE:
        return 2 * max(0, world - 1) * tensor_size
    if primitive is Primitive.ALLTOALL:
        return world * tensor_size
    if primitive is Primitive.BROADCAST:
        return tensor_size
    if primitive in (Primitive.REDUCE, Primitive.REDUCE_SCATTER):
        return max(0, world - 1) * tensor_size
    if primitive is Primitive.ALLGATHER:
        return max(0, world - 1) * tensor_size
    raise CoordinationError(f"no volume rule for {primitive}")


def aggregate_bandwidth(topology: LogicalTopology, strategy: Strategy) -> float:
    """B: the summed profiled bandwidth of the strategy's links.

    The paper obtains B "by accumulating the profiled link bandwidth in
    the communication graph"; each distinct edge counts once. Only the
    *bottleneck class* of links counts: when the graph crosses the network,
    NIC-NIC links (intra-server NVLinks are an order of magnitude faster
    and would inflate B into meaninglessness); for single-server graphs,
    the GPU-GPU links.
    """
    from repro.topology.graph import EdgeKind

    edges = set()
    for sc in strategy.subcollectives:
        for flow in sc.flows:
            edges.update(flow.edges)
    network_total = 0.0
    local_total = 0.0
    for src, dst in edges:
        edge = topology.edge(src, dst)
        bandwidth = edge.effective.bandwidth
        if bandwidth == float("inf"):
            continue
        if edge.kind is EdgeKind.NETWORK:
            network_total += bandwidth
        elif edge.kind in (EdgeKind.NVLINK, EdgeKind.PCIE):
            local_total += bandwidth
    total = network_total if network_total > 0 else local_total
    if total <= 0:
        raise CoordinationError("communication graph has no finite-bandwidth links")
    return total


def estimate_collective_seconds(
    topology: LogicalTopology,
    strategy: Strategy,
    primitive: Primitive,
    tensor_size: float,
    num_workers: int,
) -> float:
    """S/B estimate of a collective's duration among ``num_workers``."""
    if num_workers <= 1:
        return 0.0
    volume = collective_volume(primitive, tensor_size, num_workers)
    return volume / aggregate_bandwidth(topology, strategy)


@dataclass
class BreakEvenPolicy:
    """The deterministic 2-competitive wait/proceed rule."""

    cycle_seconds: float = DEFAULT_CYCLE_SECONDS

    def __post_init__(self) -> None:
        if self.cycle_seconds <= 0:
            raise CoordinationError("cycle must be positive")

    def should_proceed(self, waited_seconds: float, buy_cost_seconds: float) -> bool:
        """True once accumulated waiting reaches the buying cost."""
        if waited_seconds < 0 or buy_cost_seconds < 0:
            raise CoordinationError("negative cost")
        return waited_seconds >= buy_cost_seconds

    def online_cost(self, straggler_delay: float, buy_cost: float) -> float:
        """Cost the policy pays when the last worker arrives after ``delay``.

        Used by the competitive-ratio property test: waiting w cycles then
        buying costs w + buy; if everyone arrives first it costs the delay.
        """
        if straggler_delay <= buy_cost:
            return straggler_delay  # everyone arrived while still waiting
        # Waited up to the break-even point, then bought.
        return buy_cost + buy_cost

    @staticmethod
    def offline_optimum(straggler_delay: float, buy_cost: float) -> float:
        """Clairvoyant cost: min(wait out the delay, buy immediately)."""
        return min(straggler_delay, buy_cost)
