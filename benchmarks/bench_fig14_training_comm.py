"""Fig. 14 — per-iteration communication time across models and settings.

The paper trains VGG16 / GPT-2 / ViT / MoE in {homogeneous, heterogeneous}
x {RDMA, TCP} and reports AdapCC's communication time (waiting + actual
collective) against NCCL: 1.12–1.30x faster in homogeneous settings, up to
2x in heterogeneous ones, with the TCP gap larger because NCCL's single
channel caps at ~20 Gbps.
"""

import pytest

from repro.bench import Table, geometric_mean, measure_training
from repro.hardware import make_hetero_cluster, make_homo_cluster
from repro.training import GPT2, MOE, VGG16, VIT
from repro.training.trainer import TrainerConfig

MODELS = [VGG16, GPT2, VIT, MOE]

SETTINGS = [
    ("Homo/RDMA", lambda: make_homo_cluster(num_servers=4, network="rdma")),
    ("Heter/RDMA", lambda: make_hetero_cluster(network="rdma")),
    ("Homo/TCP", lambda: make_homo_cluster(num_servers=4, network="tcp")),
    ("Heter/TCP", lambda: make_hetero_cluster(network="tcp")),
]

ITERATIONS = 6


def measure():
    results = {}
    for setting_name, make_specs in SETTINGS:
        for model in MODELS:
            for backend in ("adapcc", "nccl"):
                report = measure_training(
                    make_specs(),
                    backend,
                    model,
                    TrainerConfig(iterations=ITERATIONS, seed=17),
                )
                results[(setting_name, model.name, backend)] = report.mean_comm_seconds
    return results


def test_fig14_training_communication_time(run_once):
    results = run_once(measure)

    speedups = {}
    for setting_name, _make in SETTINGS:
        table = Table(
            f"Fig. 14 — per-iteration communication time (ms), {setting_name}",
            ["adapcc", "nccl", "speedup"],
        )
        for model in MODELS:
            adapcc = results[(setting_name, model.name, "adapcc")]
            nccl = results[(setting_name, model.name, "nccl")]
            table.add_row(model.name, [adapcc * 1e3, nccl * 1e3, nccl / adapcc])
            speedups[(setting_name, model.name)] = nccl / adapcc
        table.show()

    homo_gain = geometric_mean(
        [v for (s, _m), v in speedups.items() if s.startswith("Homo")]
    )
    heter_gain = geometric_mean(
        [v for (s, _m), v in speedups.items() if s.startswith("Heter")]
    )
    tcp_gain = geometric_mean([v for (s, _m), v in speedups.items() if "TCP" in s])
    rdma_gain = geometric_mean([v for (s, _m), v in speedups.items() if "RDMA" in s])
    print(f"geomean comm speedup homo:  {homo_gain:.2f}x (paper: 1.12-1.30x)")
    print(f"geomean comm speedup heter: {heter_gain:.2f}x (paper: up to 2x)")
    print(f"geomean comm speedup TCP:   {tcp_gain:.2f}x")
    print(f"geomean comm speedup RDMA:  {rdma_gain:.2f}x")

    # Shapes: AdapCC faster everywhere; TCP gap exceeds RDMA gap.
    assert all(v > 1.0 for v in speedups.values()), speedups
    assert tcp_gain > rdma_gain
