"""Lease-based coordinator election with epoch fencing.

The incumbent coordinator holds a sim-clock lease. Every coordinator
action renews it; the renewal is an RPC whose latency comes from the same
lognormal model Fig. 19d characterizes (threaded through an explicit
seeded generator, never ambient randomness). When the incumbent crashes
or is partitioned away, the lease stops being renewed; once it expires,
the **lowest-ranked live worker** takes over under the next **epoch**.

Epochs are the fencing token: every coordinator↔worker message carries
the epoch it was composed under, and :class:`EpochFence` drops anything
stale — counted in the ``recovery_fenced_messages_total`` metric and
surfaced as an ``epoch-fenced`` telemetry instant. A coordinator that was
isolated by a partition can therefore keep *believing* it leads, but
nothing it says after the heal is accepted: split-brain resolves at the
message boundary instead of requiring synchronized clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.errors import RecoveryError
from repro.telemetry.core import hub as telemetry_hub

#: Default lease duration (simulated seconds). An order of magnitude above
#: the ~0.6 ms median negotiation RPC, so healthy renewals never lapse,
#: but short enough that failover completes within one decision scan.
DEFAULT_LEASE_SECONDS = 0.005


@dataclass
class Lease:
    """One grant: ``holder`` leads epoch ``epoch`` until ``expires_at``."""

    holder: int
    epoch: int
    expires_at: float

    def expired(self, now: float) -> bool:
        """Whether the grant has lapsed at simulated time ``now``."""
        return now > self.expires_at


class CoordinatorLease:
    """Tracks the current grant and runs elections when it lapses."""

    def __init__(
        self,
        members: Iterable[int],
        rpc_latency: Callable[[np.random.Generator], float],
        rng: np.random.Generator,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ):
        members = sorted(members)
        if not members:
            raise RecoveryError("a lease needs at least one member")
        if lease_seconds <= 0:
            raise RecoveryError("lease duration must be positive")
        self.lease_seconds = lease_seconds
        self.rpc_latency = rpc_latency
        self.rng = rng
        #: The initial grant: lowest rank leads epoch 1 from t=0.
        self.lease = Lease(holder=members[0], epoch=1, expires_at=lease_seconds)
        self.elections = 0
        #: RPC latencies spent on renewals and takeovers (telemetry fodder).
        self.rpc_seconds_total = 0.0

    @property
    def holder(self) -> int:
        """The rank currently holding the lease."""
        return self.lease.holder

    @property
    def epoch(self) -> int:
        """The epoch of the current grant (monotonically increasing)."""
        return self.lease.epoch

    def renew(self, now: float) -> float:
        """Renew the incumbent's grant at ``now``; returns the RPC cost.

        Renewal is bookkeeping on the control channel: it consumes one
        modeled RPC (accounted, not simulated — the data path is never
        stalled by a healthy renewal) and pushes the expiry out to
        ``now + rpc + lease_seconds``.
        """
        cost = float(self.rpc_latency(self.rng))
        self.rpc_seconds_total += cost
        self.lease.expires_at = now + cost + self.lease_seconds
        return cost

    def elect(self, now: float, live: Iterable[int]) -> Lease:
        """Grant the next epoch to the lowest-ranked live worker.

        ``live`` are the ranks eligible to take over (the caller excludes
        the failed incumbent and any partitioned-away ranks). The election
        itself costs one takeover RPC.
        """
        candidates = sorted(set(live) - {self.lease.holder})
        if not candidates:
            raise RecoveryError("no live worker left to take over the lease")
        cost = float(self.rpc_latency(self.rng))
        self.rpc_seconds_total += cost
        self.lease = Lease(
            holder=candidates[0],
            epoch=self.lease.epoch + 1,
            expires_at=now + cost + self.lease_seconds,
        )
        self.elections += 1
        return self.lease


class EpochFence:
    """Drops stale-epoch messages and counts every drop.

    One fence per control plane; all coordinator↔worker message paths
    (ready reports, prepare-acks, work-queue submissions) funnel their
    epoch checks through :meth:`admit` so the
    ``recovery_fenced_messages_total`` metric is the single audit point
    for split-brain resolution.
    """

    def __init__(self) -> None:
        self.fenced = 0

    def admit(
        self,
        message_epoch: Optional[int],
        current_epoch: int,
        now: float,
        site: str,
        sender: Optional[int] = None,
    ) -> bool:
        """Whether a message composed under ``message_epoch`` is accepted.

        ``None`` means the sender is epoch-unaware (legacy path): always
        admitted. A stale epoch is dropped, counted, and reported as an
        ``epoch-fenced`` telemetry instant.
        """
        if message_epoch is None or message_epoch >= current_epoch:
            return True
        self.fenced += 1
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                "epoch-fenced",
                now,
                category="recovery",
                track="recovery",
                site=site,
                message_epoch=message_epoch,
                current_epoch=current_epoch,
                sender=sender,
            )
            telemetry.metrics.counter(
                "recovery_fenced_messages_total",
                "stale-epoch messages dropped at the fence",
            ).inc(site=site)
        return False
