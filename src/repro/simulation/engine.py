"""Core discrete-event engine: events, processes, and the simulator loop.

The engine follows the SimPy model. Simulated activities are Python
generators ("processes") that ``yield`` :class:`Event` objects; the
simulator resumes a process when the event it waits on triggers. Time only
advances between events, so a run is fully deterministic.

Three ideas cover everything in this module:

* :class:`Event` — a one-shot occurrence with a value (or an exception).
  Callbacks registered on the event fire when it is processed.
* :class:`Process` — an event that wraps a generator. It triggers when the
  generator returns (value = ``StopIteration`` value) or raises.
* :class:`Simulator` — the clock plus a priority queue of scheduled events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import ProcessInterrupt, SimulationError

#: Events scheduled with URGENT priority sort before NORMAL ones at the same
#: simulated time. The engine uses URGENT internally for process resumption
#: so that a process sees the world as it was when its event triggered.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event goes through three states: *pending* (created, not triggered),
    *triggered* (scheduled with a value, waiting in the queue), and
    *processed* (callbacks have run). ``succeed``/``fail`` move a pending
    event to triggered.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value and scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.sim._schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event will have the exception thrown into
        its generator.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.sim._schedule(self, priority=priority)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this makes late waiters safe.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        sim._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        self._triggered = True
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """An event wrapping a generator that yields events.

    The process triggers when the generator finishes; its value is the
    generator's return value. If the generator raises, the process fails
    with that exception (re-raised at ``Simulator.run`` unless some other
    process is waiting on it).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running
        #: or finished). Used by interrupt().
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not finished yet."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The process is rescheduled immediately; the event it was waiting on
        stays pending and may still be consumed later.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process that is not waiting")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupt(cause)
        interrupt_event._triggered = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=URGENT)
        # Detach from the original target so its trigger no longer resumes us.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome.

        Runs as a loop rather than recursing so that yielding a long chain
        of already-processed events (common in chunk pipelines) cannot blow
        the Python stack.
        """
        while True:
            self.sim._active_process = self
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self.sim._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self.sim._active_process = None
                self.fail(exc, priority=URGENT)
                return
            self.sim._active_process = None
            if not isinstance(next_event, Event):
                self._generator.close()
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, expected an Event"
                    ),
                    priority=URGENT,
                )
                return
            if next_event.processed:
                event = next_event  # already done: consume without recursing
                continue
            self._target = next_event
            next_event.add_callback(self._resume)
            return


class Simulator:
    """The simulation clock and event queue.

    All simulated objects hold a reference to their simulator and create
    events through it. ``run()`` processes events in (time, priority,
    insertion order) until the queue is empty or ``until`` is reached.
    """

    def __init__(self, batch_events: bool = True):
        self.now: float = 0.0
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Drain whole same-(time, priority) runs per :meth:`step` instead
        #: of one heap round-trip per event. Dispatch order is identical
        #: either way; ``False`` keeps the one-event-per-step reference
        #: behavior for differential testing.
        self.batch_events = batch_events

    # -- event creation -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting immediately."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event triggering when every event in ``events`` has succeeded."""
        from repro.simulation.primitives import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event triggering when any event in ``events`` triggers."""
        from repro.simulation.primitives import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def _dispatch(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks:
            # A failed event nobody waited on: surface the error.
            raise event._value

    def step(self) -> None:
        """Process the next event (and, batching, its same-instant run).

        With ``batch_events`` the contiguous run of queue entries sharing
        the head's (time, priority) is drained in one call, saving a heap
        round-trip per event. A dispatched callback may schedule something
        *more urgent* at the same instant (process resumptions are URGENT,
        scheduled from NORMAL callbacks); the undispatched remainder is
        then pushed back — original sequence numbers restore exact heap
        order — so dispatch order stays identical to unbatched stepping.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        queue = self._queue
        entry = heapq.heappop(queue)
        time, priority = entry[0], entry[1]
        if time < self.now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self.now = max(self.now, time)
        if not self.batch_events:
            self._dispatch(entry[3])
            return
        batch = [entry]
        while queue and queue[0][0] == time and queue[0][1] == priority:
            batch.append(heapq.heappop(queue))
        for index, entry in enumerate(batch):
            try:
                self._dispatch(entry[3])
            except BaseException:
                for rest in batch[index + 1:]:
                    heapq.heappush(queue, rest)
                raise
            if queue and (queue[0][0], queue[0][1]) < (time, priority):
                for rest in batch[index + 1:]:
                    heapq.heappush(queue, rest)
                return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if no event falls on it.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        while self._queue:
            if until is not None and self.peek() > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue empties (deadlock) or the
        clock passes ``limit`` first.
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: event queue empty at t={self.now} before {event!r}"
                )
            if self.peek() > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {event!r}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
