"""Fig. 16 — GPT-2 training throughput vs batch size.

The paper sweeps the local batch size and reports AdapCC's throughput
improvement over NCCL growing with the batch — larger batches increase
compute-time variance among workers, which the adaptive relay control
converts into overlap (up to 31 % for GPT-2).

Reproduction note: AdapCC stays ahead at every batch size, but the trend
is reversed here — our fluid model's near-perfect reduce/broadcast overlap
makes relay control break-even (EXPERIMENTS.md), so the advantage is a
constant communication speedup that larger (more compute-bound) batches
dilute.
"""

import pytest

from repro.bench import Series, measure_training
from repro.hardware import make_hetero_cluster
from repro.training import GPT2
from repro.training.trainer import TrainerConfig

BATCHES = [8, 16, 32]
ITERATIONS = 6


def measure():
    results = {}
    for batch in BATCHES:
        for backend in ("adapcc", "nccl"):
            report = measure_training(
                make_hetero_cluster(num_a100=2, num_v100=2),
                backend,
                GPT2,
                TrainerConfig(
                    iterations=ITERATIONS, batch=batch, seed=29, jitter_sigma=0.08
                ),
            )
            results[(batch, backend)] = report.throughput
    return results


def test_fig16_gpt2_throughput_vs_batch(run_once):
    results = run_once(measure)

    series = Series(
        "Fig. 16 — GPT-2 training throughput vs local batch size (hetero)",
        "batch",
        "samples/s",
    )
    series.set_x(BATCHES)
    series.add("adapcc", [results[(b, "adapcc")] for b in BATCHES])
    series.add("nccl", [results[(b, "nccl")] for b in BATCHES])
    series.add(
        "speedup", [results[(b, "adapcc")] / results[(b, "nccl")] for b in BATCHES]
    )
    series.render()
    series.show()
    gains = {b: results[(b, "adapcc")] / results[(b, "nccl")] for b in BATCHES}
    print(f"throughput gains by batch: {gains} (paper: up to 31 %)")

    # Shape: AdapCC ahead at every batch size.
    assert all(g > 1.0 for g in gains.values())
    # Throughput grows with batch for both systems (compute amortization).
    assert results[(32, "adapcc")] > results[(8, "adapcc")]
