"""Trace-driven link shaping — the simulator's ``tc`` equivalent.

The paper replays a cloud trace onto testbed NICs with ``tc`` on each
server (Sec. VI-D). :class:`TraceShaper` does the same to the simulated
cluster: a background process samples a :class:`~repro.network.traces.CloudTrace`
every ``interval`` simulated seconds and rewrites NIC capacities.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.network.traces import CloudTrace
from repro.simulation.records import TraceRecorder


class TraceShaper:
    """Applies a (possibly amplified) cloud trace to instance NICs.

    Each shaped instance gets its own time offset into the trace so the
    servers do not move in lockstep (as they would not in a real cluster).
    """

    def __init__(
        self,
        cluster: Cluster,
        trace: CloudTrace,
        interval: float = 10.0,
        amplification: float = 1.0,
        instance_ids: Optional[Sequence[int]] = None,
        offsets: Optional[Sequence[float]] = None,
        recorder: Optional[TraceRecorder] = None,
    ):
        self.cluster = cluster
        self.trace = trace.amplified(amplification) if amplification != 1.0 else trace
        self.interval = interval
        self.instance_ids = (
            list(instance_ids)
            if instance_ids is not None
            else list(range(len(cluster.instances)))
        )
        if offsets is None:
            # Deterministic stagger: spread instances across the trace.
            stride = self.trace.duration / max(1, len(self.instance_ids))
            offsets = [i * stride * 0.13 for i in range(len(self.instance_ids))]
        if len(offsets) != len(self.instance_ids):
            raise ValueError("offsets must match instance_ids")
        self.offsets = list(offsets)
        self.recorder = recorder
        self._running = False

    def start(self) -> None:
        """Begin shaping; call before or during a simulation run."""
        if self._running:
            return
        self._running = True
        self.cluster.sim.process(self._run(), name="trace-shaper")

    def stop(self) -> None:
        """Stop shaping and restore nominal bandwidths at the next tick."""
        self._running = False

    def _run(self):
        sim = self.cluster.sim
        while self._running:
            for instance_id, offset in zip(self.instance_ids, self.offsets):
                t = (sim.now + offset) % max(self.trace.duration, 1e-9)
                fraction = self.trace.bandwidth_fraction(t)
                nominal = self.cluster.nominal_nic_bandwidth(instance_id)
                self.cluster.set_nic_bandwidth(instance_id, nominal * fraction)
                if self.recorder is not None:
                    self.recorder.record(
                        sim.now,
                        "shaping",
                        f"instance{instance_id}",
                        bandwidth_fraction=fraction,
                    )
            yield sim.timeout(self.interval)
        for instance_id in self.instance_ids:
            self.cluster.set_nic_bandwidth(
                instance_id, self.cluster.nominal_nic_bandwidth(instance_id)
            )
