"""Per-worker compute-time model with realistic skew.

Tensor computation does not finish simultaneously across workers
(Sec. II-C): even homogeneous GPUs show per-iteration jitter, and
heterogeneous SKUs differ systematically. The model:

``t_worker = base(GPU SKU, batch) × lognormal(σ) × straggle × interference``

* the lognormal captures the ordinary per-iteration jitter (Fig. 3b's
  homogeneous tail),
* occasional *straggle spikes* (probability ``straggle_prob``, magnitude
  uniform in ``straggle_range``) capture page faults / dataloader stalls,
* an external interference multiplier (see
  :mod:`repro.training.interference`) captures co-located workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import TrainingError
from repro.hardware.cluster import Cluster
from repro.training.models import ModelSpec


@dataclass
class ComputeModel:
    """Draws per-iteration compute times for every worker."""

    cluster: Cluster
    model: ModelSpec
    batch: int
    jitter_sigma: float = 0.06
    straggle_prob: float = 0.04
    straggle_low: float = 1.3
    straggle_high: float = 2.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise TrainingError("batch must be >= 1")
        if not 0 <= self.straggle_prob <= 1:
            raise TrainingError("straggle probability must be in [0, 1]")
        if self.jitter_sigma < 0:
            raise TrainingError("jitter sigma must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def base_seconds(self, rank: int) -> float:
        """Noise-free compute time for one worker."""
        gpu = self.cluster.gpu(rank)
        return self.model.compute_seconds(self.batch, gpu.spec.compute_flops)

    def draw(
        self, interference: Optional[Dict[int, float]] = None
    ) -> Dict[int, float]:
        """One iteration's compute time per rank.

        ``interference`` maps rank → multiplicative slowdown (≥ 1).
        """
        times: Dict[int, float] = {}
        for gpu in self.cluster.gpus:
            t = self.base_seconds(gpu.rank)
            if self.jitter_sigma > 0:
                t *= float(self._rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
            if self._rng.random() < self.straggle_prob:
                t *= float(self._rng.uniform(self.straggle_low, self.straggle_high))
            if interference:
                factor = interference.get(gpu.rank, 1.0)
                if factor < 1.0:
                    raise TrainingError("interference slowdown must be >= 1")
                t *= factor
            times[gpu.rank] = t
        return times

    def skew_ratio(self, times: Dict[int, float]) -> float:
        """(slowest - fastest) / fastest, a per-iteration skew summary."""
        values = list(times.values())
        fastest = min(values)
        return (max(values) - fastest) / fastest if fastest > 0 else 0.0
