"""Critical-path extraction and bottleneck attribution (DESIGN.md §12).

The executor's chunk pipelines already export one ``…:send`` span per
(stage, link, traffic-unit, chunk) — the same spans the ``--races`` pass
replays against the strategy-derived chunk-dependency DAG. This module
joins those spans back into a per-run execution DAG, walks the critical
path on sim-clock timings, and attributes the elapsed time to links,
ranks, and pipeline stages with slack analysis — the "where did the time
go?" answer the watchdog needs to target its re-probes.

Two join modes:

* **dag** — a :class:`~repro.synthesis.strategy.Strategy` is available:
  spans join to :func:`repro.analysis.race.derive_chunk_dag` senders by
  ``(tag, track, unit)`` exactly as the race detector does, and the DAG's
  AND-groups (OR within a group: whichever copy of a unit *ends* first
  releases the slot) become edges. Repeated executions of the same
  strategy (training iterations) match by occurrence index.
* **inferred** — no strategy: edges are inferred from the spans alone.
  The same sender's chunk ``k-1 → k`` serializes; a cross-link handoff
  edge joins the latest-ending producer of the same ``(tag, unit,
  chunk)`` into a consumer's source endpoint.

In both modes a node left without predecessors is *stitched* to the
latest-ending span that closed at or before its start. In a
work-conserving executor that span is exactly what released it — a stage
boundary, the previous iteration's tail — and the gap between them is
*wait time* attributed to the stitched node's source (how stragglers
surface: a delayed rank's first send starts long after everything else
went quiet).

Everything is computed from sim-clock timestamps only and serialized
with sorted keys, so same-seed runs produce byte-identical reports.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Version stamp carried by every report; bump on breaking changes.
REPORT_SCHEMA = 1

#: Report envelope type tag.
REPORT_KIND = "critpath_report"

#: Per-span slack when comparing simulator timestamps (matches the race
#: detector's tolerance).
TIME_TOL = 1e-9


@dataclass(frozen=True)
class ChunkSpan:
    """One chunk-pipeline ``…:send`` span: a node of the execution DAG."""

    tag: str
    track: str
    unit: str
    chunk: int
    start: float
    end: float
    #: Position among extracted spans, in file order — the deterministic
    #: tiebreak for every choice the engine makes.
    order: int
    bytes: float = 0.0

    @property
    def link(self) -> str:
        """The ``"g0->n1"``-style link name (track minus the prefix)."""
        if self.track.startswith("link:"):
            return self.track[len("link:"):]
        return self.track

    @property
    def src(self) -> str:
        """Source endpoint node name (``""`` for non-link tracks)."""
        link = self.link
        return link.split("->", 1)[0] if "->" in link else ""

    @property
    def dst(self) -> str:
        """Destination endpoint node name (``""`` for non-link tracks)."""
        link = self.link
        return link.split("->", 1)[1] if "->" in link else ""

    @property
    def stage(self) -> str:
        """Pipeline stage: the tag up to the sub-collective suffix."""
        return self.tag.split(":", 1)[0]

    @property
    def duration(self) -> float:
        return self.end - self.start


def extract_chunk_spans(records: Sequence[Dict[str, Any]]) -> List[ChunkSpan]:
    """The chunk ``…:send`` spans of a record stream, in file order."""
    spans: List[ChunkSpan] = []
    for record in records:
        if record.get("type") != "span" or record.get("cat") != "chunk":
            continue
        name = record.get("name", "")
        if not name.endswith(":send"):
            continue
        end = record.get("end")
        if end is None:
            continue
        args = record.get("args", {})
        chunk = int(args.get("chunk", -1))
        if chunk < 0:
            continue
        spans.append(
            ChunkSpan(
                tag=name[: -len(":send")],
                track=record.get("track", ""),
                unit=str(args.get("unit", "")),
                chunk=chunk,
                start=float(record["start"]),
                end=float(end),
                order=len(spans),
                bytes=float(args.get("bytes", 0.0)),
            )
        )
    return spans


# -- DAG construction -----------------------------------------------------------------


def _end_key(spans: Sequence[ChunkSpan], index: int) -> Tuple[float, float, int]:
    span = spans[index]
    return (span.end, span.start, span.order)


def _dag_predecessors(
    spans: Sequence[ChunkSpan], strategy
) -> List[List[int]]:
    """Edges from the strategy-derived chunk DAG, matched by occurrence.

    ``slots[sender][chunk]`` lists span indices in file order; the o-th
    occurrence of every sender's chunk belongs to the o-th execution of
    the strategy, so repeated iterations line up without any iteration
    label on the spans.
    """
    from repro.analysis.race import derive_chunk_dag

    graph = derive_chunk_dag(strategy)
    wanted = {(s.tag, s.track, s.unit): s for s in graph.senders}
    slots: Dict[Any, Dict[int, List[int]]] = {}
    for index, span in enumerate(spans):
        sender = wanted.get((span.tag, span.track, span.unit))
        if sender is None:
            continue
        slots.setdefault(sender, {}).setdefault(span.chunk, []).append(index)

    preds: List[List[int]] = [[] for _ in spans]
    for sender, chunks in slots.items():
        for chunk, occurrences in chunks.items():
            prior = chunks.get(chunk - 1, [])
            for occurrence, index in enumerate(occurrences):
                if occurrence < len(prior):
                    preds[index].append(prior[occurrence])
                for group in graph.preds[sender]:
                    candidates = [
                        slots[p][chunk][occurrence]
                        for p in group
                        if occurrence < len(slots.get(p, {}).get(chunk, []))
                    ]
                    if candidates:
                        # The slot is released by whichever group member
                        # ends first — the race detector's rule.
                        preds[index].append(
                            min(candidates, key=lambda i: _end_key(spans, i))
                        )
    return preds


def _inferred_predecessors(
    spans: Sequence[ChunkSpan], tol: float
) -> List[List[int]]:
    """Edges inferred from the spans alone (no strategy available)."""
    by_sender: Dict[Tuple[str, str, str], Dict[int, List[int]]] = {}
    by_unit: Dict[Tuple[str, str, int], List[int]] = {}
    for index, span in enumerate(spans):
        by_sender.setdefault(
            (span.tag, span.track, span.unit), {}
        ).setdefault(span.chunk, []).append(index)
        by_unit.setdefault((span.tag, span.unit, span.chunk), []).append(index)

    preds: List[List[int]] = [[] for _ in spans]
    for index, span in enumerate(spans):
        chunks = by_sender[(span.tag, span.track, span.unit)]
        occurrence = chunks[span.chunk].index(index)
        prior = chunks.get(span.chunk - 1, [])
        if occurrence < len(prior):
            preds[index].append(prior[occurrence])
        producers = [
            j
            for j in by_unit.get((span.tag, span.unit, span.chunk), [])
            if j != index
            and spans[j].dst == span.src
            and spans[j].end <= span.start + tol
        ]
        if producers:
            # The binding handoff: the latest producer that could have
            # released this send.
            preds[index].append(max(producers, key=lambda j: _end_key(spans, j)))
    return preds


def _stitch_orphans(
    spans: Sequence[ChunkSpan], preds: List[List[int]], tol: float
) -> int:
    """Give every predecessor-less node the latest span ending by its start.

    Returns the number of stitched edges. Stitches are what carry the
    path across stage boundaries, iteration boundaries, and straggler
    readiness waits — see the module docstring.
    """
    order_by_end = sorted(range(len(spans)), key=lambda i: _end_key(spans, i))
    ends = [spans[i].end for i in order_by_end]
    stitched = 0
    for index, span in enumerate(spans):
        if preds[index]:
            continue
        position = bisect.bisect_right(ends, span.start + tol)
        for k in range(position - 1, -1, -1):
            j = order_by_end[k]
            if j != index and spans[j].end <= span.start + tol:
                preds[index].append(j)
                stitched += 1
                break
    return stitched


# -- critical path, waits, slack ------------------------------------------------------


def _walk_critical_path(
    spans: Sequence[ChunkSpan], preds: Sequence[Sequence[int]]
) -> List[int]:
    """Backward walk from the latest-ending span along binding edges.

    The binding predecessor of a node is the one that *ends last* — the
    constraint that actually held the node's start back. Returns indices
    in chronological order.
    """
    if not spans:
        return []
    current = max(range(len(spans)), key=lambda i: _end_key(spans, i))
    path = [current]
    visited = {current}
    while preds[current]:
        binding = max(preds[current], key=lambda i: _end_key(spans, i))
        if binding in visited:  # paranoia: zero-duration tie cycles
            break
        path.append(binding)
        visited.add(binding)
        current = binding
    path.reverse()
    return path


def _slack_seconds(
    spans: Sequence[ChunkSpan],
    preds: Sequence[Sequence[int]],
    makespan_end: float,
) -> List[float]:
    """Per-node slack: how late each span could end without moving the
    makespan, via the reverse DP ``latest_allowed_end(n) = min over
    successors s of (latest_allowed_end(s) - duration(s))``."""
    count = len(spans)
    succs: List[List[int]] = [[] for _ in range(count)]
    pending = [0] * count  # successors not yet resolved
    for index in range(count):
        for pred in preds[index]:
            succs[pred].append(index)
            pending[pred] += 1
    latest = [makespan_end] * count
    ready = [i for i in range(count) if pending[i] == 0]
    while ready:
        index = ready.pop()
        allowed = makespan_end
        for succ in succs[index]:
            allowed = min(allowed, latest[succ] - spans[succ].duration)
        latest[index] = allowed
        for pred in preds[index]:
            pending[pred] -= 1
            if pending[pred] == 0:
                ready.append(pred)
    # Nodes left pending would sit on a (degenerate) cycle: call them
    # critical rather than crash.
    return [
        max(0.0, latest[i] - spans[i].end) if pending[i] == 0 else 0.0
        for i in range(count)
    ]


def _rank_of(node_name: str) -> Optional[int]:
    """GPU node name → rank (``"g3"`` → 3); None for NICs/unknowns."""
    if len(node_name) >= 2 and node_name[0] == "g" and node_name[1:].isdigit():
        return int(node_name[1:])
    return None


def extract_readiness(records: Sequence[Dict[str, Any]]) -> List[Dict[int, float]]:
    """Per-decision ready delays from ``ski-rental-decision`` instants.

    A straggler's delay happens *before* its first send, so it never shows
    up as a span — but the coordinator's decision instants carry every
    rank's ready delay. Returns one ``{rank: delay_seconds}`` mapping per
    decision, in file order.
    """
    out: List[Dict[int, float]] = []
    for record in records:
        if record.get("type") != "event":
            continue
        if record.get("name") != "ski-rental-decision":
            continue
        delays = {
            int(rank): float(delay)
            for rank, delay in (record.get("args", {}).get("ready_delays") or {}).items()
            if delay is not None
        }
        if delays:
            out.append(delays)
    return out


def _readiness_excess(readiness: Sequence[Dict[int, float]]) -> Dict[int, float]:
    """Per-rank readiness seconds in excess of each decision's median.

    The same excess-over-median rule the watchdog's straggler detector
    applies (in raw seconds rather than buy-cost units), summed across
    decisions.
    """
    excess: Dict[int, float] = {}
    for delays in readiness:
        ordered = sorted(delays.values())
        median = ordered[len(ordered) // 2]
        for rank, delay in delays.items():
            late = delay - median
            if late > 0.0:
                excess[rank] = excess.get(rank, 0.0) + late
    return excess


# -- the report -----------------------------------------------------------------------


def analyze_spans(
    spans: Sequence[ChunkSpan],
    strategy=None,
    tol: float = TIME_TOL,
    readiness: Sequence[Dict[int, float]] = (),
) -> Dict[str, Any]:
    """Critical path + attribution over extracted chunk spans.

    Returns the JSON-able report dict (see DESIGN.md §12 for the schema).
    With ``strategy`` the execution DAG comes from the strategy's chunk
    dependencies (mode ``"dag"``); without, it is inferred from the spans
    (mode ``"inferred"``). Either way the report's ``path`` tiles
    ``[start_seconds, end_seconds]`` exactly: busy segments are the
    critical spans, wait segments the gaps before them.

    ``readiness`` (per-decision ``{rank: delay_seconds}`` mappings, see
    :func:`extract_readiness`) attributes pre-send straggler delays —
    invisible to spans — to the late rank and its egress link as
    ``readiness_seconds``, which count toward the top-1 pick.
    """
    spans = list(spans)
    report: Dict[str, Any] = {
        "kind": REPORT_KIND,
        "schema": REPORT_SCHEMA,
        "clock": "sim",
        "mode": "dag" if strategy is not None else "inferred",
        "span_count": len(spans),
    }
    if not spans:
        report.update(
            start_seconds=0.0, end_seconds=0.0, total_seconds=0.0,
            busy_seconds=0.0, wait_seconds=0.0, overlap_seconds=0.0,
            readiness_seconds=0.0, inferred_edges=0, path=[], links={},
            ranks={}, stages={}, top_link=None, top_rank=None,
        )
        return report

    if strategy is not None:
        preds = _dag_predecessors(spans, strategy)
    else:
        preds = _inferred_predecessors(spans, tol)
    report["inferred_edges"] = _stitch_orphans(spans, preds, tol)

    start_seconds = min(span.start for span in spans)
    end_seconds = max(span.end for span in spans)
    total = end_seconds - start_seconds
    path = _walk_critical_path(spans, preds)
    slack = _slack_seconds(spans, preds, end_seconds)

    # Tile [start_seconds, end_seconds] with wait/busy segments along the
    # path. Overlaps (a span starting before its binding predecessor
    # ended — a race the ``--races`` pass would flag) are clamped and
    # totalled so the durations still sum.
    segments: List[Dict[str, Any]] = []
    busy_total = wait_total = overlap_total = 0.0
    cursor = start_seconds
    for index in path:
        span = spans[index]
        if span.start > cursor + tol:
            wait = span.start - cursor
            segments.append(
                {
                    "kind": "wait",
                    "link": span.link,
                    "source": span.src,
                    "start": cursor,
                    "end": span.start,
                    "seconds": wait,
                }
            )
            wait_total += wait
            cursor = span.start
        elif span.start < cursor - tol:
            overlap_total += cursor - span.start
        busy_start = max(cursor, span.start)
        busy = max(0.0, span.end - busy_start)
        segments.append(
            {
                "kind": "span",
                "tag": span.tag,
                "link": span.link,
                "unit": span.unit,
                "chunk": span.chunk,
                "start": busy_start,
                "end": span.end,
                "seconds": busy,
                "slack_seconds": slack[index],
            }
        )
        busy_total += busy
        cursor = max(cursor, span.end)

    # Attribution: wait segments charge the waiting span's link/source
    # (that is where readiness was missing); busy segments charge their
    # own link, stage, and both GPU endpoints.
    links: Dict[str, Dict[str, Any]] = {}
    ranks: Dict[str, Dict[str, Any]] = {}
    stages: Dict[str, Dict[str, Any]] = {}

    def _link_entry(link: str) -> Dict[str, Any]:
        return links.setdefault(
            link,
            {
                "critical_seconds": 0.0,
                "wait_seconds": 0.0,
                "readiness_seconds": 0.0,
                "share": 0.0,
                "spans": 0,
                "critical_spans": 0,
                "min_slack_seconds": None,
            },
        )

    def _rank_entry(rank: int) -> Dict[str, Any]:
        return ranks.setdefault(
            f"rank{rank}",
            {
                "critical_seconds": 0.0,
                "wait_seconds": 0.0,
                "readiness_seconds": 0.0,
                "share": 0.0,
            },
        )

    for span, node_slack in zip(spans, slack):
        entry = _link_entry(span.link)
        entry["spans"] += 1
        if entry["min_slack_seconds"] is None or node_slack < entry["min_slack_seconds"]:
            entry["min_slack_seconds"] = node_slack

    for segment in segments:
        entry = _link_entry(segment["link"])
        if segment["kind"] == "wait":
            entry["wait_seconds"] += segment["seconds"]
            rank = _rank_of(segment["source"])
            if rank is not None:
                _rank_entry(rank)["wait_seconds"] += segment["seconds"]
            continue
        entry["critical_seconds"] += segment["seconds"]
        entry["critical_spans"] += 1
        stage = stages.setdefault(
            segment["tag"].split(":", 1)[0],
            {"critical_seconds": 0.0, "share": 0.0, "spans": 0},
        )
        stage["critical_seconds"] += segment["seconds"]
        stage["spans"] += 1
        link = segment["link"]
        if "->" in link:
            src, dst = link.split("->", 1)
            for endpoint in (src, dst):
                rank = _rank_of(endpoint)
                if rank is not None:
                    _rank_entry(rank)["critical_seconds"] += segment["seconds"]

    # Readiness excess precedes the late rank's first send, so it charges
    # the rank itself and — deterministically — its smallest egress link
    # among the observed spans (the path its late tensor leaves on).
    egress: Dict[int, str] = {}
    for span in spans:
        rank = _rank_of(span.src)
        if rank is None:
            continue
        if rank not in egress or span.link < egress[rank]:
            egress[rank] = span.link
    readiness_total = 0.0
    for rank, seconds in sorted(_readiness_excess(readiness).items()):
        readiness_total += seconds
        _rank_entry(rank)["readiness_seconds"] += seconds
        link = egress.get(rank)
        if link is not None:
            _link_entry(link)["readiness_seconds"] += seconds

    for entry in links.values():
        entry["share"] = (
            (entry["critical_seconds"] + entry["wait_seconds"]) / total
            if total > 0
            else 0.0
        )
    for entry in ranks.values():
        entry["share"] = (
            (entry["critical_seconds"] + entry["wait_seconds"]) / total
            if total > 0
            else 0.0
        )
    for entry in stages.values():
        entry["share"] = entry["critical_seconds"] / total if total > 0 else 0.0

    def _top(table: Dict[str, Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        scored = [
            (
                entry["critical_seconds"]
                + entry.get("wait_seconds", 0.0)
                + entry.get("readiness_seconds", 0.0),
                name,
            )
            for name, entry in table.items()
        ]
        if not scored:
            return None
        seconds, name = max(scored, key=lambda item: (item[0], item[1]))
        return {
            "name": name,
            "seconds": seconds,
            "share": seconds / total if total > 0 else 0.0,
        }

    report.update(
        start_seconds=start_seconds,
        end_seconds=end_seconds,
        total_seconds=total,
        busy_seconds=busy_total,
        wait_seconds=wait_total,
        overlap_seconds=overlap_total,
        readiness_seconds=readiness_total,
        path=segments,
        links=links,
        ranks=ranks,
        stages=stages,
        top_link=_top(links),
        top_rank=_top(ranks),
    )
    return report


def analyze_run(run, strategy=None, tol: float = TIME_TOL) -> Dict[str, Any]:
    """Analyze a parsed :class:`~repro.telemetry.export.TelemetryRun`."""
    return analyze_spans(
        extract_chunk_spans(run.records),
        strategy=strategy,
        tol=tol,
        readiness=extract_readiness(run.records),
    )


def report_to_json(report: Dict[str, Any]) -> str:
    """The report as canonical JSON text (byte-identical per seed)."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def render_report(report: Dict[str, Any], top: int = 5) -> str:
    """Human-readable summary of a critpath report."""
    lines = [
        f"critical path over {report['span_count']} chunk spans "
        f"({report['mode']} DAG, {report.get('inferred_edges', 0)} stitched "
        "edge(s))",
        f"  window  : {report['start_seconds']:.6f}s -> "
        f"{report['end_seconds']:.6f}s ({report['total_seconds']:.6f}s)",
        f"  on path : busy {report['busy_seconds']:.6f}s, "
        f"wait {report['wait_seconds']:.6f}s",
    ]
    if report.get("readiness_seconds", 0.0) > 0.0:
        lines.append(
            f"  readiness: {report['readiness_seconds']:.6f}s of straggler "
            "excess (pre-send, charged to the late ranks)"
        )
    top_link = report.get("top_link")
    if top_link:
        lines.append(
            f"  top link: {top_link['name']} carries "
            f"{top_link['share'] * 100:.1f}% of the critical path "
            f"({top_link['seconds']:.6f}s)"
        )
    top_rank = report.get("top_rank")
    if top_rank:
        lines.append(
            f"  top rank: {top_rank['name']} "
            f"({top_rank['share'] * 100:.1f}%, {top_rank['seconds']:.6f}s)"
        )
    ordered = sorted(
        report.get("links", {}).items(),
        key=lambda item: (
            -(item[1]["critical_seconds"] + item[1]["wait_seconds"]),
            item[0],
        ),
    )
    if ordered:
        lines.append("  links (critical + wait seconds, min slack):")
        for name, entry in ordered[:top]:
            slack_text = (
                f"{entry['min_slack_seconds']:.6f}s"
                if entry["min_slack_seconds"] is not None
                else "-"
            )
            lines.append(
                f"    {name:<14} {entry['critical_seconds']:.6f}s + "
                f"{entry['wait_seconds']:.6f}s  ({entry['share'] * 100:5.1f}%)"
                f"  slack {slack_text}"
            )
    ordered_stages = sorted(
        report.get("stages", {}).items(),
        key=lambda item: (-item[1]["critical_seconds"], item[0]),
    )
    if ordered_stages:
        lines.append("  stages:")
        for name, entry in ordered_stages:
            lines.append(
                f"    {name:<14} {entry['critical_seconds']:.6f}s "
                f"({entry['share'] * 100:5.1f}%, {entry['spans']} span(s))"
            )
    return "\n".join(lines) + "\n"
