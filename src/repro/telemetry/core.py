"""Zero-dependency tracing core: spans, tracer, and the process-wide hub.

Observability for the whole reproduction hangs off one
:class:`TelemetryHub`: a :class:`Tracer` collecting :class:`Span` records
and instant events, plus a :class:`~repro.telemetry.metrics.MetricsRegistry`.
The hub is a **no-op unless enabled** — every instrumentation site guards
on ``hub.enabled`` (a single attribute read) before building spans or
argument dicts, so the chunk-pipeline hot path pays nothing by default.

Timestamps are *explicit*: callers pass the simulator clock (``sim.now``)
or, for offline bookkeeping, any monotonic float. The tracer never reads
the host wall clock itself, which is what makes same-seed runs export
byte-identical traces (see ``tests/test_telemetry.py``).

Span ids are hierarchical dotted strings (``"3"``, ``"3.1"``, ``"3.1.2"``):
a child's id extends its parent's, so exporters and the ``--telemetry``
lint can check nesting without reconstructing a tree.

Enable telemetry with the ``REPRO_TELEMETRY=1`` environment variable or
``AdapCCSession(telemetry=True)``; capture programmatically by installing
your own hub with :func:`set_hub`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry

#: Environment variable that switches the default hub on.
ENV_TELEMETRY = "REPRO_TELEMETRY"

_FALSEY = {"", "0", "false", "no", "off"}


def telemetry_enabled() -> bool:
    """Whether the environment asks for telemetry (``REPRO_TELEMETRY``)."""
    env = os.environ.get(ENV_TELEMETRY)
    return env is not None and env.strip().lower() not in _FALSEY


class Span:
    """One named interval (or instant) on one track.

    ``end`` is ``None`` while the span is open; instants have
    ``end == start``. ``track`` names the timeline the span belongs to
    (one per rank/link/subsystem — Chrome-trace threads).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "track",
        "start",
        "end",
        "args",
        "seq",
        "_child_count",
    )

    def __init__(
        self,
        span_id: str,
        name: str,
        start: float,
        *,
        category: str = "",
        track: str = "",
        parent_id: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        seq: int = 0,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.args: Dict[str, Any] = args or {}
        self.seq = seq
        self._child_count = 0

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.3g}s"
        return f"<Span {self.span_id} {self.name!r} on {self.track!r} {state}>"


class Tracer:
    """Append-only collector of spans and instant events."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[Span] = []
        self._root_count = 0
        self._seq = 0

    # -- creation -------------------------------------------------------------

    def _next_id(self, parent: Optional[Span]) -> str:
        if parent is None:
            self._root_count += 1
            return str(self._root_count)
        parent._child_count += 1
        return f"{parent.span_id}.{parent._child_count}"

    def begin(
        self,
        name: str,
        start: float,
        *,
        category: str = "",
        track: str = "",
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Open a span at ``start`` (explicit clock; usually ``sim.now``)."""
        self._seq += 1
        span = Span(
            self._next_id(parent),
            name,
            start,
            category=category,
            track=track,
            parent_id=None if parent is None else parent.span_id,
            args=args,
            seq=self._seq,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, end: float) -> Span:
        """Close ``span`` at ``end``; rejects double-closes and time travel."""
        if span.end is not None:
            raise TelemetryError(f"span {span.span_id} already closed")
        if end < span.start:
            raise TelemetryError(
                f"span {span.span_id} would end at {end} before its start {span.start}"
            )
        span.end = end
        return span

    def instant(
        self,
        name: str,
        ts: float,
        *,
        category: str = "",
        track: str = "",
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Record a zero-duration event at ``ts``."""
        self._seq += 1
        event = Span(
            self._next_id(parent),
            name,
            ts,
            category=category,
            track=track,
            parent_id=None if parent is None else parent.span_id,
            args=args,
            seq=self._seq,
        )
        event.end = ts
        self.events.append(event)
        return event

    # -- inspection -----------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (should be empty after a run)."""
        return [s for s in self.spans if s.end is None]

    def of_category(self, category: str) -> List[Span]:
        """All spans with the given category, in begin order."""
        return [s for s in self.spans if s.category == category]

    def events_named(self, name: str) -> List[Span]:
        """All instant events with the given name, in emission order."""
        return [e for e in self.events if e.name == name]

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


class TelemetryConsumer:
    """Base class for live subscribers to a hub's record stream.

    Exporters read a hub *after* a run; a consumer sees each record the
    moment it is complete — closed spans via :meth:`on_span`, instants via
    :meth:`on_event` — which is what lets the observe watchdog maintain
    rolling statistics online instead of re-parsing exports. Consumers
    never see open spans (a span is streamed only once its ``end`` is
    known) and are never called while the hub is disabled.
    """

    def on_span(self, span: Span) -> None:
        """One span, delivered at the instant it closes."""

    def on_event(self, event: Span) -> None:
        """One instant event, delivered as it is recorded."""


class TelemetryHub:
    """One process-wide bundle of tracer + metrics behind an enable flag.

    All recording entry points return early when disabled; call sites on
    hot paths additionally guard with ``if hub.enabled`` so they never
    build the argument dict at all.
    """

    def __init__(
        self,
        enabled: bool = False,
        labels: Optional[Dict[str, str]] = None,
    ):
        self.enabled = bool(enabled)
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        #: Labels stamped onto every exported record (``{}`` = no-op).
        #: Fleet replay tags per-job hubs with ``{"job": name}`` so merged
        #: streams stay attributable without touching span ids.
        self.labels: Dict[str, str] = dict(labels or {})
        #: Live streaming consumers (see :class:`TelemetryConsumer`).
        self._consumers: List[TelemetryConsumer] = []

    # -- streaming subscriptions -----------------------------------------------

    def subscribe(self, consumer: TelemetryConsumer) -> TelemetryConsumer:
        """Attach a live consumer to the record stream (idempotent)."""
        if not hasattr(consumer, "on_span") or not hasattr(consumer, "on_event"):
            raise TelemetryError(
                f"subscribe() needs a TelemetryConsumer-shaped object, "
                f"got {type(consumer).__name__}"
            )
        if consumer not in self._consumers:
            self._consumers.append(consumer)
        return consumer

    def unsubscribe(self, consumer: TelemetryConsumer) -> None:
        """Detach a consumer; unknown consumers are ignored."""
        try:
            self._consumers.remove(consumer)
        except ValueError:
            pass

    @property
    def consumers(self) -> List[TelemetryConsumer]:
        """The currently subscribed consumers (copy)."""
        return list(self._consumers)

    # -- switches -------------------------------------------------------------

    def enable(self) -> "TelemetryHub":
        """Turn recording on (idempotent)."""
        self.enabled = True
        return self

    def disable(self) -> "TelemetryHub":
        """Turn recording off; already-collected data is kept."""
        self.enabled = False
        return self

    def reset(self) -> "TelemetryHub":
        """Drop all collected spans, events, and metrics (consumers stay)."""
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        return self

    # -- recording (no-ops when disabled) -------------------------------------

    def begin(self, name: str, start: float, **kwargs: Any) -> Optional[Span]:
        """Open a span, or return ``None`` when disabled."""
        if not self.enabled:
            return None
        return self.tracer.begin(name, start, **kwargs)

    def end(self, span: Optional[Span], end: float) -> None:
        """Close a span returned by :meth:`begin` (``None`` is ignored)."""
        if span is not None:
            self.tracer.end(span, end)
            # Snapshot: a consumer that (un)subscribes during dispatch must
            # not make its neighbours skip or double-receive this record,
            # and a consumer subscribed mid-dispatch must not see it.
            for consumer in tuple(self._consumers):
                consumer.on_span(span)

    def instant(self, name: str, ts: float, **kwargs: Any) -> Optional[Span]:
        """Record an instant event, or return ``None`` when disabled."""
        if not self.enabled:
            return None
        event = self.tracer.instant(name, ts, **kwargs)
        for consumer in tuple(self._consumers):
            consumer.on_event(event)
        return event


#: The process-wide hub (created lazily so the env var is read on first use).
_HUB: Optional[TelemetryHub] = None


def hub() -> TelemetryHub:
    """The process-wide hub, created on first use.

    The initial enabled state comes from ``REPRO_TELEMETRY``; sessions and
    tests flip it with :meth:`TelemetryHub.enable` or replace the hub with
    :func:`set_hub`.
    """
    global _HUB
    if _HUB is None:
        _HUB = TelemetryHub(enabled=telemetry_enabled())
    return _HUB


def set_hub(new_hub: TelemetryHub) -> TelemetryHub:
    """Install ``new_hub`` as the process-wide hub; returns the previous one."""
    global _HUB
    if not isinstance(new_hub, TelemetryHub):
        raise TelemetryError(f"set_hub() requires a TelemetryHub, got {type(new_hub).__name__}")
    previous = hub()
    _HUB = new_hub
    return previous


def resolve_telemetry(setting: Union[None, bool, TelemetryHub]) -> TelemetryHub:
    """Resolve a session's ``telemetry=`` argument against the global hub.

    ``None`` leaves the hub as the environment configured it; ``True`` /
    ``False`` enable or disable the current hub; a :class:`TelemetryHub`
    instance is installed as the process-wide hub and enabled.
    """
    if isinstance(setting, TelemetryHub):
        set_hub(setting)
        return setting.enable()
    current = hub()
    if setting is True:
        current.enable()
    elif setting is False:
        current.disable()
    return current
