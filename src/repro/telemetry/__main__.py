"""``python -m repro.telemetry`` — inspect and convert exported runs.

Two subcommands:

* ``summarize <run.jsonl>`` — per-collective latency table, link
  utilization table, ski-rental decision table, and a chronological
  decision log (synthesis choices, relay verdicts, chaos events, service
  degradations); ``--top N`` appends the N slowest spans of each span
  kind; ``--group-by <label>`` splits the tables by a record label (e.g.
  ``--group-by job`` on a merged fleet stream gives one table set per
  job);
* ``chrome <run.jsonl> [-o out.trace.json]`` — convert a JSONL run into
  Chrome trace-event JSON for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.report import Table
from repro.errors import TelemetryError
from repro.telemetry.export import (
    TelemetryRun,
    read_jsonl,
    summarize_collectives,
    summarize_links,
    summarize_slowest,
    write_chrome_trace,
)

#: Instant-event names that belong in the chronological decision log.
DECISION_EVENTS = (
    "ski-rental-decision",
    "synthesis-decision",
    "service-retry",
    "service-degraded",
    "fault-detected",
)


def _collective_table(run: TelemetryRun) -> Optional[Table]:
    rows = summarize_collectives(run)
    if not rows:
        return None
    table = Table(
        "Per-collective latency (seconds)", ["runs", "mean", "min", "max"]
    )
    for row in rows:
        table.add_row(
            row["name"],
            [row["count"], row["mean_seconds"], row["min_seconds"], row["max_seconds"]],
        )
    return table


def _link_table(run: TelemetryRun) -> Optional[Table]:
    rows = summarize_links(run)
    if not rows:
        return None
    table = Table("Link utilization", ["busy_s", "bytes", "util"])
    for row in rows:
        table.add_row(
            row["link"], [row["busy_seconds"], row["bytes"], row["utilization"]]
        )
    return table


def _decision_table(run: TelemetryRun) -> Optional[Table]:
    decisions = [e for e in run.events if e.get("name") == "ski-rental-decision"]
    if not decisions:
        return None
    table = Table(
        "Ski-rental decisions", ["verdict", "waited_s", "buy_cost_s", "relays"]
    )
    for event in decisions:
        args = event.get("args", {})
        table.add_row(
            f"t={event['start']:.4f}",
            [
                args.get("verdict", "?"),
                float(args.get("waited_seconds", 0.0)),
                float(args.get("buy_cost_seconds", 0.0)),
                len(args.get("relays", [])),
            ],
        )
    return table


def _slowest_table(run: TelemetryRun, top: int) -> Optional[Table]:
    rows = summarize_slowest(run, top=top)
    if not rows:
        return None
    table = Table(
        f"Slowest spans per kind (top {top})", ["kind", "track", "start_s", "dur_s"]
    )
    for row in rows:
        table.add_row(
            row["name"],
            [row["kind"], row["track"], row["start_seconds"], row["duration_seconds"]],
        )
    return table


def _decision_log(run: TelemetryRun) -> List[str]:
    lines = []
    for event in run.events:
        name = event.get("name", "")
        if name not in DECISION_EVENTS and not name.startswith("chaos-"):
            continue
        args = event.get("args", {})
        detail = ", ".join(f"{k}={args[k]}" for k in sorted(args) if not isinstance(args[k], dict))
        lines.append(f"  t={event['start']:9.5f}s  {name:22s} {detail}")
    return lines


def _split_by_label(run: TelemetryRun, label: str) -> List[tuple]:
    """(group, sub-run) pairs splitting ``run`` by one record label.

    Records without the label land in the ``"(unlabeled)"`` group; groups
    come out sorted, unlabeled last. Metrics stay with the whole run (a
    merged fleet stream carries one per-job metrics map, printed once).
    """
    groups = {}
    for record in run.records:
        value = record.get("labels", {}).get(label)
        key = "(unlabeled)" if value is None else str(value)
        sub = groups.get(key)
        if sub is None:
            sub = groups[key] = TelemetryRun(meta=run.meta)
        sub.records.append(record)
        if record.get("type") == "span":
            sub.spans.append(record)
        elif record.get("type") == "event":
            sub.events.append(record)
    ordered = sorted(key for key in groups if key != "(unlabeled)")
    if "(unlabeled)" in groups:
        ordered.append("(unlabeled)")
    return [(key, groups[key]) for key in ordered]


def _show_tables(run: TelemetryRun, top: int) -> bool:
    """Print the standard table set for one (sub-)run; True if any shown."""
    shown = False
    tables = [_collective_table(run), _link_table(run), _decision_table(run)]
    if top > 0:
        tables.append(_slowest_table(run, top))
    for table in tables:
        if table is not None:
            table.show()
            shown = True
    log = _decision_log(run)
    if log:
        print("Decision log")
        print("------------")
        print("\n".join(log))
        print()
        shown = True
    return shown


def summarize(path: str, top: int = 0, group_by: Optional[str] = None) -> int:
    """Print the run summary; returns a process exit code.

    With ``top > 0`` a slowest-spans table (grouped by span kind) is
    appended to the standard tables. With ``group_by`` set, the tables are
    printed once per value of that record label — the fleet workflow is
    ``summarize merged.jsonl --group-by job``.
    """
    run = read_jsonl(path)
    meta = run.meta
    print(
        f"run: {path} (schema {meta.get('schema', '?')}, {meta.get('clock', '?')} clock, "
        f"{len(run.spans)} spans, {len(run.events)} events)\n"
    )
    shown = False
    if group_by is not None:
        for key, sub in _split_by_label(run, group_by):
            print(f"=== {group_by}={key} "
                  f"({len(sub.spans)} spans, {len(sub.events)} events) ===\n")
            shown = _show_tables(sub, top) or shown
    else:
        shown = _show_tables(run, top)
    if run.metrics:
        print("Metrics")
        print("-------")
        for name in sorted(run.metrics):
            payload = run.metrics[name]
            for series in payload.get("series", []):
                labels = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
                suffix = f"{{{labels}}}" if labels else ""
                if payload.get("kind") == "histogram":
                    print(f"  {name}{suffix} count={series['count']} sum={series['sum']:.6g}")
                else:
                    print(f"  {name}{suffix} {series['value']:.6g}")
        shown = True
    if not shown:
        print("(empty run: no spans, events, or metrics)")
    return 0


def chrome(path: str, output: Optional[str]) -> int:
    """Convert a JSONL run to a Chrome trace file."""
    run = read_jsonl(path)
    target = output or (path.rsplit(".jsonl", 1)[0] + ".trace.json")
    write_chrome_trace(run, target, clock=run.meta.get("clock", "sim"))
    print(f"wrote {target} ({len(run.spans)} spans, {len(run.events)} events)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize or convert exported telemetry runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="print latency/decision tables for a run")
    p_sum.add_argument("run", help="path to a JSONL run file")
    p_sum.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also show the N slowest spans of each span kind",
    )
    p_sum.add_argument(
        "--group-by",
        default=None,
        metavar="LABEL",
        help="split the tables by a record label (e.g. 'job' for merged "
        "fleet streams)",
    )
    p_chrome = sub.add_parser("chrome", help="convert a JSONL run to Chrome trace JSON")
    p_chrome.add_argument("run", help="path to a JSONL run file")
    p_chrome.add_argument("-o", "--output", default=None, help="output path")
    args = parser.parse_args(argv)
    try:
        if args.command == "summarize":
            return summarize(args.run, top=args.top, group_by=args.group_by)
        return chrome(args.run, args.output)
    except (TelemetryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
