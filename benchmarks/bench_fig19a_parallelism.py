"""Fig. 19(a) — effect of the parallelization degree M.

The paper sweeps the number of parallel sub-collectives M while training
VGG16 and reports communication speedup over NCCL rising with M (parallel
transmissions extract more of the available bandwidth than NCCL's single
channel can), flattening past M = 4 — their chosen operating point.
"""

import pytest

from repro.bench import Series, measure_algorithm_bandwidth
from repro.hardware import MB, make_homo_cluster
from repro.synthesis import Primitive
from repro.synthesis.optimizer import SynthesizerConfig

M_VALUES = [1, 2, 4, 8]
TENSOR_BYTES = 64 * MB


def measure():
    nccl = measure_algorithm_bandwidth(
        make_homo_cluster(num_servers=4), "nccl", Primitive.ALLREDUCE, TENSOR_BYTES
    )
    adapcc = {}
    for m in M_VALUES:
        adapcc[m] = measure_algorithm_bandwidth(
            make_homo_cluster(num_servers=4),
            "adapcc",
            Primitive.ALLREDUCE,
            TENSOR_BYTES,
            backend_kwargs={"config": SynthesizerConfig(parallelism=m)},
        )
    return nccl, adapcc


def test_fig19a_parallelization_degree(run_once):
    nccl, adapcc = run_once(measure)

    series = Series(
        "Fig. 19a — AllReduce speedup over NCCL vs parallelization degree M",
        "M",
        "speedup",
    )
    series.set_x(M_VALUES)
    speedups = [adapcc[m] / nccl for m in M_VALUES]
    series.add("adapcc/nccl", speedups)
    series.add("adapcc GB/s", [adapcc[m] / 1e9 for m in M_VALUES])
    series.show()
    print(f"NCCL baseline: {nccl / 1e9:.2f} GB/s")
    print("(paper: speedup grows with M, M=4 chosen as the operating point)")

    # Shape: more parallel sub-collectives extract more bandwidth, with
    # diminishing returns: M=4 captures most of the gain over M=1.
    assert speedups[M_VALUES.index(4)] > speedups[M_VALUES.index(1)]
    assert adapcc[4] >= 0.95 * adapcc[8]
