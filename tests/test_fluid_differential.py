"""Differential harness for the incremental fluid solver.

Two equivalence claims lock the incremental recompute
(`FluidNetwork._assign_rates` re-solving only dirty connected components)
to its references:

* **vs. the joint solve** — at every recompute point of a randomized
  multi-component run, the per-transfer rates match
  :func:`repro.simulation.fluid.solve_rates_reference` (one progressive
  filling over *all* active transfers jointly, the pre-incremental
  semantics) to within 1e-9. Per-component filling takes different float
  paths than the joint solve, so agreement is near-exact, not bitwise.
* **vs. from-scratch per-component mode** — replaying the same event
  script with ``incremental=False`` (every component re-solved on every
  recompute) produces **exactly** the same per-link ``bytes_carried``,
  completion times and final clock, bit for bit. This is the property
  that makes it safe to ship the incremental solver as the default.

Event scripts are hypothesis-generated: interleaved transfer starts
(random paths over a shared pool of links, so components merge), early
cancels, and mid-flight ``set_capacity`` shaping (including to zero),
with random inter-event delays.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import FluidLink, FluidNetwork, Simulator
from repro.simulation.fluid import solve_rates_reference

#: Tolerance of the incremental-vs-joint comparison (relative and absolute).
TOLERANCE = 1e-9


class DifferentialNetwork(FluidNetwork):
    """A network that checks every recompute against the joint solve."""

    def __init__(self, sim, incremental=None):
        super().__init__(sim, incremental=incremental)
        self.recompute_points = 0

    def _assign_rates(self):
        super()._assign_rates()
        if not self._active:
            return
        self.recompute_points += 1
        reference = solve_rates_reference(self._active)
        for transfer, expected in zip(self._active, reference):
            assert transfer.rate == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            ), (
                f"incremental rate {transfer.rate!r} diverged from joint "
                f"reference {expected!r} at t={self.sim.now!r}"
            )


# -- script generation ---------------------------------------------------------

_link_caps = st.lists(
    st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=6
)

_op = st.one_of(
    st.tuples(
        st.just("start"),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
        st.floats(min_value=1.0, max_value=500.0),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=7)),
    st.tuples(
        st.just("setcap"),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=1000.0),
    ),
)

_script = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=3.0), _op),
    min_size=3,
    max_size=14,
)


def _run_script(capacities, script, network_cls=FluidNetwork, incremental=None):
    """Replay one generated event script; returns its observable outcome."""
    sim = Simulator()
    net = network_cls(sim, incremental=incremental)
    links = [
        FluidLink(f"l{i}", capacity=cap) for i, cap in enumerate(capacities)
    ]
    started = []

    def runner(sim):
        for delay, op in script:
            yield sim.timeout(delay)
            if op[0] == "start":
                _kind, path, size = op
                chosen = [links[i % len(links)] for i in path]
                event = net.transfer(chosen, size=size, tag=f"t{len(started)}")
                # Consume the completion event: cancels fail it, and an
                # unobserved failure aborts the simulation by design.
                event.add_callback(lambda _evt: None)
                started.append(net.active_transfers[-1])
            elif op[0] == "cancel":
                _kind, idx = op
                active = net.active_transfers
                if active:
                    net.cancel(active[idx % len(active)])
            else:
                _kind, idx, capacity = op
                net.set_capacity(links[idx % len(links)], capacity)

    sim.process(runner(sim))
    sim.run()
    return {
        "now": sim.now,
        "bytes": {link.name: link.bytes_carried for link in links},
        "finishes": [(t.tag, t.finish_time) for t in started],
        "completed": net.completed_transfers,
        "net": net,
    }


# -- properties ----------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(capacities=_link_caps, script=_script)
def test_incremental_rates_match_joint_reference(capacities, script):
    """Every incremental recompute agrees with the joint solve to 1e-9."""
    outcome = _run_script(
        capacities, script, network_cls=DifferentialNetwork, incremental=True
    )
    # The assertion lives inside DifferentialNetwork._assign_rates; make
    # sure the script actually exercised it.
    if any(op[0] == "start" for _delay, op in script):
        assert outcome["net"].recompute_points > 0


@settings(max_examples=60, deadline=None)
@given(capacities=_link_caps, script=_script)
def test_incremental_run_is_bit_identical_to_from_scratch(capacities, script):
    """Same script, both modes: bytes and completion times match exactly."""
    incremental = _run_script(capacities, script, incremental=True)
    scratch = _run_script(capacities, script, incremental=False)
    assert incremental["now"] == scratch["now"]
    assert incremental["completed"] == scratch["completed"]
    assert incremental["bytes"] == scratch["bytes"]  # exact, not approx
    assert incremental["finishes"] == scratch["finishes"]


@settings(max_examples=30, deadline=None)
@given(capacities=_link_caps, script=_script)
def test_from_scratch_mode_matches_joint_reference_too(capacities, script):
    """The reference mode itself stays within 1e-9 of the joint solve."""
    _run_script(
        capacities, script, network_cls=DifferentialNetwork, incremental=False
    )


def test_incremental_is_the_default():
    sim = Simulator()
    assert FluidNetwork(sim).incremental is True


def test_env_var_selects_from_scratch(monkeypatch):
    monkeypatch.setenv("REPRO_FLUID_INCREMENTAL", "0")
    sim = Simulator()
    assert FluidNetwork(sim).incremental is False


def test_reference_solver_matches_trivial_closed_form():
    """Two flows on one 100 B/s link: the joint reference gives 50/50."""
    sim = Simulator()
    net = FluidNetwork(sim)
    link = FluidLink("l", capacity=100.0)
    net.transfer([link], size=1000.0)
    net.transfer([link], size=1000.0)
    sim.run(until=1.0)
    rates = solve_rates_reference(net.active_transfers)
    assert rates == pytest.approx([50.0, 50.0])
    assert all(not math.isnan(r) for r in rates)


def test_component_isolation_freezes_untouched_rates():
    """Churn on one link must not re-rate flows on a disjoint link."""
    sim = Simulator()
    net = FluidNetwork(sim)
    left = FluidLink("left", capacity=100.0)
    right = FluidLink("right", capacity=100.0)
    net.transfer([left], size=10_000.0)
    sim.run(until=1.0)
    (steady,) = net.active_transfers
    rate_before = steady.rate
    # Start and finish a burst of flows on the other component.
    for _ in range(3):
        net.transfer([right], size=10.0)
    sim.run(until=2.0)
    assert steady.rate == rate_before  # bitwise frozen, not approx
