"""The AdapCC user-facing session API (paper Sec. VI-A).

Mirrors how a training script uses the real library::

    import adapcc
    adapcc.init()        # detect topology, profile links, build strategies
    adapcc.setup()       # register buffers / transmission contexts
    ...
    adapcc.allreduce(tensor)
    adapcc.profile(period=500)   # periodic re-profiling

Here the session owns a simulated cluster instead of real GPUs::

    from repro import AdapCCSession
    from repro.hardware import make_hetero_cluster

    session = AdapCCSession(make_hetero_cluster())
    session.init()
    session.setup()
    out = session.allreduce({rank: tensor for rank, tensor in ...})
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.config import verification_enabled
from repro.errors import ReproError
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.profiling.profiler import Profiler
from repro.relay.coordinator import AdaptiveAllReduce
from repro.runtime.collectives import (
    CollectiveResult,
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_reduce,
    run_reduce_scatter,
)
from repro.runtime.context import ContextManager, TransmissionContext
from repro.simulation.engine import Simulator
from repro.synthesis.optimizer import Synthesizer, SynthesizerConfig
from repro.synthesis.strategy import Primitive, Strategy
from repro.telemetry.core import TelemetryHub, resolve_telemetry
from repro.topology.detector import DetectionReport, Detector
from repro.topology.graph import LogicalTopology


class AdapCCSession:
    """One training job's AdapCC instance on a simulated cluster."""

    def __init__(
        self,
        instance_specs: Sequence[InstanceSpec],
        config: Optional[SynthesizerConfig] = None,
        seed: int = 0,
        verify: Optional[bool] = None,
        telemetry: Union[None, bool, TelemetryHub] = None,
    ):
        #: The process-wide telemetry hub this session records into.
        #: ``None`` defers to ``REPRO_TELEMETRY``; ``True``/``False`` flip
        #: the current hub; a :class:`TelemetryHub` is installed globally.
        #: Resolved before the cluster exists so the fluid network attaches
        #: its tracing bridge at construction.
        self.telemetry = resolve_telemetry(telemetry)
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, instance_specs)
        self.config = config
        self.seed = seed
        #: Tri-state static-verification override: ``None`` defers to
        #: :func:`repro.analysis.verification_enabled` (on under pytest or
        #: ``REPRO_VERIFY=1``), ``True``/``False`` force it. When enabled,
        #: every synthesized strategy is checked by
        #: :func:`repro.analysis.assert_valid` before first use.
        self.verify = verify
        self.topology: Optional[LogicalTopology] = None
        self.detection: Optional[DetectionReport] = None
        self.profiler: Optional[Profiler] = None
        self.synthesizer: Optional[Synthesizer] = None
        self.contexts: Optional[ContextManager] = None
        self.adaptive: Optional[AdaptiveAllReduce] = None
        self._strategies: Dict = {}
        self._active_contexts: List[TransmissionContext] = []
        self._profile_period: Optional[int] = None
        self._collectives_run = 0

    # -- lifecycle -------------------------------------------------------------------

    def init(self) -> "AdapCCSession":
        """Detect topology, build the logical graph, run the first
        profiling pass, and create the synthesizer (``adapcc.init()``)."""
        detector = Detector(self.cluster)
        self.detection = detector.detect()
        self.topology = LogicalTopology.from_cluster(
            self.cluster, nvlink_pairs=self.detection.nvlink_pairs_by_instance()
        )
        self.profiler = Profiler(self.topology)
        self.profiler.profile()
        self.synthesizer = Synthesizer(self.topology, self.config)
        self.adaptive = AdaptiveAllReduce(self.topology, seed=self.seed)
        return self

    def setup(self) -> float:
        """Create the context manager (``adapcc.setup()``); returns the
        simulated seconds the set-up consumed (0 until strategies exist —
        contexts are set up lazily per strategy)."""
        self._require_init()
        self.contexts = ContextManager(self.cluster)
        return 0.0

    def profile(self, period: int) -> None:
        """Enable periodic re-profiling every ``period`` collectives
        (``adapcc.profile()``)."""
        if period < 1:
            raise ReproError("profiling period must be >= 1")
        self._profile_period = period

    def reprofile_now(self) -> None:
        """Force a profiling pass and invalidate cached strategies."""
        self._require_init()
        self.profiler.profile()
        self._strategies.clear()

    def scale_out(self, spec: InstanceSpec) -> List[int]:
        """Elastic scaling: attach a new instance mid-job (Sec. IV-A).

        Re-runs detection (the new instance's workers trigger the
        Detector), rebuilds the logical topology, re-profiles, and drops
        cached strategies so the next collective includes the new ranks —
        no restart. Returns the new global ranks.
        """
        self._require_init()
        instance = self.cluster.add_instance(spec)
        detector = Detector(self.cluster)
        self.detection = detector.detect()
        self.topology = LogicalTopology.from_cluster(
            self.cluster, nvlink_pairs=self.detection.nvlink_pairs_by_instance()
        )
        self.profiler = Profiler(self.topology)
        self.profiler.profile()
        self.synthesizer = Synthesizer(self.topology, self.config)
        self.adaptive = AdaptiveAllReduce(self.topology, seed=self.seed)
        if self.contexts is not None:
            self.contexts = ContextManager(self.cluster)
        self._strategies.clear()
        return [gpu.rank for gpu in instance.gpus]

    # -- collectives -------------------------------------------------------------------

    def allreduce(
        self,
        tensors: Dict[int, np.ndarray],
        ready_times: Optional[Dict[int, Optional[float]]] = None,
        adaptive: bool = True,
        byte_scale: float = 1.0,
    ):
        """AllReduce across all ranks; adaptive relay control by default."""
        strategy = self._strategy(Primitive.ALLREDUCE, tensors, byte_scale)
        self._tick()
        if adaptive and ready_times:
            return self.adaptive.run(strategy, tensors, ready_times, byte_scale=byte_scale)
        clean = {r: (t or 0.0) for r, t in (ready_times or {}).items()}
        return run_allreduce(
            self.topology, strategy, tensors, ready_times=clean, byte_scale=byte_scale
        )

    def reduce(self, tensors, root: int = 0, byte_scale: float = 1.0) -> CollectiveResult:
        """Reduce: the root rank receives the elementwise sum."""
        strategy = self._strategy(Primitive.REDUCE, tensors, byte_scale, root=root)
        self._tick()
        return run_reduce(self.topology, strategy, tensors, byte_scale=byte_scale)

    def broadcast(self, tensors, root: int = 0, byte_scale: float = 1.0) -> CollectiveResult:
        """Broadcast: every rank receives the root's tensor."""
        strategy = self._strategy(Primitive.BROADCAST, tensors, byte_scale, root=root)
        self._tick()
        return run_broadcast(self.topology, strategy, tensors, byte_scale=byte_scale)

    def alltoall(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """AlltoAll: rank d's block s is rank s's block d (token dispatch)."""
        strategy = self._strategy(Primitive.ALLTOALL, tensors, byte_scale)
        self._tick()
        return run_alltoall(self.topology, strategy, tensors, byte_scale=byte_scale)

    def allgather(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """AllGather: every rank receives all shards, in rank order."""
        strategy = self._strategy(Primitive.ALLGATHER, tensors, byte_scale)
        self._tick()
        return run_allgather(self.topology, strategy, tensors, byte_scale=byte_scale)

    def reduce_scatter(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """ReduceScatter: rank r receives the sum of partition r."""
        strategy = self._strategy(Primitive.REDUCE_SCATTER, tensors, byte_scale)
        self._tick()
        return run_reduce_scatter(self.topology, strategy, tensors, byte_scale=byte_scale)

    # -- internals -----------------------------------------------------------------------

    def _require_init(self) -> None:
        if self.topology is None:
            raise ReproError("call session.init() first")

    def _strategy(
        self,
        primitive: Primitive,
        tensors: Dict[int, np.ndarray],
        byte_scale: float,
        root: Optional[int] = None,
    ) -> Strategy:
        self._require_init()
        participants = tuple(sorted(tensors))
        sample = tensors[participants[0]]
        tensor_size = len(sample) * sample.itemsize * byte_scale
        key = (primitive, participants, float(tensor_size), root)
        if key not in self._strategies:
            strategy = self.synthesizer.synthesize(
                primitive, tensor_size, list(participants), root=root
            )
            if verification_enabled(self.verify):
                from repro.analysis.verify_strategy import assert_valid

                assert_valid(strategy, self.topology)
            if self.contexts is not None:
                planned = self.contexts.plan_contexts(strategy)
                self.contexts.setup_all(planned)
                self._active_contexts.extend(planned)
            self._strategies[key] = strategy
        return self._strategies[key]

    def _tick(self) -> None:
        self._collectives_run += 1
        if (
            self._profile_period
            and self._collectives_run % self._profile_period == 0
        ):
            self.reprofile_now()
