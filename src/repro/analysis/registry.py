"""The analysis pass registry (DESIGN.md §10).

Each analysis pass registers one :class:`PassSpec`: its name, a one-line
description, the finding codes it can emit (with default severities, for
SARIF rule metadata and ``--list``), the source inputs its result depends
on (for the content-addressed incremental cache), and the entry point.

Passes run through :mod:`repro.analysis.runner`; results export through
:mod:`repro.analysis.sarif`. Registration order is the canonical pass
order — reports and exit codes are computed in this order regardless of
``--jobs`` parallelism, which is what makes SARIF output byte-identical
across job counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding


@dataclass
class PassContext:
    """Per-invocation inputs threaded into a pass entry point.

    ``root`` overrides the source tree for file-based passes (tests point
    it at fixture trees); ``target`` is an optional input file for passes
    that can lint an exported artifact (``--telemetry run.jsonl``);
    ``echo`` collects progress notes (the runner buffers them per pass so
    parallel runs don't interleave output).
    """

    root: Optional[Path] = None
    target: Optional[str] = None
    echo: Callable[[str], None] = lambda message: None


@dataclass(frozen=True)
class RuleSpec:
    """One finding code a pass can emit, with its default severity."""

    code: str
    severity: str
    description: str


@dataclass(frozen=True)
class PassSpec:
    """Metadata + entry point of one registered analysis pass."""

    name: str
    description: str
    #: Human display title in text reports (``ok   source lint``); the
    #: legacy report names are preserved so scripts scraping the output
    #: keep working.
    title: str
    rules: Tuple[RuleSpec, ...]
    run: Callable[[PassContext], List[Finding]]
    #: Package-relative files/directories (under ``src/repro``) whose
    #: content the pass result depends on — the incremental-cache inputs.
    inputs: Tuple[str, ...]
    #: Bump when the pass logic changes, to invalidate cached findings.
    version: int = 1
    #: Serial passes swap process-global state (the telemetry hub) and
    #: must not run concurrently with any other pass.
    serial: bool = False
    #: Whether the pass supports an optional ``target`` file argument.
    accepts_target: bool = False


_REGISTRY: Dict[str, PassSpec] = {}


def register(spec: PassSpec) -> PassSpec:
    """Add a pass to the registry (module import time); returns it."""
    if spec.name in _REGISTRY:
        raise ValueError(f"analysis pass {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def get_pass(name: str) -> PassSpec:
    """Look up one pass by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown analysis pass {name!r} (known: {known})")


def iter_passes() -> List[PassSpec]:
    """All registered passes, in registration (= canonical report) order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def pass_names() -> List[str]:
    """Registered pass names, in canonical order."""
    return [spec.name for spec in iter_passes()]


def _ensure_loaded() -> None:
    # The built-in passes live in repro.analysis.passes, which imports
    # this module; importing it here (lazily, idempotently) keeps
    # registration automatic without an import cycle at module load.
    import repro.analysis.passes  # noqa: F401


@dataclass
class PassResult:
    """Outcome of one pass run (or cache replay)."""

    spec: PassSpec
    findings: List[Finding] = field(default_factory=list)
    cached: bool = False
    duration_seconds: float = 0.0
    #: Non-``None`` when the pass crashed — an internal error, reported
    #: distinctly from findings (CLI exit code 2, not 1).
    error: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.findings
