"""NCCL baseline model (v2.14-era behaviour as characterized in the paper).

What the model encodes, each traceable to the paper or NCCL docs:

* **Empirical bandwidth tables, not measurements** — graph construction
  uses per-link-type nominal values (``EMPIRICAL_BANDWIDTH``), so NCCL's
  trees ignore both heterogeneity and runtime shaping (Sec. II-A/VI-C).
* **Rank-ordered graphs assuming homogeneity** — the inter-server binary
  tree is laid out in rank order, "which assumes each node homogeneous and
  causes the one with less network capacity to become the bottleneck"
  (Sec. VI-C).
* **Single intra-server channel onto the NIC-closest GPU** — "only one
  communication channel is launched to reduce data onto the GPU closest to
  an NIC, which cannot fully utilize all NVLinks"; a single channel also
  caps TCP throughput at one stream (~20 Gbps on a 100 Gbps NIC, Sec. VI-D).
* **Ring for large payloads, tree for small** — NCCL's tuning heuristic;
  the ring is a single chain through all ranks in rank order.
* **Fixed chunking** — 512 KiB slices regardless of link properties.
* **AlltoAll via ncclSend/ncclRecv pairs** — direct flows, one channel.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.baselines.common import Backend, register_backend
from repro.errors import SynthesisError
from repro.hardware.links import KB, MB, GBps, gbps
from repro.synthesis.aggregation import default_aggregation
from repro.synthesis.routing import (
    Tree,
    alltoall_flows,
    broadcast_flows,
    hop_path,
    reduce_flows,
)
from repro.synthesis.strategy import Flow, Primitive, Strategy, SubCollective
from repro.topology.graph import LogicalTopology, gpu_node

#: NCCL's empirical per-link-class throughput assumptions (bytes/s). These
#: are what its backtracking graph search "saturates", independent of the
#: actual achieved performance.
EMPIRICAL_BANDWIDTH = {
    "nvlink": GBps(150),
    "pcie": GBps(12),
    "network": gbps(100),
}

#: NCCL's fixed pipeline slice.
NCCL_CHUNK_BYTES = 512 * KB
#: Message size above which NCCL prefers ring over tree.
RING_THRESHOLD_BYTES = 64 * MB
#: Overhead of one grouped ncclSend/ncclRecv round: group launch, proxy
#: wake-up, and the implicit synchronization between rounds.
P2P_ROUND_OVERHEAD_SECONDS = 60e-6


@register_backend
class NcclBackend(Backend):
    """Ring/binary-tree strategies with a single channel."""

    name = "nccl"

    def __init__(self, topology: LogicalTopology, graph: str = "auto"):
        super().__init__(topology)
        if graph not in ("auto", "tree", "ring"):
            raise SynthesisError(f"unknown NCCL graph mode {graph!r}")
        self.graph = graph

    # -- graph construction ------------------------------------------------------

    def _choose_graph(self, tensor_size: float) -> str:
        if self.graph != "auto":
            return self.graph
        return "ring" if tensor_size >= RING_THRESHOLD_BYTES else "tree"

    def _local_order(self, participants: List[int]) -> Dict[int, List[int]]:
        """Participants grouped by instance, in local rank order."""
        groups: Dict[int, List[int]] = {}
        for rank in participants:
            groups.setdefault(self.topology.cluster.gpu(rank).instance_id, []).append(rank)
        return {iid: sorted(ranks) for iid, ranks in sorted(groups.items())}

    def tree_graph(self, participants: List[int], root: int) -> Tree:
        """Single channel: intra-server chain onto the leader (the GPU
        closest to the NIC = lowest local rank), rank-ordered binary tree
        across servers."""
        groups = self._local_order(participants)
        root_instance = self.topology.cluster.gpu(root).instance_id
        tree: Tree = {root: root}
        leaders: Dict[int, int] = {}
        for instance_id, ranks in groups.items():
            leader = root if instance_id == root_instance else ranks[0]
            leaders[instance_id] = leader
            # Chain: each GPU forwards to the next toward the leader.
            chain = [r for r in ranks if r != leader]
            previous = leader
            for rank in chain:
                tree[rank] = previous
                previous = rank
        # Rank-ordered binary tree over instances: ignores NIC speeds.
        ordered = [root_instance] + [iid for iid in groups if iid != root_instance]
        for position, instance_id in enumerate(ordered[1:], start=1):
            parent_instance = ordered[(position - 1) // 2]
            tree[leaders[instance_id]] = leaders[parent_instance]
        return tree

    def ring_graph(self, participants: List[int], root: int) -> Tree:
        """The ring as a reduce chain ending at the root (one channel).

        NCCL's ring AllReduce is reduce-scatter + allgather around the
        ring; at flow granularity each link carries ~2S, which a chain
        reduce followed by a reversed chain broadcast reproduces.
        """
        groups = self._local_order(participants)
        root_instance = self.topology.cluster.gpu(root).instance_id
        ordered_instances = [root_instance] + [
            iid for iid in groups if iid != root_instance
        ]
        # Visit instances in rank order, GPUs within an instance in order,
        # ending at the root: a single chain through every rank.
        sequence: List[int] = []
        for instance_id in reversed(ordered_instances):
            ranks = [r for r in groups[instance_id] if r != root]
            sequence.extend(ranks)
        sequence.append(root)
        tree: Tree = {root: root}
        for current, nxt in zip(sequence, sequence[1:]):
            tree[current] = nxt
        return tree

    # -- Backend interface ----------------------------------------------------------

    def run(
        self,
        strategy,
        inputs,
        active_ranks=None,
        ready_times=None,
        byte_scale: float = 1.0,
        max_chunks=None,
    ):
        """NCCL executes AlltoAll as pairwise-exchange rounds.

        Without native AlltoAll, ncclSend/ncclRecv pairs are issued in
        N−1 grouped rounds (round r: rank i exchanges with rank (i+r) mod
        N), each round a barrier with group-launch overhead. AdapCC's
        fully-parallel flows overlap everything instead; the serialization
        plus the round barriers (gated by the slowest pair — painful on
        heterogeneous NICs) is NCCL's AlltoAll handicap (Sec. VI-C).
        """
        from repro.runtime.collectives import CollectiveResult, run_alltoall
        from repro.synthesis.strategy import Strategy

        if strategy.primitive is not Primitive.ALLTOALL:
            return super().run(
                strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks
            )
        sim = self.topology.cluster.sim
        participants = sorted(strategy.participants)
        world = len(participants)
        started = sim.now
        length = len(next(iter(inputs.values())))
        if world == 1 or length == 0:
            return super().run(
                strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks
            )
        block = length // world
        position = {rank: pos for pos, rank in enumerate(participants)}
        import numpy as np

        outputs = {r: np.zeros(length, dtype=inputs[r].dtype) for r in participants}
        for rank in participants:
            base = position[rank] * block
            outputs[rank][base : base + block] = inputs[rank][base : base + block]

        ready_at = {}
        for round_index in range(1, world):
            flows = []
            for pos, src in enumerate(participants):
                dst = participants[(pos + round_index) % world]
                flows.append(
                    Flow(gpu_node(src), gpu_node(dst), hop_path(self.topology, src, dst))
                )
            sc = strategy.subcollectives[0]
            round_strategy = Strategy(
                primitive=Primitive.ALLTOALL,
                tensor_size=strategy.tensor_size,
                participants=participants,
                subcollectives=[
                    SubCollective(
                        index=0,
                        size=strategy.tensor_size / world,
                        chunk_size=sc.chunk_size,
                        flows=flows,
                    )
                ],
                routing_family="nccl-p2p-round",
            )
            result = run_alltoall(
                self.topology,
                round_strategy,
                inputs,
                ready_times=ready_times if round_index == 1 else None,
                byte_scale=byte_scale,
                max_chunks=max_chunks,
            )
            if round_index == 1:
                ready_at = result.ready_at
            for flow in flows:
                src_rank, dst_rank = flow.src.index, flow.dst.index
                base = position[src_rank] * block
                outputs[dst_rank][base : base + block] = result.outputs[dst_rank][
                    base : base + block
                ]
            # Grouped-launch + inter-round synchronization overhead.
            sim.run(until=sim.now + P2P_ROUND_OVERHEAD_SECONDS)
        return CollectiveResult(
            outputs=outputs, started=started, finished=sim.now, ready_at=ready_at
        )

    def _plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        participants = sorted(set(participants))
        if not participants:
            raise SynthesisError("no participants")
        root = participants[0] if root is None else root
        chunk = min(NCCL_CHUNK_BYTES, max(1.0, tensor_size))

        if primitive is Primitive.ALLTOALL:
            flows = alltoall_flows(self.topology, participants)
            world = len(participants)
            sc = SubCollective(
                index=0,
                size=tensor_size / world,
                chunk_size=min(chunk, max(1.0, tensor_size / world)),
                flows=flows,
            )
            return Strategy(
                primitive=primitive,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=[sc],
                routing_family="nccl-p2p",
            )

        graph_kind = self._choose_graph(tensor_size)
        builder = self.ring_graph if graph_kind == "ring" else self.tree_graph

        if primitive is Primitive.ALLGATHER:
            subcollectives = []
            for index, rank in enumerate(participants):
                tree = builder(participants, rank)
                subcollectives.append(
                    SubCollective(
                        index=index,
                        size=tensor_size,
                        chunk_size=chunk,
                        flows=broadcast_flows(self.topology, tree, rank),
                        root=gpu_node(rank),
                    )
                )
            return Strategy(
                primitive=primitive,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=subcollectives,
                routing_family=f"nccl-{graph_kind}",
            )

        if primitive is Primitive.REDUCE_SCATTER:
            share = tensor_size / len(participants)
            subcollectives = []
            for index, rank in enumerate(participants):
                tree = builder(participants, rank)
                subcollectives.append(
                    SubCollective(
                        index=index,
                        size=share,
                        chunk_size=min(chunk, max(1.0, share)),
                        flows=reduce_flows(self.topology, tree, rank),
                        aggregation=default_aggregation(tree, rank),
                        root=gpu_node(rank),
                    )
                )
            return Strategy(
                primitive=primitive,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=subcollectives,
                routing_family=f"nccl-{graph_kind}",
            )

        # Reduce / Broadcast / AllReduce: ONE channel (M = 1), fixed root.
        tree = builder(participants, root)
        if primitive is Primitive.BROADCAST:
            flows = broadcast_flows(self.topology, tree, root)
            aggregation: Dict = {}
        else:
            flows = reduce_flows(self.topology, tree, root)
            aggregation = default_aggregation(tree, root)
        sc = SubCollective(
            index=0,
            size=tensor_size,
            chunk_size=chunk,
            flows=flows,
            aggregation=aggregation,
            root=gpu_node(root),
        )
        return Strategy(
            primitive=primitive,
            tensor_size=tensor_size,
            participants=participants,
            subcollectives=[sc],
            routing_family=f"nccl-{graph_kind}",
        )
