"""Content-addressed incremental cache for analysis passes (DESIGN.md §10).

Every registered pass declares the source inputs it depends on; the runner
hashes those inputs (path + content, sorted — a Merkle-style tree hash)
together with the pass name and version into one fingerprint. A cache hit
replays the stored findings without running the pass, so re-running the
suite after editing one file only recomputes the passes whose declared
inputs changed.

The same idiom fingerprints synthesized strategies
(:func:`fingerprint_strategy` hashes the canonical XML serialization) —
this is the content-addressed key the ROADMAP's strategy-cache service
tier builds on, exercised here first.

The store is a directory of ``<fingerprint>.json`` files (default
``.repro-analysis-cache/`` under the working tree, override with
``REPRO_ANALYSIS_CACHE``). Entries are self-describing and versioned;
a schema bump invalidates everything at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding

#: Bump to invalidate every cache entry (finding schema changes, …).
CACHE_SCHEMA = 1

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_ANALYSIS_CACHE"

#: Default cache directory name, created under the current working tree.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment or the default."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


# -- fingerprints ---------------------------------------------------------------------


def _hash() -> "hashlib._Hash":
    return hashlib.sha256()


def fingerprint_paths(root: Path, relative: Iterable[str]) -> str:
    """Content hash of the files selected by ``relative`` entries under ``root``.

    Each entry names either a single file or a directory (hashed
    recursively over its ``*.py`` files). Files are folded in sorted
    relative-path order, each as ``path\\0content``, so the fingerprint is
    independent of filesystem enumeration order and changes iff any
    selected file's path set or bytes change. Missing entries contribute
    a marker rather than failing — a deleted input is itself a change.
    """
    root = Path(root)
    files: List[Path] = []
    for entry in sorted(set(relative)):
        path = root / entry
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            files.append(path)
    digest = _hash()
    for path in sorted(set(files)):
        rel = path.relative_to(root).as_posix()
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    for entry in sorted(set(relative)):
        if not (root / entry).exists():
            digest.update(f"missing:{entry}".encode("utf-8"))
    return digest.hexdigest()


def fingerprint_strategy(strategy) -> str:
    """Content-addressed fingerprint of a synthesized strategy.

    Hashes the canonical XML serialization, so two strategies with the
    same routed flows, chunking, aggregation flags and participants share
    a fingerprint regardless of how they were produced — the key shape the
    strategy-cache service tier needs.
    """
    from repro.synthesis.strategy import strategy_to_xml

    digest = _hash()
    digest.update(strategy_to_xml(strategy).encode("utf-8"))
    return digest.hexdigest()


def pass_fingerprint(name: str, version: int, input_fingerprint: str) -> str:
    """The cache key of one pass run over one input state."""
    digest = _hash()
    digest.update(f"schema={CACHE_SCHEMA};pass={name};v={version};".encode("utf-8"))
    digest.update(input_fingerprint.encode("utf-8"))
    return digest.hexdigest()


# -- the store ------------------------------------------------------------------------


class AnalysisCache:
    """Directory-backed findings cache keyed by content fingerprints."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[List[Finding]]:
        """Stored findings for ``key``, or ``None`` on a miss."""
        path = self._entry_path(key)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        try:
            return [Finding.from_dict(f) for f in payload["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, key: str, pass_name: str, findings: Sequence[Finding]) -> None:
        """Persist ``findings`` under ``key`` (atomic rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "pass": pass_name,
            "fingerprint": key,
            "findings": [f.to_dict() for f in findings],
        }
        path = self._entry_path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
