"""Structured findings — the pass framework's result model (DESIGN.md §10).

A :class:`Finding` replaces the bare :class:`~repro.analysis.verify_strategy.Violation`
string triple as the unit of analysis output. It carries everything an
exporter or CI annotator needs:

* ``code`` — the stable kebab-case rule identifier (``wall-clock``,
  ``race-unordered-iteration``, …), the SARIF ``ruleId``;
* ``severity`` — ``error`` (invariant broken, CI-gating), ``warning``
  (heuristic hazard, baseline-suppressible) or ``note`` (informational);
* ``pass_name`` — which registered pass produced it;
* ``message`` / ``subject`` — the human explanation and its locator;
* ``file`` / ``line`` — a physical location when the finding anchors to
  source (AST passes fill these; scenario passes leave them ``None``);
* ``suppression_key`` — a stable key for baseline files: findings keep
  the same key across unrelated edits (no line numbers), so a committed
  baseline keeps suppressing exactly the findings it was written for.

Findings serialize to/from plain dicts so the incremental cache can store
them as JSON and replay them without re-running the pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.verify_strategy import Violation

#: Severity levels, ordered least → most severe. The names match SARIF
#: 2.1.0 ``level`` values so exporters need no mapping table.
SEVERITIES = ("note", "warning", "error")

SEVERITY_NOTE = "note"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in the ``note < warning < error`` order."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}; expected one of {SEVERITIES}")


@dataclass(frozen=True)
class Finding:
    """One structured analysis finding (see module docstring)."""

    code: str
    message: str
    pass_name: str = ""
    severity: str = SEVERITY_ERROR
    subject: str = ""
    file: Optional[str] = None
    line: Optional[int] = None

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    @property
    def suppression_key(self) -> str:
        """Stable baseline key: pass, code and file (or subject), no line."""
        anchor = self.file if self.file is not None else self.subject
        return f"{self.pass_name}:{self.code}:{anchor}"

    def __str__(self) -> str:
        where = self.subject
        if self.file is not None:
            where = self.file if self.line is None else f"{self.file}:{self.line}"
        return f"[{self.code}] {where}: {self.message}"

    # -- serialization (cache + JSON report) --------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "pass": self.pass_name,
            "severity": self.severity,
            "subject": self.subject,
            "file": self.file,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            code=payload["code"],
            message=payload["message"],
            pass_name=payload.get("pass", ""),
            severity=payload.get("severity", SEVERITY_ERROR),
            subject=payload.get("subject", ""),
            file=payload.get("file"),
            line=payload.get("line"),
        )


def from_violation(
    violation: Violation,
    pass_name: str,
    severity: str = SEVERITY_ERROR,
) -> Finding:
    """Lift a legacy :class:`Violation` into a :class:`Finding`.

    Source-lint subjects are ``path:lineno`` locators; those split into a
    physical location so SARIF consumers can annotate the file. Scenario
    subjects (``sc0.flow2``, ``seed23``) stay opaque.
    """
    file: Optional[str] = None
    line: Optional[int] = None
    subject = violation.subject
    head, sep, tail = subject.rpartition(":")
    if sep and tail.isdigit() and ("/" in head or head.endswith(".py")):
        file, line = head, int(tail)
    return Finding(
        code=violation.check,
        message=violation.detail,
        pass_name=pass_name,
        severity=severity,
        subject=subject,
        file=file,
        line=line,
    )


def from_violations(
    violations: List[Violation], pass_name: str, severity: str = SEVERITY_ERROR
) -> List[Finding]:
    """Lift a list of legacy violations (see :func:`from_violation`)."""
    return [from_violation(v, pass_name, severity) for v in violations]
