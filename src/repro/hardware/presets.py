"""Testbed presets matching the paper's evaluation hardware (Sec. VI-B).

The paper's testbed:

* four servers with 4×A100 (NVLink, PCIe 4.0, AMD EPYC-7H12 ×2,
  Mellanox 100 Gbps NIC);
* two servers with 4×V100 (NVLink, PCIe 3.0, Intel 6230 ×2,
  Mellanox 50 Gbps NIC).

Compute throughputs are effective training numbers (A100 ≈ 2.8× V100 on
mixed-precision training workloads), not datasheet peaks; what matters for
reproduction is the *ratio*, which drives straggler behaviour in the
heterogeneous setting.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hardware.gpu import GpuSpec
from repro.hardware.instance import InstanceSpec
from repro.hardware.links import (
    GBps,
    NicSpec,
    NVLINK_A100,
    NVLINK_V100,
    PCIE_GEN3,
    PCIE_GEN4,
    RDMA_100G,
    RDMA_50G,
    TCP_100G,
    TCP_50G,
    gbps,
    us,
)

A100_GPU = GpuSpec(
    name="A100",
    compute_flops=200e12,
    reduce_bandwidth=GBps(120),
    kernel_launch_overhead=us(6),
    memory_bytes=80e9,
)

V100_GPU = GpuSpec(
    name="V100",
    compute_flops=70e12,
    reduce_bandwidth=GBps(60),
    kernel_launch_overhead=us(8),
    memory_bytes=32e9,
)


def a100_server(
    network: str = "rdma",
    num_gpus: int = 4,
    nvlink_pairs=None,
    name: str = "a100",
) -> InstanceSpec:
    """One paper-style A100 server (100 Gbps NIC, PCIe 4.0)."""
    nic_link = RDMA_100G if network == "rdma" else TCP_100G
    return InstanceSpec(
        name=name,
        gpu=A100_GPU,
        num_gpus=num_gpus,
        pcie=PCIE_GEN4,
        nics=(NicSpec("mlx0", nic_link, numa_node=0, pcie_switch=0),),
        nvlink=NVLINK_A100,
        nvlink_pairs=nvlink_pairs,
    )


def v100_server(
    network: str = "rdma",
    num_gpus: int = 4,
    nvlink_pairs=None,
    name: str = "v100",
) -> InstanceSpec:
    """One paper-style V100 server (50 Gbps NIC, PCIe 3.0)."""
    nic_link = RDMA_50G if network == "rdma" else TCP_50G
    return InstanceSpec(
        name=name,
        gpu=V100_GPU,
        num_gpus=num_gpus,
        pcie=PCIE_GEN3,
        nics=(NicSpec("mlx0", nic_link, numa_node=0, pcie_switch=0),),
        nvlink=NVLINK_V100,
        nvlink_pairs=nvlink_pairs,
    )


def make_paper_testbed(network: str = "rdma") -> List[InstanceSpec]:
    """The full six-server testbed: 4×(4×A100) + 2×(4×V100)."""
    return [a100_server(network) for _ in range(4)] + [v100_server(network) for _ in range(2)]


def make_homo_cluster(
    num_servers: int = 4, gpus_per_server: int = 4, network: str = "rdma"
) -> List[InstanceSpec]:
    """The paper's homogeneous setting: A100 servers only."""
    return [a100_server(network, num_gpus=gpus_per_server) for _ in range(num_servers)]


def make_hetero_cluster(
    num_a100: int = 2, num_v100: int = 2, gpus_per_server: int = 4, network: str = "rdma"
) -> List[InstanceSpec]:
    """The paper's heterogeneous setting: A100 + V100 servers."""
    return [a100_server(network, num_gpus=gpus_per_server) for _ in range(num_a100)] + [
        v100_server(network, num_gpus=gpus_per_server) for _ in range(num_v100)
    ]


def make_config(
    a100_gpus: Sequence[int], v100_gpus: Sequence[int] = (), network: str = "rdma"
) -> List[InstanceSpec]:
    """A benchmark configuration like the paper's 'A100:(4,4,4,4) V100:(4,4)'.

    Each entry is the number of GPUs used on one server of that SKU;
    entries of 0 are skipped.
    """
    specs: List[InstanceSpec] = []
    for count in a100_gpus:
        if count:
            specs.append(a100_server(network, num_gpus=count))
    for count in v100_gpus:
        if count:
            specs.append(v100_server(network, num_gpus=count))
    return specs


def fragmented_server(num_gpus: int = 4, network: str = "rdma") -> InstanceSpec:
    """A server whose GPU allocation has no usable NVLink pairs.

    Models the IaaS fragmentation case from Sec. II-A where NCCL cannot
    form an NVLink ring and falls back to PCIe.
    """
    return InstanceSpec(
        name="frag",
        gpu=A100_GPU,
        num_gpus=num_gpus,
        pcie=PCIE_GEN4,
        nics=(NicSpec("mlx0", RDMA_100G if network == "rdma" else TCP_100G),),
        nvlink=NVLINK_A100,
        nvlink_pairs=frozenset(),
    )
