"""Fig. 3(b) — CDF of the wait-time ratio in GPT-2 training.

The paper trains GPT-2 (batch 16) without relay control and measures, per
iteration, the time the fastest worker waits for the slowest relative to
the actual communication time. Heterogeneous (2x4xV100 + 2x4xA100): the
ratio exceeds 23 % in half the iterations; homogeneous (4x4xA100): it
exceeds 10 % in half the iterations.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchEnvironment
from repro.hardware import make_hetero_cluster, make_homo_cluster
from repro.training import GPT2
from repro.training.trainer import Trainer, TrainerConfig


def wait_ratios(specs, iterations=12, seed=3):
    env = BenchEnvironment(specs, "adapcc")
    config = TrainerConfig(
        iterations=iterations, adaptive_relay=False, seed=seed, jitter_sigma=0.08
    )
    trainer = Trainer(env.backend, GPT2, config)
    report = trainer.run()
    return np.array([s.wait_ratio for s in report.stats if np.isfinite(s.wait_ratio)])


def cdf_points(values, grid):
    return [float((values <= g).mean()) for g in grid]


def measure():
    hetero = wait_ratios(make_hetero_cluster(num_a100=2, num_v100=2))
    homo = wait_ratios(make_homo_cluster(num_servers=4))
    return hetero, homo


def test_fig03b_wait_time_ratio_cdf(run_once):
    hetero, homo = run_once(measure)

    grid = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0]
    print("\nFig. 3b — CDF of wait-time ratio (GPT-2, batch 16, no relay control)")
    print("ratio grid:        " + "  ".join(f"{g:5.2f}" for g in grid))
    print("hetero CDF:        " + "  ".join(f"{v:5.2f}" for v in cdf_points(hetero, grid)))
    print("homo CDF:          " + "  ".join(f"{v:5.2f}" for v in cdf_points(homo, grid)))
    print(f"hetero median ratio: {np.median(hetero):.3f}   (paper: > 0.23)")
    print(f"homo   median ratio: {np.median(homo):.3f}   (paper: > 0.10)")

    # Shape: heterogeneity inflates the wait ratio; both medians are
    # non-trivial (the motivation for relay control).
    assert np.median(hetero) > np.median(homo)
    assert np.median(hetero) > 0.15
    assert np.median(homo) > 0.02
