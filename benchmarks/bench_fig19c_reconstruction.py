"""Fig. 19(c) — graph reconstruction overhead vs job scale.

AdapCC reconstructs a communication graph by re-profiling, re-solving the
optimization, and setting up fresh transmission contexts — the job never
stops. NCCL requires terminating the job: checkpoint, relaunch, rebuild
the process group, restore. The paper reports 74–91 % time saved and a
constant ~1.2 s topology-inference cost paid once at job start.

Our AdapCC costs are measured (simulated profiling/context time + real
optimizer wall-clock); the NCCL restart is priced by the documented cost
model in :mod:`repro.runtime.reconstruction`.
"""

import pytest

from repro.bench import Table
from repro.bench.harness import BenchEnvironment
from repro.hardware import make_homo_cluster
from repro.runtime.context import ContextManager
from repro.runtime.reconstruction import adapcc_reconstruction_cost, nccl_restart_cost
from repro.synthesis import Primitive
from repro.topology import Detector
from repro.training import VGG16

SCALES = [2, 4, 6, 8]  # number of 4-GPU servers


def measure():
    rows = []
    for servers in SCALES:
        env = BenchEnvironment(make_homo_cluster(num_servers=servers), "adapcc")
        backend = env.backend

        # One reconstruction: profile + solve + context set-up.
        start = env.sim.now
        backend.refresh()
        profiling_seconds = env.sim.now - start
        strategy = backend.plan(Primitive.ALLREDUCE, VGG16.tensor_bytes, env.ranks)
        solve_seconds = backend.synthesizer.last_report.solve_seconds
        contexts = ContextManager(env.cluster)
        setup_seconds = contexts.setup_all(contexts.plan_contexts(strategy))

        adapcc = adapcc_reconstruction_cost(profiling_seconds, solve_seconds, setup_seconds)
        nccl = nccl_restart_cost(world_size=len(env.ranks), model_bytes=VGG16.tensor_bytes)

        # Topology inference happens once at job start (constant per scale,
        # instances probe concurrently).
        detect_env = BenchEnvironment(make_homo_cluster(num_servers=servers), "nccl")
        t0 = detect_env.sim.now
        Detector(detect_env.cluster).detect()
        detection_seconds = detect_env.sim.now - t0

        rows.append((servers, adapcc, nccl, detection_seconds))
    return rows


def test_fig19c_graph_reconstruction_overhead(run_once):
    rows = run_once(measure)

    table = Table(
        "Fig. 19c — graph reconstruction cost (s) vs scale",
        ["adapcc", "nccl-restart", "saved", "topology-inference"],
    )
    savings = []
    detections = []
    for servers, adapcc, nccl, detection in rows:
        saved = 1.0 - adapcc.total / nccl.total
        savings.append(saved)
        detections.append(detection)
        table.add_row(
            f"{servers} servers / {servers * 4} GPUs",
            [adapcc.total, nccl.total, saved, detection],
        )
    table.show()
    print(f"time saved: {min(savings) * 100:.0f}-{max(savings) * 100:.0f} % (paper: 74-91 %)")
    print(
        f"topology inference: {min(detections):.2f}-{max(detections):.2f} s, "
        "constant in scale (paper: 1.2 s)"
    )

    # Shapes: large savings at every scale; detection cost ~constant.
    assert all(s > 0.6 for s in savings)
    assert max(detections) < 2.0 * min(detections)
    # AdapCC reconstruction stays sub-second-ish even at the largest scale.
    assert rows[-1][1].total < rows[-1][2].total
