"""The Fig. 11–13 measurement grid, one cell at a time.

``python -m repro.bench`` and the parallel sweep runner
(:mod:`repro.bench.sweep`) both walk the same grid: three figures ×
(configuration × backend) cells, 52 in the full run. This module owns the
grid definition and the per-cell measurement so that a cell means exactly
the same thing whether it runs inline, serially in canonical order, or in
a spawned worker process — each cell builds its own
:class:`~repro.bench.harness.BenchEnvironment` (fresh simulator, cluster,
backend), so cells are embarrassingly parallel and their results are
independent of which process runs them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bench.harness import measure_algorithm_bandwidth
from repro.bench.report import geometric_mean
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.synthesis.strategy import Primitive

TENSOR_BYTES = 64 * MB

#: The five paper configurations shared by Fig. 11/12 (Fig. 13 drops the
#: largest one and Blink, which lacks multi-server AlltoAll).
CONFIG_RECIPES: Dict[str, Tuple[List[int], Optional[List[int]]]] = {
    "A100:(4,4)": ([4, 4], None),
    "A100:(4,4,4,4)": ([4, 4, 4, 4], None),
    "A100:(4,4) V100:(4,4)": ([4, 4], [4, 4]),
    "A100:(4,4,4,4) V100:(4,4)": ([4, 4, 4, 4], [4, 4]),
    "A100:(2,2) V100:(4,4)": ([2, 2], [4, 4]),
}

FIGURES: Dict[str, Dict] = {
    "fig11": {
        "title": "Fig. 11 — Reduce Algo.bw (GB/s), 64 MB float tensor",
        "primitive": Primitive.REDUCE,
        "configs": list(CONFIG_RECIPES),
        "backends": ["adapcc", "nccl", "msccl", "blink"],
        "max_chunks": None,
    },
    "fig12": {
        "title": "Fig. 12 — AllReduce Algo.bw (GB/s), 64 MB float tensor",
        "primitive": Primitive.ALLREDUCE,
        "configs": list(CONFIG_RECIPES),
        "backends": ["adapcc", "nccl", "msccl", "blink"],
        "max_chunks": None,
    },
    "fig13": {
        "title": "Fig. 13 — AlltoAll Algo.bw (GB/s), 64 MB per rank",
        "primitive": Primitive.ALLTOALL,
        "configs": [c for c in CONFIG_RECIPES if c != "A100:(4,4,4,4) V100:(4,4)"],
        "backends": ["adapcc", "nccl", "msccl"],
        "max_chunks": 4,
    },
}

#: Default regression tolerance of ``--check``: a cell may lose up to
#: this fraction of its baseline bandwidth before the gate fails.
DEFAULT_TOLERANCE = 0.10

#: Name stem of the aggregate payload (file: ``BENCH_fig11_13.json``).
AGGREGATE_NAME = "fig11_13"


def cell_key(config: str, backend: str) -> str:
    """The JSON key of one measurement cell within its figure block."""
    return f"{config}|{backend}"


def cell_id(figure: str, config: str, backend: str) -> str:
    """Globally unique id of one cell (used by wall-clock budgets)."""
    return f"{figure}|{config}|{backend}"


def figure_plan(name: str, quick: bool = False) -> Tuple[List[str], List[str]]:
    """The (configs, backends) a run of ``name`` measures."""
    spec = FIGURES[name]
    configs = spec["configs"][:1] if quick else spec["configs"]
    backends = spec["backends"][:2] if quick else spec["backends"]
    return configs, backends


def iter_cells(
    names: Sequence[str], quick: bool = False
) -> Iterator[Tuple[str, str, str]]:
    """Every ``(figure, config, backend)`` cell, in canonical serial order.

    This order — figures as requested, configurations then backends in
    grid order — is the order a serial run measures and writes payloads
    in, and the order the parallel sweep merges results back into.
    """
    for name in names:
        configs, backends = figure_plan(name, quick=quick)
        for config in configs:
            for backend in backends:
                yield name, config, backend


def measure_cell(figure: str, config: str, backend: str) -> float:
    """Measure one grid cell, returning its Algo.bw in bytes/second."""
    spec = FIGURES[figure]
    a100, v100 = CONFIG_RECIPES[config]
    specs = make_config(a100, v100) if v100 else make_config(a100)
    return measure_algorithm_bandwidth(
        specs,
        backend,
        spec["primitive"],
        TENSOR_BYTES,
        max_chunks=spec["max_chunks"],
    )


def measure_cell_detail(
    figure: str, config: str, backend: str
) -> Tuple[float, Optional[str]]:
    """Measure one cell with critical-path attribution.

    Runs the cell under a fresh enabled telemetry hub and feeds the
    exported spans through :func:`repro.critpath.analyze_run` (inferred
    mode). Returns ``(bandwidth_bps, top_bottleneck_link)``, the link
    ``None`` when the run exported no chunk spans. Telemetry never
    advances the sim clock, so the bandwidth is identical to a bare
    :func:`measure_cell`.
    """
    # Local imports: repro.critpath pulls in the analysis machinery, which
    # itself imports the bench harness.
    from repro.critpath import analyze_run
    from repro.telemetry.core import TelemetryHub, set_hub
    from repro.telemetry.export import parse_jsonl, to_jsonl

    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        bandwidth = measure_cell(figure, config, backend)
    finally:
        set_hub(previous)
    report = analyze_run(parse_jsonl(to_jsonl(fresh)))
    top = report["top_link"]
    return bandwidth, (top["name"] if top else None)


def figure_block(
    name: str,
    cells: Dict[str, float],
    quick: bool = False,
    bottlenecks: Optional[Dict[str, Optional[str]]] = None,
) -> Dict:
    """Assemble one figure's aggregate block from its measured cells.

    ``bottlenecks`` maps :func:`cell_key` to the cell's critical-path top
    link (from :func:`measure_cell_detail`); it rides along as a sibling
    of ``cells`` so the perf baseline also records *where* each cell's
    time went.
    """
    spec = FIGURES[name]
    configs, backends = figure_plan(name, quick=quick)
    speedups: Dict[str, float] = {}
    reference = backends[0]
    for baseline in backends[1:]:
        ratios = [
            cells[cell_key(config, reference)] / cells[cell_key(config, baseline)]
            for config in configs
        ]
        speedups[baseline] = geometric_mean(ratios)
    return {
        "title": spec["title"],
        "primitive": spec["primitive"].value,
        "configs": configs,
        "backends": backends,
        "cells": cells,
        "bottlenecks": dict(bottlenecks or {}),
        "geomean_speedups": speedups,
    }


def measure_figure(name: str, quick: bool = False) -> Dict:
    """Measure one figure's cells serially; returns its aggregate block."""
    cells: Dict[str, float] = {}
    bottlenecks: Dict[str, Optional[str]] = {}
    for _fig, config, backend in iter_cells([name], quick=quick):
        key = cell_key(config, backend)
        cells[key], bottlenecks[key] = measure_cell_detail(name, config, backend)
    return figure_block(name, cells, quick=quick, bottlenecks=bottlenecks)


def assemble_payload(
    figures: Dict[str, Dict], quick: bool = False
) -> Dict:
    """Wrap per-figure blocks into the aggregate payload envelope."""
    return {
        "kind": "fig11_13_aggregate",
        "tensor_bytes": TENSOR_BYTES,
        "quick": quick,
        "figures": figures,
    }


def measure_all(figures: Sequence[str], quick: bool = False) -> Dict:
    """Measure the selected figures serially into one aggregate payload."""
    blocks: Dict[str, Dict] = {}
    for name in figures:
        blocks[name] = measure_figure(name, quick=quick)
    return assemble_payload(blocks, quick=quick)


def measure_fleet(seed: int = 11) -> Dict:
    """The fleet observability cell: the canonical two-job overlap replay.

    Not a bandwidth cell — it rides the full bench run as an additive
    top-level ``fleet`` block (``compare_payloads`` only walks
    ``figures``, so older baselines still gate cleanly) and records the
    multi-job numbers the fleet layer is supposed to hold: per-job
    goodput, the Jain fairness index, and attribution accuracy against
    the workload generator's planted ground truth. Deterministic, like
    every other cell.
    """
    from repro.fleet import canonical_overlap_workload, replay

    report = replay(canonical_overlap_workload(seed=seed)).report
    return {
        "seed": seed,
        "goodput": {
            name: row["goodput"] for name, row in report["jobs"].items()
        },
        "jain": report["fairness"]["jain"],
        "attribution_accuracy": {
            "precision": report["accuracy"]["precision"],
            "recall": report["accuracy"]["recall"],
        },
    }


def compare_payloads(
    current: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regressions of ``current`` against ``baseline``, as human lines.

    A regression is a cell whose bandwidth fell below ``(1 - tolerance)``
    of the baseline value, or a baseline cell that is missing from the
    current run (silently dropping a measurement must not pass the gate).
    Cells new in ``current`` are fine — the baseline just needs updating.
    """
    problems: List[str] = []
    for name, figure in baseline.get("figures", {}).items():
        current_figure = current.get("figures", {}).get(name)
        if current_figure is None:
            problems.append(f"{name}: missing from the current run")
            continue
        for key, reference in figure.get("cells", {}).items():
            measured = current_figure.get("cells", {}).get(key)
            if measured is None:
                problems.append(f"{name}/{key}: cell missing from the current run")
            elif measured < reference * (1.0 - tolerance):
                problems.append(
                    f"{name}/{key}: {measured / 1e9:.3f} GB/s is "
                    f"{(1.0 - measured / reference) * 100:.1f}% below the "
                    f"baseline {reference / 1e9:.3f} GB/s "
                    f"(tolerance {tolerance * 100:.0f}%)"
                )
    return problems
