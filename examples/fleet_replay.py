"""Fleet-level observability: two jobs collide on one fabric, attributed.

The canonical multi-job overlap scenario. Job *alpha* (ranks 0,1,4,5)
iterates a steady periodic AllReduce; job *beta* (ranks 2,3,6,7) sits
idle, then fires a burst of back-to-back AllReduces mid-way through
alpha's schedule. Both replay through one shared
:class:`~repro.simulation.fluid.FluidNetwork`, so the burst halves
alpha's share of the inter-server links — alpha is never told. Each job
has its own labeled telemetry hub and
:class:`~repro.observe.watchdog.Watchdog`; when alpha's detectors flag
the sustained slowdown, the fleet runner attributes the verdict to the
job whose wire traffic actually overlapped the implicated link, and
scores that attribution against the workload generator's planted ground
truth.

The per-job streams merge collision-free into ``fleet_replay.jsonl``
(every record stamped with its job label); the run ends by linting that
export with the ``--fleet`` analysis pass.

Run:  python examples/fleet_replay.py
"""

from repro.analysis.passes import run_fleet_pass
from repro.fleet import canonical_overlap_workload, replay

SEED = 11


def main() -> int:
    print("== Two-job fleet replay with interference attribution ==\n")
    workload = canonical_overlap_workload(seed=SEED)
    (truth,) = workload.ground_truth
    print(
        f"planted ground truth: {truth.aggressor} bursts against "
        f"{truth.victim} during [{truth.start:.2f}s, {truth.end:.2f}s]\n"
    )

    result = replay(workload)
    report = result.report

    for name in sorted(report["jobs"]):
        row = report["jobs"][name]
        print(
            f"job {name}: {row['ops_completed']}/{row['ops_total']} ops, "
            f"{row['bytes_completed']:.3g} bytes in {row['makespan']:.3f}s "
            f"({row['goodput']:.3g} B/s), {row['verdicts']} verdict(s)"
        )
    fairness = report["fairness"]
    print(
        f"fairness: Jain index {fairness['jain']:.4f} over "
        f"{fairness['n']} jobs\n"
    )

    for record in report["attributions"]:
        print(
            f"iteration {record['iteration']}: {record['victim']}'s "
            f"{record['kind']} verdict attributed to {record['aggressor']} "
            f"on {record['link']} ({record['overlap_seconds']:.3f}s of "
            f"overlapping traffic)"
        )
    accuracy = report["accuracy"]
    print(
        f"attribution vs ground truth: precision {accuracy['precision']:.2f}, "
        f"recall {accuracy['recall']:.2f}"
    )

    path = "fleet_replay.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.merged_jsonl)
    print(f"\nmerged fleet stream -> {path}")

    violations = run_fleet_pass(target=path)
    print(
        f"--fleet lint of {path}: "
        + ("clean" if not violations else f"{len(violations)} violation(s)")
    )
    for violation in violations:
        print(f"  {violation.check} @ {violation.subject}: {violation.detail}")
    print(f"re-lint it anytime:  python -m repro.analysis --fleet {path}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
