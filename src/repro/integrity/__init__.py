"""repro.integrity: end-to-end data-plane integrity (ISSUE 9).

The chaos layer can silently corrupt payloads in flight
(:class:`~repro.chaos.plan.CorruptionFault`); this package is the defence:

* **detect** — per-hop CRC32 traffic-unit checksums stamped at send and
  verified at receive inside the chunk pipeline (via the process-global
  :func:`~repro.integrity.channel.data_plane` tap), plus an
  end-of-collective cross-rank *digest exchange* (a linear sum digest:
  every AllReduce output's digest must equal the sum of the contributors'
  input digests) that catches corruption the hop checksums cannot see,
  e.g. a bit flipped inside an aggregation buffer after the wire bytes
  were verified;
* **localize** — a binary-search re-probe protocol
  (:class:`~repro.integrity.localize.BinarySearchLocalizer`) narrows a
  corruption verdict to the guilty link in at most
  ``max(1, ceil(log2(#implicated links)))`` targeted probe rounds, and
  only ever names a link whose *own* probe came back corrupted (a clean
  link can never be convicted);
* **heal** — the :class:`~repro.integrity.monitor.IntegrityMonitor`'s
  repeat-offender ledger convicts a link after ``conviction_threshold``
  independent localizations, the link is quarantined (capacity masked in
  :class:`~repro.topology.graph.LogicalTopology`), a fresh strategy is
  committed through the recovery control plane's two-phase
  prepare/commit transition, and the corrupted iteration is retried so
  the final result is bitwise-equal to the fault-free run.

Everything is seeded and advances on the sim clock, so same-seed runs
emit byte-identical integrity logs and telemetry; ``python -m
repro.analysis --integrity`` lints the causal chain and scores
localization against the chaos ground truth.
"""

from repro.integrity.channel import (
    SITE_KERNEL,
    SITE_WIRE,
    DataPlane,
    data_plane,
    reset_data_plane,
)
from repro.integrity.checksums import payload_checksum, payload_digest
from repro.integrity.localize import BinarySearchLocalizer, LocalizationResult
from repro.integrity.monitor import (
    CHECKSUM_RECORD,
    CONVICTION_RECORD,
    DIGEST_RECORD,
    PROBE_ROUND_RECORD,
    QUARANTINE_RECORD,
    IntegrityConfig,
    IntegrityLog,
    IntegrityMonitor,
    strategy_link_names,
)

__all__ = [
    "BinarySearchLocalizer",
    "CHECKSUM_RECORD",
    "CONVICTION_RECORD",
    "DIGEST_RECORD",
    "DataPlane",
    "IntegrityConfig",
    "IntegrityLog",
    "IntegrityMonitor",
    "LocalizationResult",
    "PROBE_ROUND_RECORD",
    "QUARANTINE_RECORD",
    "SITE_KERNEL",
    "SITE_WIRE",
    "data_plane",
    "payload_checksum",
    "payload_digest",
    "reset_data_plane",
    "strategy_link_names",
]
