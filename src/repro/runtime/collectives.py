"""High-level collective execution: strategies × payloads → results.

Each ``run_*`` function executes one collective invocation on the cluster
simulator, driving it until completion, and returns a
:class:`CollectiveResult` with per-rank output arrays and timing. Inputs
are numpy arrays (one per participant rank); outputs are bit-exact
collective results, which is what lets the test suite verify AllReduce
correctness and the relay machinery verify phase-1+phase-2 equivalence.

Straggler/relay hooks:

* ``ready_times`` — per-rank delays (seconds from the call) before the
  rank's tensor is available; sources publish chunks only after that.
* ``active_ranks`` — ranks contributing data. Non-active participants are
  the paper's *relays*: their flows are dropped (their tensors are not
  aggregated) but their GPUs still appear as path intermediates, and in
  AllReduce they still receive the broadcast stage's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import CommunicatorError
from repro.runtime.executor import (
    MODE_GROUPED,
    MODE_INDEPENDENT,
    MODE_MERGE,
    ChunkPipeline,
)
from repro.runtime.partition import (
    check_uniform_inputs,
    chunk_ranges,
    elements_for_bytes,
    partition_ranges,
)
from repro.synthesis.strategy import Flow, Primitive, Strategy
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology


@dataclass
class CollectiveResult:
    """Outputs and timing of one executed collective."""

    outputs: Dict[int, np.ndarray]
    started: float
    finished: float
    #: Simulated time at which each participating rank's tensor was ready.
    ready_at: Dict[int, float] = field(default_factory=dict)
    #: Late-join bookkeeping: rank -> element ranges of its tensor that DID
    #: get folded into this (phase 1) collective mid-flight (Sec. IV-C).
    included_chunks: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall completion time including any straggler waiting."""
        return self.finished - self.started

    def algorithm_bandwidth(self, tensor_bytes: float) -> float:
        """The paper's Algo.bw: data size / completion time."""
        if self.duration <= 0:
            return float("inf")
        return tensor_bytes / self.duration


class _Run:
    """Shared plumbing for one collective execution."""

    def __init__(
        self,
        topology: LogicalTopology,
        strategy: Strategy,
        inputs: Dict[int, np.ndarray],
        active_ranks: Optional[Iterable[int]] = None,
        ready_times: Optional[Dict[int, float]] = None,
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = None,
    ):
        if byte_scale <= 0:
            raise CommunicatorError("byte_scale must be positive")
        if max_chunks is not None and max_chunks < 1:
            raise CommunicatorError("max_chunks must be >= 1")
        #: Optional cap on simulated chunks per sub-collective; pipelining
        #: effects saturate beyond a few tens of chunks, so training loops
        #: cap this for speed while micro-benchmarks keep full granularity.
        self.max_chunks = max_chunks
        self.topology = topology
        self.strategy = strategy
        self.sim = topology.cluster.sim
        self.inputs = inputs
        self.length, self.dtype = check_uniform_inputs(inputs)
        #: Simulated bytes per element. byte_scale > 1 lets the trainer move
        #: model-sized traffic (hundreds of MB) while keeping payload arrays
        #: small; timing uses scaled bytes, payloads stay bit-exact.
        self.byte_scale = byte_scale
        self.itemsize = np.dtype(self.dtype).itemsize * byte_scale
        missing = set(strategy.participants) - set(inputs)
        if missing:
            raise CommunicatorError(f"missing input tensors for ranks {sorted(missing)}")
        self.active = (
            set(strategy.participants) if active_ranks is None else set(active_ranks)
        )
        if not self.active <= set(strategy.participants):
            raise CommunicatorError("active ranks must be a subset of participants")
        delays = ready_times or {}
        self.started = self.sim.now
        self.ready_at = {
            rank: self.started + max(0.0, delays.get(rank, 0.0))
            for rank in strategy.participants
        }
        self._ready_events = {
            rank: self.sim.timeout(self.ready_at[rank] - self.started)
            for rank in strategy.participants
        }
        self._span = None
        # Captured at construction so a deferred end_trace (fired from a
        # completion callback) lands on the hub that opened the span even
        # if the process-global hub has been swapped since — fleet replay
        # swaps a per-job hub around each launch.
        self._telemetry = telemetry_hub()

    def begin_trace(self, name: str) -> "_Run":
        """Open one ``category="collective"`` span for this invocation."""
        telemetry = self._telemetry
        if telemetry.enabled:
            self._span = telemetry.begin(
                name,
                self.started,
                category="collective",
                track="collectives",
                participants=len(self.strategy.participants),
                active=len(self.active),
                bytes=self.length * self.itemsize,
                subcollectives=len(self.strategy.subcollectives),
            )
        return self

    def end_trace(self, finished: float) -> None:
        """Close the collective span and record latency metrics."""
        span = self._span
        if span is None:
            return
        self._span = None
        telemetry = self._telemetry
        telemetry.end(span, finished)
        telemetry.metrics.histogram(
            "collective_seconds", "wall time of executed collectives"
        ).observe(finished - self.started, primitive=span.name)
        telemetry.metrics.counter(
            "collectives_total", "collective invocations executed"
        ).inc(primitive=span.name)

    def ready_event(self, rank: int):
        """Event that fires when ``rank``'s tensor becomes available."""
        return self._ready_events[rank]

    def sc_partitions(self) -> List[Tuple[int, int]]:
        """Element range of each sub-collective's partition."""
        return partition_ranges(
            self.length, [sc.size for sc in self.strategy.subcollectives]
        )

    def chunks_for(self, sc, start: int, end: int) -> List[Tuple[int, int]]:
        """Chunk element ranges tiling one sub-collective's partition."""
        chunk_elems = elements_for_bytes(sc.chunk_size, self.itemsize)
        if self.max_chunks is not None:
            span = max(0, end - start)
            floor_elems = -(-span // self.max_chunks) if span else 1
            chunk_elems = max(chunk_elems, floor_elems)
        return chunk_ranges(start, end, chunk_elems)

    def active_flows(self, sc) -> List[Tuple[int, Flow]]:
        """(index, flow) pairs whose source rank is active."""
        return [
            (idx, flow)
            for idx, flow in enumerate(sc.flows)
            if flow.src.index in self.active
        ]

    def input_chunk_source(self, chunks: List[Tuple[int, int]], flows_by_idx):
        """Chunk source reading from a rank's input tensor once it is ready."""

        def source(flow_idx: int, k: int):
            flow = flows_by_idx[flow_idx]
            rank = flow.src.index
            start, end = chunks[k]
            return self.ready_event(rank), lambda: self.inputs[rank][start:end]

        return source

    def finish(self, completion_events) -> float:
        """Drive the simulator until every event completes; returns now."""
        done = self.sim.all_of(list(completion_events))
        self.sim.run_until_complete(done)
        return self.sim.now


def _chunk_bytes(chunks: List[Tuple[int, int]], itemsize: int) -> List[float]:
    return [(end - start) * itemsize for start, end in chunks]


# -- Reduce ---------------------------------------------------------------------------


def run_reduce(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    active_ranks: Optional[Iterable[int]] = None,
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> CollectiveResult:
    """Execute a Reduce strategy; the root rank receives the elementwise sum
    of all active ranks' tensors."""
    if strategy.primitive is not Primitive.REDUCE:
        raise CommunicatorError(f"run_reduce got a {strategy.primitive.value} strategy")
    run = _Run(topology, strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks)
    root_rank = strategy.subcollectives[0].root.index
    if root_rank not in run.active:
        raise CommunicatorError("the reduce root must be an active rank")
    run.begin_trace("reduce")

    output = np.zeros(run.length, dtype=run.dtype)
    pipelines = []
    events = []
    for sc, (start, end) in zip(strategy.subcollectives, run.sc_partitions()):
        chunks = run.chunks_for(sc, start, end)
        flows = run.active_flows(sc)
        if not chunks:
            continue
        pipeline = ChunkPipeline(
            topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=_chunk_bytes(chunks, run.itemsize),
            chunk_source=run.input_chunk_source(chunks, dict(flows)),
            mode=MODE_MERGE,
            aggregates_at=sc.aggregates_at,
            tag=f"reduce:m{sc.index}",
        )
        events.append(pipeline.start())
        pipelines.append((sc, start, end, pipeline))
    # The final aggregation also needs the root's own tensor.
    events.append(run.ready_event(root_rank))
    finished = run.finish(events)
    run.end_trace(finished)

    for sc, start, end, pipeline in pipelines:
        root_node = sc.root
        if run.active_flows(sc):
            output[start:end] = pipeline.gather(("agg", root_node), root_node)
        else:
            output[start:end] = inputs[root_rank][start:end]
        # Root's own contribution when it had no aggregator (no active flows
        # case handled above; with flows the aggregator folded it in via its
        # own flow — except the root has no flow, so add it here).
        if run.active_flows(sc):
            output[start:end] += inputs[root_rank][start:end]
    return CollectiveResult(
        outputs={root_rank: output},
        started=run.started,
        finished=finished,
        ready_at=run.ready_at,
    )


# -- Broadcast ------------------------------------------------------------------------


def run_broadcast(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> CollectiveResult:
    """Execute a Broadcast strategy; every participant receives the root's
    tensor."""
    if strategy.primitive is not Primitive.BROADCAST:
        raise CommunicatorError(f"run_broadcast got a {strategy.primitive.value} strategy")
    run = _Run(topology, strategy, inputs, None, ready_times, byte_scale, max_chunks)
    run.begin_trace("broadcast")
    root_rank = strategy.subcollectives[0].root.index

    pipelines = []
    events = []
    for sc, (start, end) in zip(strategy.subcollectives, run.sc_partitions()):
        chunks = run.chunks_for(sc, start, end)
        flows = list(enumerate(sc.flows))
        if not chunks or not flows:
            continue
        pipeline = ChunkPipeline(
            topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=_chunk_bytes(chunks, run.itemsize),
            chunk_source=run.input_chunk_source(chunks, dict(flows)),
            mode=MODE_GROUPED,
            tag=f"bcast:m{sc.index}",
        )
        events.append(pipeline.start())
        pipelines.append((sc, start, end, pipeline))
    finished = run.finish(events)
    run.end_trace(finished)

    outputs: Dict[int, np.ndarray] = {
        rank: np.zeros(run.length, dtype=run.dtype) for rank in strategy.participants
    }
    outputs[root_rank][:] = inputs[root_rank]
    for sc, start, end, pipeline in pipelines:
        for _idx, flow in enumerate(sc.flows):
            dst_rank = flow.dst.index
            outputs[dst_rank][start:end] = pipeline.gather(("bcast", sc.root), flow.dst)
    return CollectiveResult(
        outputs=outputs, started=run.started, finished=finished, ready_at=run.ready_at
    )


# -- AllReduce ------------------------------------------------------------------------


def run_allreduce(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    active_ranks: Optional[Iterable[int]] = None,
    ready_times: Optional[Dict[int, float]] = None,
    pipeline_stages: bool = True,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
    late_ranks: Optional[Iterable[int]] = None,
) -> CollectiveResult:
    """Execute an AllReduce strategy (reduce stage + pipelined reversed
    broadcast stage, Sec. V-B "multi-stage parallelism").

    With ``active_ranks`` a strict subset, this is the paper's *phase 1*:
    relays forward but do not contribute, and every participant — relay or
    not — receives the partial sum over active ranks.

    ``pipeline_stages=False`` inserts a barrier between the reduce and
    broadcast stages (each broadcast chunk waits for the whole reduce to
    land) — used to model baselines like Blink whose two stages are "not
    effectively pipelined" (Sec. VI-C).
    """
    if strategy.primitive is not Primitive.ALLREDUCE:
        raise CommunicatorError(f"run_allreduce got a {strategy.primitive.value} strategy")
    run = _Run(topology, strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks)
    run.begin_trace("allreduce")
    events, stages = _build_allreduce(run, strategy, inputs, pipeline_stages, late_ranks)
    finished = run.finish(events)
    run.end_trace(finished)
    outputs = _collect_allreduce_outputs(run, strategy, inputs, stages)
    return CollectiveResult(
        outputs=outputs,
        started=run.started,
        finished=finished,
        ready_at=run.ready_at,
        included_chunks=_collect_included(strategy, stages),
    )


def _build_allreduce(
    run: "_Run",
    strategy: Strategy,
    inputs,
    pipeline_stages: bool,
    late_ranks: Optional[Iterable[int]] = None,
):
    """Launch the reduce+broadcast pipelines; returns (events, stages).

    ``late_ranks`` are non-active participants whose tensors may become
    ready mid-collective: their chunks join the ongoing aggregation at
    their own GPU opportunistically (late join, Sec. IV-C), tracked per
    chunk so phase 2 only carries the rest."""
    topology = run.topology
    late = set(late_ranks or ()) - run.active
    stages = []
    events = []
    for sc, (start, end) in zip(strategy.subcollectives, run.sc_partitions()):
        chunks = run.chunks_for(sc, start, end)
        flows = run.active_flows(sc)
        root_node = sc.root
        root_rank = root_node.index
        root_active = root_rank in run.active
        if not chunks:
            continue
        if not flows and not root_active:
            # Nothing reaches this partition's root: the partial sum over
            # the active set is zero here, which the zero-initialised
            # outputs already represent.
            continue
        chunk_bytes = _chunk_bytes(chunks, run.itemsize)

        all_flows_by_idx = dict(enumerate(sc.flows))
        reduce_pipeline = ChunkPipeline(
            topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=chunk_bytes,
            chunk_source=run.input_chunk_source(chunks, all_flows_by_idx),
            mode=MODE_MERGE,
            aggregates_at=sc.aggregates_at,
            tag=f"allreduce-red:m{sc.index}",
        )
        reduce_pipeline.optional_flows = {
            idx: flow
            for idx, flow in enumerate(sc.flows)
            if flow.src.index in late
        }
        events.append(reduce_pipeline.start())

        # Root's own contribution (it has no flow of its own) plus the
        # reduce stage's output feed the broadcast stage chunk by chunk —
        # this is the stage pipelining: a chunk is broadcast as soon as its
        # aggregation lands, not when the whole reduce finishes.
        if flows:
            agg_slots = reduce_pipeline.output_slots(("agg", root_node), root_node)
        else:
            agg_slots = None

        def stage_source(
            flow_idx,
            k,
            _chunks=chunks,
            _slots=agg_slots,
            _root=root_rank,
            _root_active=root_active,
        ):
            start_k, end_k = _chunks[k]
            if _slots is None:
                # Root is the only active rank in this sub-collective.
                return run.ready_event(_root), lambda: inputs[_root][start_k:end_k]
            slot = _slots[k]
            # With stage pipelining a chunk broadcasts as soon as it lands;
            # without, every chunk waits for the reduce stage's last chunk.
            gate = slot.event if pipeline_stages else _slots[-1].event
            if _root_active:
                return gate, lambda: slot.payload + inputs[_root][start_k:end_k]
            # A relay root aggregates received data only (its own tensor is
            # not ready — it joins in phase 2).
            return gate, lambda: slot.payload

        broadcast_flows = [
            (idx, Flow(flow.dst, flow.src, list(reversed(flow.path))))
            for idx, flow in enumerate(sc.flows)
        ]
        broadcast_pipeline = ChunkPipeline(
            topology,
            broadcast_flows,
            num_chunks=len(chunks),
            chunk_bytes=chunk_bytes,
            chunk_source=stage_source,
            mode=MODE_GROUPED,
            tag=f"allreduce-bc:m{sc.index}",
        )
        events.append(broadcast_pipeline.start())
        if root_active:
            events.append(run.ready_event(root_rank))
        stages.append((sc, start, end, broadcast_pipeline, reduce_pipeline, chunks))
    return events, stages


def _collect_allreduce_outputs(run: "_Run", strategy: Strategy, inputs, stages):
    """Assemble per-rank outputs after the pipelines have completed."""
    outputs: Dict[int, np.ndarray] = {
        rank: np.zeros(run.length, dtype=run.dtype) for rank in strategy.participants
    }
    for sc, start, end, pipeline, _reduce_pipeline, _chunks in stages:
        root_node = sc.root
        if not sc.flows:
            outputs[root_node.index][start:end] = inputs[root_node.index][start:end]
            continue
        for _idx, flow in enumerate(sc.flows):
            # Broadcast flows run root -> original source.
            dst_rank = flow.src.index
            outputs[dst_rank][start:end] = pipeline.gather(("bcast", root_node), flow.src)
        root_chunks = pipeline.output_slots(("bcast", root_node), root_node)
        outputs[root_node.index][start:end] = np.concatenate(
            [slot.payload for slot in root_chunks]
        )
    return outputs


def _collect_included(strategy: Strategy, stages) -> Dict[int, List[Tuple[int, int]]]:
    """Per-rank element ranges that late-joined the reduce stage."""
    included: Dict[int, List[Tuple[int, int]]] = {}
    for sc, _start, _end, _bcast, reduce_pipeline, chunks in stages:
        for flow_idx, k in reduce_pipeline.included_optional:
            rank = sc.flows[flow_idx].src.index
            included.setdefault(rank, []).append(chunks[k])
    for ranges in included.values():
        ranges.sort()
    return included


class PendingCollective:
    """A launched-but-not-awaited collective (for overlap/bucketing).

    ``done`` is the completion event; ``result()`` assembles the
    :class:`CollectiveResult` once the event has been processed. Multiple
    pending collectives launched on the same simulator overlap — the
    mechanism behind DDP-style gradient bucketing (Fig. 3a's backward
    passes overlapping earlier buckets' AllReduce).
    """

    def __init__(
        self,
        run: "_Run",
        done,
        finalize: Callable[[], Dict[int, np.ndarray]],
        included: Optional[Callable[[], Dict]] = None,
    ):
        self._run = run
        self.done = done
        self._finalize = finalize
        self._included = included or (lambda: {})

    @property
    def sim(self):
        """The simulator this collective runs on."""
        return self._run.sim

    def result(self) -> CollectiveResult:
        """Assemble outputs and timing; valid once ``done`` has fired."""
        if not self.done.processed:
            raise CommunicatorError("collective has not completed yet")
        return CollectiveResult(
            outputs=self._finalize(),
            started=self._run.started,
            finished=self._run.sim.now,
            ready_at=self._run.ready_at,
            included_chunks=self._included(),
        )


def launch_allreduce(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    active_ranks: Optional[Iterable[int]] = None,
    ready_times: Optional[Dict[int, float]] = None,
    pipeline_stages: bool = True,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
    late_ranks: Optional[Iterable[int]] = None,
) -> PendingCollective:
    """Non-blocking AllReduce: start the pipelines and return a handle.

    Semantics match :func:`run_allreduce`; the caller drives the simulator
    (``sim.run_until_complete(pending.done)``) and then reads
    ``pending.result()``. Launching several collectives before driving
    overlaps them on the fabric — gradient bucketing uses this.
    """
    if strategy.primitive is not Primitive.ALLREDUCE:
        raise CommunicatorError(
            f"launch_allreduce got a {strategy.primitive.value} strategy"
        )
    run = _Run(topology, strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks)
    run.begin_trace("allreduce")
    events, stages = _build_allreduce(run, strategy, inputs, pipeline_stages, late_ranks)
    done = run.sim.all_of(list(events))
    done.add_callback(lambda _evt: run.end_trace(run.sim.now))

    def finalize() -> Dict[int, np.ndarray]:
        return _collect_allreduce_outputs(run, strategy, inputs, stages)

    return PendingCollective(
        run, done, finalize, included=lambda: _collect_included(strategy, stages)
    )


# -- AllGather ------------------------------------------------------------------------


def run_allgather(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> CollectiveResult:
    """Execute AllGather: every rank ends with the concatenation of all
    ranks' shards, in rank order. One broadcast sub-collective per rank
    (Sec. IV-D)."""
    if strategy.primitive is not Primitive.ALLGATHER:
        raise CommunicatorError(f"run_allgather got a {strategy.primitive.value} strategy")
    run = _Run(topology, strategy, inputs, None, ready_times, byte_scale, max_chunks)
    run.begin_trace("allgather")
    ranks = sorted(strategy.participants)
    offsets = {rank: pos * run.length for pos, rank in enumerate(ranks)}

    pipelines = []
    events = []
    for sc in strategy.subcollectives:
        chunks = run.chunks_for(sc, 0, run.length)  # each shard in full
        flows = list(enumerate(sc.flows))
        if not chunks or not flows:
            continue
        pipeline = ChunkPipeline(
            topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=_chunk_bytes(chunks, run.itemsize),
            chunk_source=run.input_chunk_source(chunks, dict(flows)),
            mode=MODE_GROUPED,
            tag=f"allgather:m{sc.index}",
        )
        events.append(pipeline.start())
        pipelines.append((sc, pipeline))
    finished = run.finish(events)
    run.end_trace(finished)

    total = run.length * len(ranks)
    outputs = {rank: np.zeros(total, dtype=run.dtype) for rank in ranks}
    for rank in ranks:
        outputs[rank][offsets[rank] : offsets[rank] + run.length] = inputs[rank]
    for sc, pipeline in pipelines:
        src_rank = sc.root.index
        for _idx, flow in enumerate(sc.flows):
            dst_rank = flow.dst.index
            outputs[dst_rank][offsets[src_rank] : offsets[src_rank] + run.length] = (
                pipeline.gather(("bcast", sc.root), flow.dst)
            )
    return CollectiveResult(
        outputs=outputs, started=run.started, finished=finished, ready_at=run.ready_at
    )


# -- ReduceScatter --------------------------------------------------------------------


def run_reduce_scatter(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    active_ranks: Optional[Iterable[int]] = None,
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> CollectiveResult:
    """Execute ReduceScatter: rank r receives the sum of partition r over
    all active ranks. One per-partition Reduce rooted at each rank."""
    if strategy.primitive is not Primitive.REDUCE_SCATTER:
        raise CommunicatorError(
            f"run_reduce_scatter got a {strategy.primitive.value} strategy"
        )
    run = _Run(topology, strategy, inputs, active_ranks, ready_times, byte_scale, max_chunks)
    run.begin_trace("reduce_scatter")

    pipelines = []
    events = []
    for sc, (start, end) in zip(strategy.subcollectives, run.sc_partitions()):
        chunks = run.chunks_for(sc, start, end)
        flows = run.active_flows(sc)
        if not chunks:
            continue
        pipeline = ChunkPipeline(
            topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=_chunk_bytes(chunks, run.itemsize),
            chunk_source=run.input_chunk_source(chunks, dict(flows)),
            mode=MODE_MERGE,
            aggregates_at=sc.aggregates_at,
            tag=f"rs:m{sc.index}",
        )
        events.append(pipeline.start())
        events.append(run.ready_event(sc.root.index))
        pipelines.append((sc, start, end, pipeline))
    finished = run.finish(events)
    run.end_trace(finished)

    outputs: Dict[int, np.ndarray] = {}
    for sc, start, end, pipeline in pipelines:
        root_rank = sc.root.index
        if run.active_flows(sc):
            partition = pipeline.gather(("agg", sc.root), sc.root)
            partition = partition + inputs[root_rank][start:end]
        else:
            partition = inputs[root_rank][start:end].copy()
        outputs[root_rank] = partition
    return CollectiveResult(
        outputs=outputs, started=run.started, finished=finished, ready_at=run.ready_at
    )


# -- AlltoAll -------------------------------------------------------------------------


def run_alltoall(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> CollectiveResult:
    """Execute AlltoAll: rank d's output block s is rank s's input block d.

    Tensor lengths must be divisible by the world size (standard equal-split
    AlltoAll semantics).
    """
    if strategy.primitive is not Primitive.ALLTOALL:
        raise CommunicatorError(f"run_alltoall got a {strategy.primitive.value} strategy")
    run = _Run(topology, strategy, inputs, None, ready_times, byte_scale, max_chunks)
    run.begin_trace("alltoall")
    events, pipelines, position, block = _build_alltoall(run, strategy)
    finished = run.finish(events)
    run.end_trace(finished)
    outputs = _collect_alltoall_outputs(run, strategy, inputs, pipelines, position, block)
    return CollectiveResult(
        outputs=outputs, started=run.started, finished=finished, ready_at=run.ready_at
    )


def _build_alltoall(run: "_Run", strategy: Strategy):
    """Launch the per-pair AlltoAll pipelines; returns (events, pipelines,
    position, block)."""
    ranks = sorted(strategy.participants)
    world = len(ranks)
    if run.length % world != 0:
        raise CommunicatorError(
            f"AlltoAll needs tensor length divisible by world size ({run.length} % {world})"
        )
    block = run.length // world
    position = {rank: pos for pos, rank in enumerate(ranks)}

    # Partition each per-pair block across sub-collectives.
    sub_ranges = partition_ranges(block, [sc.size for sc in strategy.subcollectives])

    pipelines = []
    events = []
    for sc, (sub_start, sub_end) in zip(strategy.subcollectives, sub_ranges):
        if sub_end <= sub_start:
            continue
        chunks = run.chunks_for(sc, sub_start, sub_end)
        flows = list(enumerate(sc.flows))
        if not chunks or not flows:
            continue
        flows_by_idx = dict(flows)

        def pair_source(flow_idx, k, _chunks=chunks, _flows=flows_by_idx):
            flow = _flows[flow_idx]
            src_rank, dst_rank = flow.src.index, flow.dst.index
            start_k, end_k = _chunks[k]
            base = position[dst_rank] * block
            return (
                run.ready_event(src_rank),
                lambda: run.inputs[src_rank][base + start_k : base + end_k],
            )

        pipeline = ChunkPipeline(
            run.topology,
            flows,
            num_chunks=len(chunks),
            chunk_bytes=_chunk_bytes(chunks, run.itemsize),
            chunk_source=pair_source,
            mode=MODE_INDEPENDENT,
            tag=f"a2a:m{sc.index}",
        )
        events.append(pipeline.start())
        pipelines.append((sc, sub_start, sub_end, pipeline))
    return events, pipelines, position, block


def _collect_alltoall_outputs(run: "_Run", strategy: Strategy, inputs, pipelines, position, block):
    """Assemble per-rank AlltoAll outputs after the pipelines complete."""
    ranks = sorted(strategy.participants)
    outputs = {rank: np.zeros(run.length, dtype=run.dtype) for rank in ranks}
    for rank in ranks:
        base = position[rank] * block
        outputs[rank][base : base + block] = inputs[rank][base : base + block]
    for sc, sub_start, sub_end, pipeline in pipelines:
        for idx, flow in enumerate(sc.flows):
            src_rank, dst_rank = flow.src.index, flow.dst.index
            payload = pipeline.gather(("flow", idx), flow.dst)
            base = position[src_rank] * block
            outputs[dst_rank][base + sub_start : base + sub_end] = payload
    return outputs


def launch_alltoall(
    topology: LogicalTopology,
    strategy: Strategy,
    inputs: Dict[int, np.ndarray],
    ready_times: Optional[Dict[int, float]] = None,
    byte_scale: float = 1.0,
    max_chunks: Optional[int] = None,
) -> PendingCollective:
    """Non-blocking AlltoAll: start the pipelines and return a handle.

    Semantics match :func:`run_alltoall`; the caller drives the simulator
    and reads ``pending.result()`` once ``pending.done`` has fired.
    Concurrent jobs in fleet replay launch through this so their AlltoAll
    traffic overlaps other jobs' collectives on the shared fabric.
    """
    if strategy.primitive is not Primitive.ALLTOALL:
        raise CommunicatorError(
            f"launch_alltoall got a {strategy.primitive.value} strategy"
        )
    run = _Run(topology, strategy, inputs, None, ready_times, byte_scale, max_chunks)
    run.begin_trace("alltoall")
    events, pipelines, position, block = _build_alltoall(run, strategy)
    done = run.sim.all_of(list(events))
    done.add_callback(lambda _evt: run.end_trace(run.sim.now))

    def finalize() -> Dict[int, np.ndarray]:
        return _collect_alltoall_outputs(run, strategy, inputs, pipelines, position, block)

    return PendingCollective(run, done, finalize)
