"""The synthesizer: search over routing × chunking × aggregation.

This is the offline substitute for the paper's Gurobi MILP (see DESIGN.md
§2): the objective and constraints are the paper's exactly — implemented in
:mod:`repro.synthesis.evaluator` — and the search enumerates structured
candidates:

* every routing family in :data:`repro.synthesis.routing.TREE_FAMILIES`,
* root placements (for AllReduce the M sub-collective roots are spread
  over instances, which is where M-way parallelism pays off),
* a geometric chunk-size grid,
* a greedy aggregation-flip pass on the winner.

The returned :class:`Strategy` carries the achieved objective in
``predicted_time`` and its provenance in ``routing_family``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.synthesis.aggregation import default_aggregation, improve_aggregation
from repro.synthesis.chunking import chunk_candidates
from repro.synthesis.evaluator import StrategyEvaluator
from repro.synthesis.routing import (
    TREE_FAMILIES,
    alltoall_flows,
    broadcast_flows,
    reduce_flows,
)
from repro.synthesis.strategy import Flow, Primitive, Strategy, SubCollective
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology, gpu_node


@dataclass
class SynthesizerConfig:
    """Tunables of the synthesis search."""

    #: Number of parallel sub-collectives M (the paper evaluates M in
    #: Fig. 19a and settles on 4).
    parallelism: int = 4
    #: Routing families to enumerate (names from TREE_FAMILIES).
    families: Tuple[str, ...] = tuple(TREE_FAMILIES)
    #: Whether to run the greedy aggregation-flip pass on the winner.
    aggregation_search: bool = True
    #: Override the chunk candidate grid (None = default geometric grid).
    chunk_sizes: Optional[Tuple[float, ...]] = None
    #: Two-stage search: screen every family at one representative chunk
    #: size, then sweep the chunk grid only on the best `finalists`
    #: families. Cuts solve time ~3x at large scales (relevant to the
    #: paper's Fig. 19c reconstruction budget) with no observed quality
    #: loss; set False for the exhaustive product.
    screening: bool = True
    finalists: int = 2

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise SynthesisError("parallelism M must be >= 1")
        unknown = set(self.families) - set(TREE_FAMILIES)
        if unknown:
            raise SynthesisError(f"unknown routing families: {sorted(unknown)}")


@dataclass
class SynthesisReport:
    """Bookkeeping from one synthesize() call (for Fig. 19c)."""

    solve_seconds: float = 0.0
    candidates_evaluated: int = 0
    family_objectives: Dict[str, float] = field(default_factory=dict)


class Synthesizer:
    """Produces communication strategies from the (profiled) topology."""

    def __init__(
        self,
        topology: LogicalTopology,
        config: Optional[SynthesizerConfig] = None,
        include_kernel_time: bool = True,
    ):
        self.topology = topology
        self.config = config or SynthesizerConfig()
        self.evaluator = StrategyEvaluator(topology, include_kernel_time=include_kernel_time)
        self.last_report = SynthesisReport()

    # -- public API -------------------------------------------------------------

    def synthesize(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Sequence[int],
        root: Optional[int] = None,
    ) -> Strategy:
        """Produce the best strategy found for one primitive invocation.

        ``root`` applies to Reduce/Broadcast (defaults to the lowest rank).
        ``tensor_size`` is the per-rank tensor size S in bytes.
        """
        participants = sorted(set(participants))
        if not participants:
            raise SynthesisError("no participants")
        if tensor_size <= 0:
            raise SynthesisError("tensor size must be positive")
        if root is not None and root not in participants:
            raise SynthesisError(f"root {root} is not a participant")
        started = time.perf_counter()
        self.last_report = SynthesisReport()

        if len(participants) == 1:
            strategy = self._trivial(primitive, tensor_size, participants)
        elif primitive in (Primitive.REDUCE, Primitive.BROADCAST):
            strategy = self._synthesize_rooted(
                primitive, tensor_size, participants, root if root is not None else participants[0]
            )
        elif primitive is Primitive.ALLREDUCE:
            strategy = self._synthesize_allreduce(tensor_size, participants)
        elif primitive is Primitive.ALLGATHER:
            strategy = self._synthesize_allgather(tensor_size, participants)
        elif primitive is Primitive.REDUCE_SCATTER:
            strategy = self._synthesize_reduce_scatter(tensor_size, participants)
        elif primitive is Primitive.ALLTOALL:
            strategy = self._synthesize_alltoall(tensor_size, participants)
        else:  # pragma: no cover - exhaustive over enum
            raise SynthesisError(f"unsupported primitive {primitive}")

        self.last_report.solve_seconds = time.perf_counter() - started
        telemetry = telemetry_hub()
        if telemetry.enabled:
            # Recorded at the simulator's current instant: synthesis is
            # offline and does not advance simulated time, so the decision
            # pins to the moment the strategy becomes available.
            telemetry.instant(
                "synthesis-decision",
                self.topology.cluster.sim.now,
                category="synthesis",
                track="synthesizer",
                primitive=primitive.value,
                participants=len(participants),
                tensor_bytes=tensor_size,
                family=strategy.routing_family,
                objective=strategy.predicted_time,
                chunk_bytes=strategy.subcollectives[0].chunk_size,
                subcollectives=len(strategy.subcollectives),
                candidates_evaluated=self.last_report.candidates_evaluated,
                # solve_seconds is wall-clock and deliberately NOT recorded:
                # exports must stay byte-identical across same-seed runs.
                family_objectives=dict(
                    sorted(self.last_report.family_objectives.items())
                ),
            )
            telemetry.metrics.counter(
                "synthesis_decisions_total", "strategies synthesized"
            ).inc(primitive=primitive.value)
        return strategy

    # -- per-primitive synthesis ---------------------------------------------------

    def _trivial(
        self, primitive: Primitive, tensor_size: float, participants: List[int]
    ) -> Strategy:
        """Single participant: nothing to communicate, but keep the shape."""
        rank = participants[0]
        node = gpu_node(rank)
        sc = SubCollective(
            index=0,
            size=Strategy.expected_total_size(primitive, tensor_size, 1),
            chunk_size=tensor_size,
            flows=[],
            root=node if primitive.has_root else None,
        )
        return Strategy(
            primitive=primitive,
            tensor_size=tensor_size,
            participants=participants,
            subcollectives=[sc],
            predicted_time=0.0,
            routing_family="trivial",
        )

    def _synthesize_rooted(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: List[int],
        root: int,
    ) -> Strategy:
        """Reduce or Broadcast with a fixed designated root."""
        roots = [root] * self.config.parallelism
        return self._search(primitive, tensor_size, participants, roots)

    def _synthesize_allreduce(self, tensor_size: float, participants: List[int]) -> Strategy:
        """AllReduce: reduce strategies with roots spread over instances.

        The stored flows are the *reduce* half; the executor replays them
        reversed for the broadcast half, pipelined (Sec. V-B multi-stage
        parallelism).
        """
        roots = self._spread_roots(participants, self.config.parallelism)
        return self._search(Primitive.ALLREDUCE, tensor_size, participants, roots)

    def _synthesize_allgather(self, tensor_size: float, participants: List[int]) -> Strategy:
        """AllGather: one Broadcast of each rank's shard (Sec. IV-D)."""
        return self._search(
            Primitive.ALLGATHER,
            tensor_size,
            participants,
            roots=list(participants),
            partition_size=tensor_size,
        )

    def _synthesize_reduce_scatter(
        self, tensor_size: float, participants: List[int]
    ) -> Strategy:
        """ReduceScatter: one per-partition Reduce rooted at each rank."""
        return self._search(
            Primitive.REDUCE_SCATTER,
            tensor_size,
            participants,
            roots=list(participants),
            partition_size=tensor_size / len(participants),
        )

    def _synthesize_alltoall(self, tensor_size: float, participants: List[int]) -> Strategy:
        """AlltoAll: direct pairwise flows, M parallel partitions."""
        world = len(participants)
        per_pair = tensor_size / world
        m = self.config.parallelism
        flows = alltoall_flows(self.topology, participants)
        best: Optional[Strategy] = None
        for chunk in self._chunks(per_pair / m):
            subcollectives = [
                SubCollective(
                    index=index,
                    size=per_pair / m,
                    chunk_size=chunk,
                    flows=[Flow(f.src, f.dst, list(f.path)) for f in flows],
                )
                for index in range(m)
            ]
            candidate = Strategy(
                primitive=Primitive.ALLTOALL,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=subcollectives,
                routing_family="direct",
            )
            candidate.predicted_time = self.evaluator.objective(candidate)
            self.last_report.candidates_evaluated += 1
            if best is None or candidate.predicted_time < best.predicted_time:
                best = candidate
        assert best is not None
        return best

    # -- the search core ---------------------------------------------------------------

    def _search(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: List[int],
        roots: List[int],
        partition_size: Optional[float] = None,
    ) -> Strategy:
        """Enumerate families × chunk sizes for a rooted (tree) primitive.

        ``roots`` gives the root of each sub-collective (its length is the
        number of sub-collectives). ``partition_size`` overrides the
        per-sub-collective size (default: S / len(roots))."""
        size_each = partition_size if partition_size is not None else tensor_size / len(roots)
        family_trees = {}
        for family_name in self.config.families:
            family = TREE_FAMILIES[family_name]
            family_trees[family_name] = [
                family(self.topology, participants, sc_root, rotation=index)
                for index, sc_root in enumerate(roots)
            ]

        all_chunks = self._chunks(size_each)
        search_plan: List[Tuple[str, List[float]]]
        if self.config.screening and len(self.config.families) > self.config.finalists:
            # Stage 1: rank families at one representative chunk size.
            screen_chunk = [all_chunks[len(all_chunks) // 2]]
            scores = []
            for family_name in self.config.families:
                candidate = self._candidate(
                    primitive, tensor_size, participants, roots,
                    family_trees[family_name], screen_chunk[0], size_each, family_name,
                )
                scores.append((candidate.predicted_time, family_name))
                self.last_report.candidates_evaluated += 1
                self.last_report.family_objectives[family_name] = candidate.predicted_time
            scores.sort()
            # Stage 2: full chunk sweep on the finalists only.
            search_plan = [
                (name, all_chunks) for _score, name in scores[: self.config.finalists]
            ]
        else:
            search_plan = [(name, all_chunks) for name in self.config.families]

        best: Optional[Strategy] = None
        for family_name, chunk_grid in search_plan:
            trees = family_trees[family_name]
            for chunk in chunk_grid:
                candidate = self._candidate(
                    primitive, tensor_size, participants, roots, trees, chunk,
                    size_each, family_name,
                )
                self.last_report.candidates_evaluated += 1
                current = self.last_report.family_objectives.get(family_name)
                if current is None or candidate.predicted_time < current:
                    self.last_report.family_objectives[family_name] = candidate.predicted_time
                if best is None or candidate.predicted_time < best.predicted_time:
                    best = candidate
        assert best is not None
        if self.config.aggregation_search and primitive.needs_aggregation:
            best = improve_aggregation(best, self)
        return best

    def _candidate(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: List[int],
        roots: List[int],
        trees: List,
        chunk: float,
        size_each: float,
        family_name: str,
    ) -> Strategy:
        """Build and score one (family, chunk) candidate strategy."""
        subcollectives = []
        for index, (sc_root, tree) in enumerate(zip(roots, trees)):
            if primitive is Primitive.BROADCAST or primitive is Primitive.ALLGATHER:
                flows = broadcast_flows(self.topology, tree, sc_root)
                aggregation: Dict = {}
            else:
                flows = reduce_flows(self.topology, tree, sc_root)
                aggregation = default_aggregation(tree, sc_root)
            subcollectives.append(
                SubCollective(
                    index=index,
                    size=size_each,
                    chunk_size=chunk,
                    flows=flows,
                    aggregation=aggregation,
                    root=gpu_node(sc_root),
                )
            )
        candidate = Strategy(
            primitive=primitive,
            tensor_size=tensor_size,
            participants=participants,
            subcollectives=subcollectives,
            routing_family=family_name,
        )
        candidate.predicted_time = self._score(candidate)
        return candidate

    def objective(self, strategy: Strategy) -> float:
        """Score a strategy (used by the aggregation local search)."""
        return self._score(strategy)

    def finish_time(self, strategy: Strategy) -> float:
        """The strategy's eq.-4 finish time under *current* link estimates.

        ``strategy.predicted_time`` is frozen at synthesis time; this
        re-evaluates the same objective against whatever the topology's
        estimates say now. The observe watchdog compares the two after a
        targeted re-probe: a gap beyond its hysteresis threshold means the
        installed strategy is stale and re-synthesis is worth the switch
        cost.
        """
        return self._score(strategy)

    def _score(self, strategy: Strategy) -> float:
        """Evaluator objective; AllReduce adds the reversed broadcast half."""
        reduce_time = self.evaluator.objective(strategy)
        if strategy.primitive is not Primitive.ALLREDUCE:
            return reduce_time
        reversed_strategy = Strategy(
            primitive=Primitive.BROADCAST,
            tensor_size=strategy.tensor_size,
            participants=strategy.participants,
            subcollectives=[
                SubCollective(
                    index=sc.index,
                    size=sc.size,
                    chunk_size=sc.chunk_size,
                    flows=[
                        Flow(f.dst, f.src, list(reversed(f.path))) for f in sc.flows
                    ],
                    root=sc.root,
                )
                for sc in strategy.subcollectives
            ],
        )
        broadcast_time = self.evaluator.objective(reversed_strategy)
        # The executor pipelines the two stages; the steady-state pace is
        # set by the slower stage, with the faster stage's first-chunk
        # latency as fill time.
        return max(reduce_time, broadcast_time) + 0.25 * min(reduce_time, broadcast_time)

    def _spread_roots(self, participants: List[int], m: int) -> List[int]:
        """Spread sub-collective roots round-robin over well-connected
        instances.

        Roots concentrate traffic (all partitions funnel into and fan out
        of them), so placing one on a weak NIC makes that NIC the whole
        collective's bottleneck. Only instances whose profiled network
        bandwidth is within 25 % of the best host roots; load then spreads
        round-robin among them (all instances, in a homogeneous cluster).
        """
        from repro.synthesis.routing import instance_network_bandwidth

        by_instance: Dict[int, List[int]] = {}
        for rank in participants:
            by_instance.setdefault(self.topology.cluster.gpu(rank).instance_id, []).append(rank)
        bandwidth = {
            iid: instance_network_bandwidth(self.topology, iid) for iid in by_instance
        }
        best = max(bandwidth.values())
        eligible = sorted(iid for iid, bw in bandwidth.items() if bw >= 0.75 * best)
        roots = []
        for index in range(m):
            instance = eligible[index % len(eligible)]
            ranks = sorted(by_instance[instance])
            roots.append(ranks[(index // len(eligible)) % len(ranks)])
        return roots

    def _chunks(self, partition_size: float) -> List[float]:
        if self.config.chunk_sizes is not None:
            return [min(c, partition_size) for c in self.config.chunk_sizes]
        return chunk_candidates(partition_size)
