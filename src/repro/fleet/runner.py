"""The fleet runner: N concurrent jobs on one shared fluid network.

:class:`FleetRunner` replays a :class:`~repro.fleet.workload.Workload` —
several jobs, each a disjoint rank subset with its own collective
schedule — over *one* simulator, cluster, and
:class:`~repro.topology.graph.LogicalTopology`. Jobs therefore contend
for the shared fabric exactly as the fluid network resolves it; nothing
about cross-job slowdown is synthetic.

Per job, the runner owns a full observe stack:

* a **labeled telemetry hub** (``labels={"job": name}``) installed as the
  process-global hub around every launch and every watchdog evaluation,
  so each job's spans/instants/metrics land on its own stream (chunk
  pipelines and collective runs capture the hub at construction, which
  is what makes the swap sufficient);
* a :class:`~repro.observe.watchdog.Watchdog` with the shared profiler /
  synthesizer, whose re-probes and re-syntheses stay per-job;
* a :class:`~repro.critpath.consumer.CritpathConsumer` feeding the
  watchdog's attribution hook, and a :class:`LinkOccupancy` consumer
  recording when the job's chunks occupied each physical link.

The replay itself is an **outer driver loop** (never re-entering the
simulator from inside a dispatch): finalize completed collectives, launch
ops that have come due (in lexicographic job order), then advance the sim
by one step or straight to the next scheduled launch. Everything advances
on the sim clock with a fixed iteration order, so same-seed replays are
byte-identical — merged exports and fleet reports included.

**Cross-job interference attribution** happens at each victim iteration's
end: when the job's watchdog raises a bandwidth/interference verdict, the
runner looks up which *other* job's chunk transfers overlapped the
verdict's candidate links during the victim's iteration window, annotates
the verdict with that aggressor, and emits an ``interference-attribution``
instant on the victim's stream. The ``--fleet`` analysis pass re-verifies
those annotations from the merged export alone, and the aggregator scores
them against the workload generator's planted ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.critpath.consumer import CritpathConsumer
from repro.errors import FleetError
from repro.fleet.aggregate import (
    FleetAggregator,
    FleetAttribution,
    JobSummary,
    ScoringWindow,
    overlap_seconds,
)
from repro.fleet.workload import ALLREDUCE, CollectiveOp, JobTrace, Workload
from repro.hardware.cluster import Cluster
from repro.hardware.presets import make_homo_cluster
from repro.observe.verdicts import AnomalyKind, AnomalyVerdict
from repro.observe.watchdog import ObserveConfig, Watchdog
from repro.profiling.profiler import Profiler
from repro.runtime.collectives import (
    PendingCollective,
    launch_allreduce,
    launch_alltoall,
)
from repro.simulation.engine import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.telemetry.core import Span, TelemetryConsumer, TelemetryHub, set_hub
from repro.telemetry.export import SCHEMA_VERSION, _dumps, ordered_records
from repro.topology.graph import LogicalTopology

#: Slack when deciding an op has come due (floating-point schedule times).
_EPS = 1e-9


def fleet_observe_config() -> ObserveConfig:
    """The fleet-tuned watchdog config (the runner's default).

    Cross-job contention is a *step* shift: fair sharing halves a link's
    throughput for exactly as long as the aggressor transmits. The chaos
    defaults (smoothing 0.3, drift 0.25) let the EWMA chase the step so
    fast that the link CUSUM plateaus below the interference gate
    (``threshold/2``) before the corroboration can happen. A slower
    baseline (smoothing 0.1) and a tighter per-sample allowance (drift
    0.1) let both the iteration-time and link-throughput statistics clear
    their gates by the second contended iteration.
    """
    return ObserveConfig(smoothing=0.1, cusum_drift=0.1)

#: Verdict kinds that can be blamed on another job's traffic. A bandwidth
#: drift must be *downward* (throughput loss); an interference onset is
#: upward by construction (iteration-time inflation).
_ATTRIBUTABLE = {
    AnomalyKind.BANDWIDTH_DRIFT: "down",
    AnomalyKind.INTERFERENCE_ONSET: "up",
}


class LinkOccupancy(TelemetryConsumer):
    """Accumulates when one job's chunk sends occupied each link.

    Subscribed to a single job's hub, so the intervals are per-job by
    construction. Only ``…:send`` chunk spans count (the same filter the
    critpath consumer applies), so staging/reduce activity is not
    mistaken for wire occupancy.
    """

    def __init__(self) -> None:
        self.intervals: Dict[str, List[Tuple[float, float]]] = {}

    def on_span(self, span: Span) -> None:
        if span.category != "chunk" or not span.name.endswith(":send"):
            return
        if not span.track.startswith("link:") or span.end is None:
            return
        if span.end <= span.start:
            return
        link = span.track[len("link:"):]
        self.intervals.setdefault(link, []).append((span.start, span.end))

    def on_event(self, span: Span) -> None:
        pass


@dataclass
class _JobState:
    """One job's live replay state."""

    trace: JobTrace
    hub: TelemetryHub
    watchdog: Watchdog
    critpath: CritpathConsumer
    occupancy: LinkOccupancy
    #: Strategies keyed by (kind, size_bytes): a strategy partitions a
    #: specific payload, so an op of a different size must not reuse it
    #: (its chunk spans would report the wrong byte counts).
    strategies: Dict[Tuple[str, float], object] = field(default_factory=dict)
    next_op: int = 0
    pending: Optional[PendingCollective] = None
    pending_op: Optional[CollectiveOp] = None
    pending_launched: float = 0.0
    pending_finished: Optional[float] = None
    last_op: Optional[CollectiveOp] = None
    iteration: int = -1
    completions: List[Dict] = field(default_factory=list)
    verdicts: List[AnomalyVerdict] = field(default_factory=list)
    bytes_completed: float = 0.0
    first_launch: Optional[float] = None
    last_finish: float = 0.0
    resyntheses: int = 0

    @property
    def name(self) -> str:
        return self.trace.name

    @property
    def exhausted(self) -> bool:
        return self.pending is None and self.next_op >= len(self.trace.ops)


@dataclass
class FleetResult:
    """One fleet replay's outcome: report, merged export, raw pieces."""

    workload: Workload
    report: Dict
    merged_jsonl: str
    attributions: List[FleetAttribution]
    summaries: List[JobSummary]
    completions: Dict[str, List[Dict]]

    def report_json(self) -> str:
        """The report as canonical (sorted, compact) JSON text."""
        return _dumps(self.report) + "\n"


class FleetRunner:
    """Replays one multi-job workload over a shared simulated cluster."""

    def __init__(
        self,
        workload: Workload,
        specs: Optional[Sequence] = None,
        length: int = 512,
        max_chunks: Optional[int] = 8,
        observe: Optional[ObserveConfig] = None,
    ):
        if length < 1:
            raise FleetError("tensor length must be >= 1")
        self.workload = workload
        self.length = length
        self.max_chunks = max_chunks
        self.observe = observe or fleet_observe_config()
        # The shared substrate is built under a disabled global hub: the
        # fluid network auto-attaches a telemetry recorder to whatever hub
        # is global at construction, and fleet streams must be per-job
        # (the per-job hubs get the chunk/collective spans; raw net-flow
        # spans would all pile onto one arbitrary stream).
        previous = set_hub(TelemetryHub(enabled=False))
        try:
            self.sim = Simulator()
            self.cluster = Cluster(self.sim, specs or self._default_specs(workload))
            self.topology = LogicalTopology.from_cluster(self.cluster)
        finally:
            set_hub(previous)
        self.synthesizer = Synthesizer(self.topology)
        self.profiler = Profiler(self.topology)
        cluster_ranks = {gpu.rank for gpu in self.cluster.gpus}
        for trace in workload.jobs:
            outside = sorted(set(trace.ranks) - cluster_ranks)
            if outside:
                raise FleetError(
                    f"job {trace.name!r} claims ranks outside the cluster: {outside}"
                )
            if any(op.kind != ALLREDUCE for op in trace.ops):
                if self.length % len(trace.ranks) != 0:
                    raise FleetError(
                        f"job {trace.name!r} schedules alltoall but length "
                        f"{self.length} is not divisible by its world size "
                        f"{len(trace.ranks)}"
                    )
        self._jobs = [
            self._make_job(trace)
            for trace in sorted(workload.jobs, key=lambda trace: trace.name)
        ]
        self.attributions: List[FleetAttribution] = []
        self._ran = False

    @staticmethod
    def _default_specs(workload: Workload):
        """A homogeneous cluster just big enough for the claimed ranks."""
        top = max(rank for trace in workload.jobs for rank in trace.ranks)
        servers = -(-(top + 1) // 4)
        return make_homo_cluster(num_servers=max(servers, 2), gpus_per_server=4)

    def _make_job(self, trace: JobTrace) -> _JobState:
        hub = TelemetryHub(enabled=True, labels={"job": trace.name})
        critpath = CritpathConsumer()
        occupancy = LinkOccupancy()
        state = _JobState(
            trace=trace,
            hub=hub,
            watchdog=None,  # type: ignore[arg-type]  # set right below
            critpath=critpath,
            occupancy=occupancy,
        )
        watchdog = Watchdog(
            self.topology,
            config=self.observe,
            profiler=self.profiler,
            current_strategy=lambda state=state: (
                state.strategies.get(
                    (state.last_op.kind, state.last_op.size_bytes)
                )
                if state.last_op is not None
                else None
            ),
            resynthesize=self._resynthesize_hook(state),
            synthesizer=self.synthesizer,
            attribution=critpath.top_link,
        ).attach(hub)
        state.watchdog = watchdog
        hub.subscribe(critpath)
        hub.subscribe(occupancy)
        return state

    def _resynthesize_hook(self, state: _JobState):
        def hook(reason: str):
            op = state.last_op
            if op is None:  # pragma: no cover - watchdog only fires post-op
                return None
            strategy = self.synthesizer.synthesize(
                self._primitive(op.kind), op.size_bytes, state.trace.ranks
            )
            state.strategies[(op.kind, op.size_bytes)] = strategy
            state.resyntheses += 1
            return strategy

        return hook

    @staticmethod
    def _primitive(kind: str) -> Primitive:
        return Primitive.ALLREDUCE if kind == ALLREDUCE else Primitive.ALLTOALL

    # -- the outer driver loop ---------------------------------------------------

    def run(self) -> FleetResult:
        """Replay the whole workload; single-shot (build a new runner to
        replay — per-job hubs and detector state are not resettable)."""
        if self._ran:
            raise FleetError("FleetRunner.run() is single-shot; build a new runner")
        self._ran = True
        while True:
            progressed = True
            while progressed:
                progressed = False
                # 1. Finalize jobs whose collective completed. May drive
                # the sim (watchdog re-probes), completing other jobs'
                # ops mid-flight — the re-scan picks those up.
                for job in self._jobs:
                    if job.pending is not None and job.pending.done.processed:
                        self._finalize(job)
                        progressed = True
                # 2. Launch every op that has come due, one outstanding
                # op per job, deterministic job order.
                for job in self._jobs:
                    if job.pending is None and job.next_op < len(job.trace.ops):
                        op = job.trace.ops[job.next_op]
                        if op.start <= self.sim.now + _EPS:
                            self._launch(job, op)
                            progressed = True
            # 3. Advance time toward the earlier of: the next scheduled
            # launch, or the next simulator event.
            next_start = min(
                (
                    job.trace.ops[job.next_op].start
                    for job in self._jobs
                    if job.pending is None and job.next_op < len(job.trace.ops)
                ),
                default=float("inf"),
            )
            horizon = self.sim.peek()
            in_flight = any(job.pending is not None for job in self._jobs)
            if in_flight:
                if horizon == float("inf"):
                    stuck = sorted(
                        job.name for job in self._jobs if job.pending is not None
                    )
                    raise FleetError(
                        f"fleet replay deadlocked at t={self.sim.now} with "
                        f"jobs {stuck} in flight"
                    )
                if next_start < horizon:
                    self.sim.run(until=next_start)
                else:
                    self.sim.step()
            else:
                if next_start == float("inf"):
                    break  # every job exhausted
                self.sim.run(until=next_start)
        return self._assemble()

    def _launch(self, job: _JobState, op: CollectiveOp) -> None:
        previous = set_hub(job.hub)
        try:
            key = (op.kind, op.size_bytes)
            strategy = job.strategies.get(key)
            if strategy is None:
                strategy = self.synthesizer.synthesize(
                    self._primitive(op.kind), op.size_bytes, job.trace.ranks
                )
                job.strategies[key] = strategy
            inputs = {
                rank: np.full(self.length, float(rank + 1))
                for rank in job.trace.ranks
            }
            byte_scale = op.size_bytes / (self.length * 8.0)
            if op.kind == ALLREDUCE:
                pending = launch_allreduce(
                    self.topology,
                    strategy,
                    inputs,
                    byte_scale=byte_scale,
                    max_chunks=self.max_chunks,
                )
            else:
                pending = launch_alltoall(
                    self.topology,
                    strategy,
                    inputs,
                    byte_scale=byte_scale,
                    max_chunks=self.max_chunks,
                )
        finally:
            set_hub(previous)
        job.pending = pending
        job.pending_op = op
        job.pending_launched = self.sim.now
        job.pending_finished = None
        if job.first_launch is None:
            job.first_launch = self.sim.now
        job.next_op += 1
        # The completion instant must be captured at completion: the
        # outer loop may only notice (and finalize) several sim-steps
        # later, once another job's re-probe has advanced the clock.
        pending.done.add_callback(
            lambda _event, job=job: setattr(job, "pending_finished", self.sim.now)
        )

    def _finalize(self, job: _JobState) -> None:
        op = job.pending_op
        finished = (
            job.pending_finished
            if job.pending_finished is not None
            else self.sim.now
        )
        job.pending.result()  # assembles outputs; raises on a failed run
        duration = finished - job.pending_launched
        job.iteration += 1
        job.completions.append(
            {
                "kind": op.kind,
                "scheduled": op.start,
                "launched": job.pending_launched,
                "finished": finished,
                "duration": duration,
                "size_bytes": op.size_bytes,
            }
        )
        job.bytes_completed += op.size_bytes
        job.last_finish = max(job.last_finish, finished)
        job.last_op = op
        window = (job.pending_launched, finished)
        job.pending = None
        job.pending_op = None
        # The watchdog evaluation runs under the job's hub: a verdict's
        # targeted re-probe emits profiler spans/fit instants, and those
        # belong to the job that triggered them.
        previous = set_hub(job.hub)
        try:
            verdicts = job.watchdog.end_iteration(job.iteration, duration)
        finally:
            set_hub(previous)
        job.verdicts.extend(verdicts)
        for verdict in verdicts:
            self._attribute(job, verdict, window)
        job.critpath.reset()

    # -- cross-job interference attribution ----------------------------------------

    def _candidate_links(self, verdict: AnomalyVerdict) -> List[str]:
        candidates: List[str] = []
        if verdict.attributed_link:
            candidates.append(verdict.attributed_link)
        for link in verdict.implicated_links:
            if link not in candidates:
                candidates.append(link)
        if verdict.subject.startswith("link:"):
            link = verdict.subject[len("link:"):]
            if link not in candidates:
                candidates.append(link)
        return candidates

    def _attribute(
        self, victim: _JobState, verdict: AnomalyVerdict, window: Tuple[float, float]
    ) -> None:
        """Annotate one verdict with the aggressor job, if any.

        A verdict is attributable when its kind/direction signals
        degradation and some *other* job's chunk transfers physically
        occupied one of its candidate links during the victim's iteration
        window. No overlapping aggressor → no annotation (the verdict
        stays a single-job anomaly, which is the honest answer).
        """
        wanted = _ATTRIBUTABLE.get(verdict.kind)
        if wanted is None or verdict.direction != wanted:
            return
        for link in self._candidate_links(verdict):
            overlaps = []
            for other in self._jobs:
                if other.name == victim.name:
                    continue
                shared = overlap_seconds(
                    other.occupancy.intervals.get(link, ()), window
                )
                if shared > 0.0:
                    overlaps.append((shared, other.name))
            if not overlaps:
                continue
            # Largest overlap wins; ties break to the lexicographically
            # first job so the annotation is deterministic.
            overlaps.sort(key=lambda item: (-item[0], item[1]))
            shared, aggressor = overlaps[0]
            attribution = FleetAttribution(
                victim=victim.name,
                aggressor=aggressor,
                link=link,
                verdict_id=verdict.verdict_id,
                kind=verdict.kind.value,
                iteration=verdict.iteration,
                window_start=window[0],
                window_end=window[1],
                overlap_seconds=shared,
            )
            self.attributions.append(attribution)
            victim.hub.instant(
                "interference-attribution",
                self.sim.now,
                category="fleet",
                track="fleet",
                verdict=verdict.verdict_id,
                kind=verdict.kind.value,
                victim=victim.name,
                aggressor=aggressor,
                link=link,
                iteration=verdict.iteration,
                window_start=window[0],
                window_end=window[1],
                overlap_seconds=shared,
            )
            victim.hub.metrics.counter(
                "fleet_attributions_total",
                "verdicts annotated with an aggressor job",
            ).inc(aggressor=aggressor)
            return

    # -- result assembly ------------------------------------------------------------

    def merged_jsonl(self) -> str:
        """All jobs' streams merged into one fleet JSONL export.

        Records keep their per-job label stamps and ids (collision-free:
        ids are unique per hub, and every record carries its job label).
        The merge is stably ordered by (start, job, per-hub order), the
        meta header lists the jobs, and the metrics tail maps job name →
        that hub's snapshot.
        """
        entries = []
        total_spans = 0
        total_events = 0
        for job in self._jobs:
            records = ordered_records(job.hub)
            total_spans += len(job.hub.tracer.spans)
            total_events += len(job.hub.tracer.events)
            for index, record in enumerate(records):
                entries.append((record["start"], job.name, index, record))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        meta = {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "clock": "sim",
            "fleet": True,
            "seed": self.workload.seed,
            "jobs": [job.name for job in self._jobs],
            "spans": total_spans,
            "events": total_events,
        }
        lines = [_dumps(meta)]
        lines.extend(_dumps(record) for _, _, _, record in entries)
        tail = {
            "type": "metrics",
            "metrics": {job.name: job.hub.metrics.snapshot() for job in self._jobs},
        }
        lines.append(_dumps(tail))
        return "\n".join(lines) + "\n"

    def _scoring_windows(self) -> List[ScoringWindow]:
        """Ground-truth windows widened to the aggressor's real traffic end.

        An op *scheduled* inside a planted window keeps flowing (and
        keeps interfering) until its transfer completes; the victim's
        verdict may therefore land in an iteration window past the
        nominal end. Widening to the aggressor's last relevant completion
        keeps scoring exact instead of slack-tuned.
        """
        windows = []
        by_name = {job.name: job for job in self._jobs}
        for truth in self.workload.ground_truth:
            aggressor = by_name[truth.aggressor]
            finishes = [
                completion["finished"]
                for completion in aggressor.completions
                if truth.start - _EPS <= completion["scheduled"] <= truth.end + _EPS
            ]
            windows.append(
                ScoringWindow(
                    victim=truth.victim,
                    aggressor=truth.aggressor,
                    start=truth.start,
                    end=max([truth.end] + finishes),
                )
            )
        return windows

    def _assemble(self) -> FleetResult:
        summaries = [
            JobSummary(
                name=job.name,
                ranks=job.trace.ranks,
                ops_total=len(job.trace.ops),
                ops_completed=len(job.completions),
                bytes_completed=job.bytes_completed,
                first_launch=job.first_launch or 0.0,
                last_finish=job.last_finish,
                verdicts=len(job.verdicts),
                reprobes=job.watchdog.reprobes_run,
                resyntheses=job.resyntheses,
            )
            for job in self._jobs
        ]
        occupancy = {
            job.name: {
                link: sorted(intervals)
                for link, intervals in job.occupancy.intervals.items()
            }
            for job in self._jobs
        }
        aggregator = FleetAggregator(
            summaries,
            occupancy,
            self.attributions,
            truths=self._scoring_windows(),
            seed=self.workload.seed,
        )
        return FleetResult(
            workload=self.workload,
            report=aggregator.report(),
            merged_jsonl=self.merged_jsonl(),
            attributions=list(self.attributions),
            summaries=summaries,
            completions={job.name: list(job.completions) for job in self._jobs},
        )


def replay(workload: Workload, **kwargs) -> FleetResult:
    """Convenience one-shot: build a runner, run it, return the result."""
    return FleetRunner(workload, **kwargs).run()
