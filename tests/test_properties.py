"""Cross-cutting property-based tests on core invariants (DESIGN.md §5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cluster, make_hetero_cluster, make_homo_cluster
from repro.network.cost_model import AlphaBeta
from repro.runtime.partition import chunk_ranges, partition_ranges
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.synthesis.evaluator import StrategyEvaluator
from repro.synthesis.routing import TREE_FAMILIES, reduce_flows, tree_flow_paths
from repro.topology import LogicalTopology
from repro.topology.graph import nic_node


def hetero_topology():
    sim = Simulator()
    cluster = Cluster(sim, make_hetero_cluster())
    return LogicalTopology.from_cluster(cluster)


TOPO = hetero_topology()  # shared, read-only for routing properties


class TestPartitionProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=100_000),
        weights=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=12),
    )
    def test_partition_ranges_tile_exactly(self, total, weights):
        if sum(weights) == 0:
            weights[0] = 1.0
        ranges = partition_ranges(total, weights)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
            assert a0 <= a1

    @settings(max_examples=100, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=1000),
        span=st.integers(min_value=0, max_value=5000),
        chunk=st.integers(min_value=1, max_value=700),
    )
    def test_chunk_ranges_tile_exactly(self, start, span, chunk):
        chunks = chunk_ranges(start, start + span, chunk)
        assert sum(b - a for a, b in chunks) == span
        position = start
        for a, b in chunks:
            assert a == position and b > a
            assert b - a <= chunk
            position = b


class TestRoutingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        mask=st.integers(min_value=3, max_value=(1 << 16) - 1),
        family_index=st.integers(min_value=0, max_value=len(TREE_FAMILIES) - 1),
        root_seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_any_subset_any_family_yields_valid_flows(self, mask, family_index, root_seed):
        """For any ≥2-rank subset, every family builds a tree whose flows
        are simple GPU walks over existing edges, one per non-root."""
        participants = [r for r in range(16) if mask & (1 << r)]
        if len(participants) < 2:
            participants = [0, 1]
        root = participants[root_seed % len(participants)]
        family = sorted(TREE_FAMILIES)[family_index]
        tree = TREE_FAMILIES[family](TOPO, participants, root)
        flows = reduce_flows(TOPO, tree, root)
        assert len(flows) == len(participants) - 1
        for flow in flows:
            TOPO.path_edges(flow.path)  # raises on a missing edge
            assert flow.dst.index == root

    @settings(max_examples=40, deadline=None)
    @given(mask=st.integers(min_value=3, max_value=(1 << 16) - 1))
    def test_flow_conservation_over_tree_paths(self, mask):
        """Eq. (1): along every flow path, each intermediate node is
        entered exactly once and left exactly once."""
        participants = [r for r in range(16) if mask & (1 << r)]
        if len(participants) < 2:
            participants = [0, 5]
        tree = TREE_FAMILIES["hierarchical-tree"](TOPO, participants, participants[0])
        for flow in reduce_flows(TOPO, tree, participants[0]):
            incoming = {}
            outgoing = {}
            for i, j in flow.edges:
                outgoing[i] = outgoing.get(i, 0) + 1
                incoming[j] = incoming.get(j, 0) + 1
            for node in set(list(incoming) + list(outgoing)):
                net = outgoing.get(node, 0) - incoming.get(node, 0)
                if node == flow.src:
                    assert net == 1
                elif node == flow.dst:
                    assert net == -1
                else:
                    assert net == 0


class TestEvaluatorProperties:
    def synthesize(self, topo, m=2):
        synth = Synthesizer(
            topo, SynthesizerConfig(parallelism=m, families=("hierarchical-tree",))
        )
        return synth.synthesize(Primitive.ALLREDUCE, 8_000_000.0, range(16))

    @settings(max_examples=15, deadline=None)
    @given(factor=st.floats(min_value=1.5, max_value=20.0))
    def test_degrading_any_network_edge_never_helps(self, factor):
        topo = hetero_topology()
        strategy = self.synthesize(topo)
        evaluator = StrategyEvaluator(topo)
        before = evaluator.objective(strategy)
        edge = topo.edge(nic_node(0), nic_node(1))
        topo.set_estimate(
            nic_node(0),
            nic_node(1),
            AlphaBeta(edge.nominal.alpha, edge.nominal.beta * factor),
        )
        after = evaluator.objective(strategy)
        assert after >= before - 1e-12

    def test_objective_scales_with_tensor_size(self):
        topo = hetero_topology()
        synth = Synthesizer(topo, SynthesizerConfig(families=("hierarchical-tree",)))
        small = synth.synthesize(Primitive.ALLREDUCE, 4_000_000.0, range(16))
        large = synth.synthesize(Primitive.ALLREDUCE, 64_000_000.0, range(16))
        assert large.predicted_time > small.predicted_time


class TestCollectiveEquivalenceProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=16, max_value=1024),
    )
    def test_allreduce_equals_reduce_plus_broadcast(self, seed, length):
        """Semantics: AllReduce == Reduce-to-root then Broadcast-from-root."""
        from repro.runtime import run_allreduce, run_broadcast, run_reduce

        rng = np.random.default_rng(seed)
        inputs = {r: rng.integers(0, 7, length).astype(np.float64) for r in range(8)}

        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        topo = LogicalTopology.from_cluster(cluster)
        synth = Synthesizer(topo)
        ar = run_allreduce(
            topo, synth.synthesize(Primitive.ALLREDUCE, length * 8, range(8)), inputs
        )

        sim2 = Simulator()
        cluster2 = Cluster(sim2, make_homo_cluster(num_servers=2))
        topo2 = LogicalTopology.from_cluster(cluster2)
        synth2 = Synthesizer(topo2)
        red = run_reduce(
            topo2, synth2.synthesize(Primitive.REDUCE, length * 8, range(8), root=0), inputs
        )
        bc_inputs = {r: (red.outputs[0] if r == 0 else np.zeros(length)) for r in range(8)}
        bc = run_broadcast(
            topo2,
            synth2.synthesize(Primitive.BROADCAST, length * 8, range(8), root=0),
            bc_inputs,
        )
        for rank in range(8):
            np.testing.assert_array_equal(ar.outputs[rank], bc.outputs[rank])
