"""Tests for the top-level AdapCCSession API (the paper's Sec. VI-A usage)."""

import numpy as np
import pytest

from repro import AdapCCSession, Primitive
from repro.errors import ReproError
from repro.hardware import make_hetero_cluster, make_homo_cluster


def make_session(specs=None):
    return AdapCCSession(specs or make_homo_cluster(num_servers=2)).init()


def tensors_for(session, length=512, seed=0):
    rng = np.random.default_rng(seed)
    return {
        gpu.rank: rng.integers(0, 20, length).astype(np.float64)
        for gpu in session.cluster.gpus
    }


class TestLifecycle:
    def test_init_runs_detection_and_profiling(self):
        session = make_session()
        assert session.detection is not None
        assert session.topology is not None
        assert session.profiler.passes_completed == 1

    def test_collective_before_init_rejected(self):
        session = AdapCCSession(make_homo_cluster(num_servers=2))
        with pytest.raises(ReproError):
            session.allreduce({0: np.ones(4)})

    def test_setup_creates_context_manager(self):
        session = make_session()
        session.setup()
        assert session.contexts is not None

    def test_profile_period_validation(self):
        session = make_session()
        with pytest.raises(ReproError):
            session.profile(0)


class TestCollectives:
    def test_allreduce(self):
        session = make_session()
        tensors = tensors_for(session)
        result = session.allreduce(tensors)
        expected = sum(tensors.values())
        for rank in tensors:
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_allreduce_with_stragglers_uses_relay_control(self):
        session = make_session()
        tensors = tensors_for(session)
        ready = {rank: 0.0 for rank in tensors}
        ready[3] = 0.03
        result = session.allreduce(tensors, ready_times=ready)
        expected = sum(tensors.values())
        for rank in tensors:
            np.testing.assert_array_equal(result.outputs[rank], expected)
        assert result.decision.proceed
        assert result.decision.relays == [3]

    def test_reduce_and_broadcast(self):
        session = make_session()
        tensors = tensors_for(session)
        reduced = session.reduce(tensors, root=2)
        np.testing.assert_array_equal(reduced.outputs[2], sum(tensors.values()))
        broadcast = session.broadcast(tensors, root=1)
        np.testing.assert_array_equal(broadcast.outputs[7], tensors[1])

    def test_alltoall(self):
        session = make_session()
        tensors = tensors_for(session, length=8 * 16)
        result = session.alltoall(tensors)
        np.testing.assert_array_equal(result.outputs[1][:16], tensors[0][16:32])

    def test_allgather_and_reduce_scatter(self):
        session = make_session()
        tensors = tensors_for(session, length=80)
        gathered = session.allgather(tensors)
        assert len(gathered.outputs[0]) == 80 * 8
        scattered = session.reduce_scatter(tensors)
        total = sum(tensors.values())
        reconstructed = np.concatenate([scattered.outputs[r] for r in range(8)])
        np.testing.assert_array_equal(reconstructed, total)

    def test_strategies_cached_per_signature(self):
        session = make_session()
        tensors = tensors_for(session)
        session.allreduce(tensors)
        assert len(session._strategies) == 1
        session.allreduce(tensors)
        assert len(session._strategies) == 1
        session.reduce(tensors)
        assert len(session._strategies) == 2

    def test_setup_costs_simulated_time_per_strategy(self):
        session = make_session()
        session.setup()
        before = session.sim.now
        session.allreduce(tensors_for(session))
        assert session.sim.now > before  # contexts + transfer time elapsed


class TestAdaptivity:
    def test_periodic_profiling_triggers(self):
        session = make_session()
        session.profile(period=2)
        tensors = tensors_for(session)
        session.allreduce(tensors)
        assert session.profiler.passes_completed == 1
        session.allreduce(tensors)  # 2nd collective -> re-profile
        assert session.profiler.passes_completed == 2

    def test_reprofile_invalidates_strategies(self):
        session = make_session()
        tensors = tensors_for(session)
        session.allreduce(tensors)
        assert session._strategies
        session.reprofile_now()
        assert not session._strategies

    def test_hetero_session_end_to_end(self):
        session = make_session(make_hetero_cluster())
        tensors = tensors_for(session, length=256)
        result = session.allreduce(tensors)
        expected = sum(tensors.values())
        np.testing.assert_array_equal(result.outputs[15], expected)
