"""Tests for the Work/Result queue dispatcher (Fig. 4's dataflow)."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, RetryBudgetExhausted
from repro.hardware import Cluster, make_homo_cluster
from repro.runtime.service import CollectiveService
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology


def make_service():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    synth = Synthesizer(topo)
    cache = {}

    def provider(primitive, tensor_size, participants):
        key = (primitive, tensor_size, tuple(participants))
        if key not in cache:
            cache[key] = synth.synthesize(primitive, tensor_size, participants)
        return cache[key]

    return sim, topo, CollectiveService(topo, provider)


def make_tensors(ranks, length, seed=0):
    rng = np.random.default_rng(seed)
    return {r: rng.integers(0, 9, length).astype(np.float64) for r in ranks}


class TestCollectiveService:
    def test_one_allreduce_through_the_queues(self):
        sim, topo, service = make_service()
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 512)
        received = {}

        def framework(sim, rank):
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
            sequence, output = yield service.fetch(rank)
            received[rank] = output

        for rank in ranks:
            sim.process(framework(sim, rank))
        sim.run()
        expected = sum(tensors.values())
        for rank in ranks:
            np.testing.assert_array_equal(received[rank], expected)
        assert service.executed == 1

    def test_requests_execute_in_fifo_order(self):
        sim, topo, service = make_service()
        service.start()
        ranks = sorted(service.queues)
        first = make_tensors(ranks, 64, seed=1)
        second = make_tensors(ranks, 64, seed=2)
        outputs = {rank: [] for rank in ranks}

        def framework(sim, rank):
            service.submit(rank, Primitive.ALLREDUCE, first[rank])
            service.submit(rank, Primitive.ALLREDUCE, second[rank])
            for _ in range(2):
                _seq, output = yield service.fetch(rank)
                outputs[rank].append(output)

        for rank in ranks:
            sim.process(framework(sim, rank))
        sim.run()
        np.testing.assert_array_equal(outputs[0][0], sum(first.values()))
        np.testing.assert_array_equal(outputs[0][1], sum(second.values()))
        assert service.executed == 2

    def test_straggler_submission_delays_collective(self):
        """The collective only triggers when every rank has submitted."""
        sim, topo, service = make_service()
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 128)
        finish_times = {}

        def framework(sim, rank, delay):
            yield sim.timeout(delay)
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
            yield service.fetch(rank)
            finish_times[rank] = sim.now

        for rank in ranks:
            sim.process(framework(sim, rank, 0.5 if rank == 3 else 0.0))
        sim.run()
        assert min(finish_times.values()) >= 0.5

    def test_disagreeing_primitives_rejected(self):
        sim, topo, service = make_service()
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 64)
        for rank in ranks:
            primitive = Primitive.ALLTOALL if rank == 0 else Primitive.ALLREDUCE
            service.submit(
                rank, Primitive.ALLREDUCE if rank else Primitive.ALLTOALL, tensors[rank]
            )
        with pytest.raises(CommunicatorError):
            sim.run()

    def test_unknown_rank_rejected(self):
        _sim, _topo, service = make_service()
        with pytest.raises(CommunicatorError):
            service.submit(99, Primitive.ALLREDUCE, np.ones(4))

    def test_stop_prevents_further_dispatches(self):
        sim, topo, service = make_service()
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 64)
        for rank in ranks:
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
        sim.run()
        assert service.executed == 1
        service.stop()
        # The dispatcher is already blocked polling for the next batch, so
        # one more batch may drain; anything after that stays queued.
        for _ in range(2):
            for rank in ranks:
                service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
        sim.run()
        assert service.executed == 2


def make_timeout_service(**kwargs):
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    synth = Synthesizer(topo)

    def provider(primitive, tensor_size, participants):
        return synth.synthesize(primitive, tensor_size, participants)

    service = CollectiveService(
        topo, provider, timeout_seconds=0.1, max_retries=2, **kwargs
    )
    return sim, service


def degrade_with_silent_rank(sim, service, silent=3):
    """Submit from every rank but one and run the retry path to exhaustion."""
    service.start()
    ranks = sorted(service.queues)
    tensors = make_tensors(ranks, 64)
    for rank in ranks:
        if rank != silent:
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
    sim.run()
    assert service.degradations
    return service.degradations[0]


class TestRetryJitter:
    def test_jitter_fraction_validated(self):
        with pytest.raises(CommunicatorError):
            make_timeout_service(jitter_fraction=1.0)
        with pytest.raises(CommunicatorError):
            make_timeout_service(jitter_fraction=-0.1)

    def test_same_seed_jitters_identically(self):
        """The jitter draw flows through the session RNG, so two replays
        with one seed stay comparable down to the retry timestamps."""
        first = degrade_with_silent_rank(*make_timeout_service(jitter_fraction=0.3, seed=11))
        second = degrade_with_silent_rank(*make_timeout_service(jitter_fraction=0.3, seed=11))
        assert first.completed_at == second.completed_at
        assert first.retries == second.retries

    def test_jitter_spreads_the_retry_windows(self):
        plain = degrade_with_silent_rank(*make_timeout_service(jitter_fraction=0.0, seed=11))
        jittered = degrade_with_silent_rank(*make_timeout_service(jitter_fraction=0.3, seed=11))
        assert jittered.completed_at != plain.completed_at
        # Jitter perturbs each window by at most +-30%: the exhausted
        # retry schedule stays within that envelope of the plain one.
        assert abs(jittered.completed_at - plain.completed_at) < 0.3 * plain.completed_at

    def test_explicit_session_rng_is_used(self):
        rng = np.random.default_rng(11)
        sim, service = make_timeout_service(jitter_fraction=0.3, rng=rng)
        assert service.rng is rng


class TestEpochFencing:
    def test_stale_epoch_submission_dropped_not_double_counted(self):
        sim, topo, service = make_service()
        service.advance_epoch(2)
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 64)
        stale = np.full(64, 1000.0)
        received = {}

        def framework(sim, rank):
            if rank == 0:
                # Composed under the deposed coordinator: must be fenced.
                service.submit(rank, Primitive.ALLREDUCE, stale, epoch=1)
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank], epoch=2)
            _seq, output = yield service.fetch(rank)
            received[rank] = output

        for rank in ranks:
            sim.process(framework(sim, rank))
        sim.run()
        assert service.fenced_submissions == 1
        assert service.executed == 1
        expected = sum(tensors.values())
        for rank in ranks:
            np.testing.assert_array_equal(received[rank], expected)

    def test_unstamped_submissions_are_epoch_unaware(self):
        sim, topo, service = make_service()
        service.advance_epoch(5)
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 64)
        for rank in ranks:
            service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
        sim.run()
        assert service.executed == 1
        assert service.fenced_submissions == 0

    def test_epoch_must_not_regress(self):
        _sim, _topo, service = make_service()
        service.advance_epoch(3)
        service.advance_epoch(3)  # idempotent re-announcement is fine
        with pytest.raises(CommunicatorError):
            service.advance_epoch(2)


class TestRetryBackoffCap:
    """Satellite: the exponential backoff saturates at a configurable cap,
    and exhaustion can be a terminal error instead of silent degradation."""

    def test_cap_validation(self):
        with pytest.raises(CommunicatorError):
            make_timeout_service(max_backoff_seconds=0.05)  # below the timeout
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        topo = LogicalTopology.from_cluster(cluster)
        with pytest.raises(CommunicatorError):
            # A cap without a timeout has nothing to cap.
            CollectiveService(topo, lambda *a: None, max_backoff_seconds=1.0)

    def test_cap_shortens_the_exhausted_schedule(self):
        slow = degrade_with_silent_rank(
            *make_timeout_service(backoff_factor=2.0)
        )
        capped = degrade_with_silent_rank(
            *make_timeout_service(backoff_factor=2.0, max_backoff_seconds=0.1)
        )
        # Uncapped: 0.1+0.2+0.4; capped: three 0.1s windows.
        assert capped.completed_at < slow.completed_at
        assert capped.completed_at == pytest.approx(0.3, rel=0.05)
        assert capped.retries == slow.retries

    def test_cap_keeps_seeded_jitter_replayable(self):
        kwargs = dict(jitter_fraction=0.3, max_backoff_seconds=0.15, seed=11)
        first = degrade_with_silent_rank(*make_timeout_service(**kwargs))
        second = degrade_with_silent_rank(*make_timeout_service(**kwargs))
        assert first.completed_at == second.completed_at
        assert first.retries == second.retries
        # The jitter multiplies the *capped* window, so every retry stays
        # within the jitter envelope of the cap.
        assert first.completed_at <= (0.1 + 2 * 0.15) * 1.3

    def test_exhaustion_raises_when_configured_terminal(self):
        sim, service = make_timeout_service(fail_on_exhausted=True)
        service.start()
        ranks = sorted(service.queues)
        tensors = make_tensors(ranks, 64)
        for rank in ranks:
            if rank != 3:
                service.submit(rank, Primitive.ALLREDUCE, tensors[rank])
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            sim.run()
        assert excinfo.value.missing == [3]
        assert excinfo.value.attempts == 3  # max_retries=2 -> 3 windows
        assert service.degradations == []

    def test_default_still_degrades_silently(self):
        record = degrade_with_silent_rank(*make_timeout_service())
        assert record.retries == 3  # max_retries=2 -> 3 expired windows
