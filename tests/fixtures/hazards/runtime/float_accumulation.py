# ruff: noqa
"""Seeded hazard: float accumulation folded over an unordered set.

Float addition is not associative; summing a set's elements in hash
order makes the reduced value depend on PYTHONHASHSEED. The fixed form
folds in sorted order.
"""


def total_rate(flows):
    rates = {f.rate for f in flows}
    total = 0.0
    for rate in rates:  # HAZARD: fold order follows hash order
        total += rate
    return total


def total_rate_fixed(flows):
    total = 0.0
    for rate in sorted({f.rate for f in flows}):  # must NOT be flagged
        total += rate
    return total
