"""Direct unit tests for the chunk-pipeline executor, plus consistency
checks between the executor's implicit behaviour and the paper's
behaviour-tuple abstraction."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.hardware import Cluster, make_homo_cluster
from repro.relay import behavior_tuples
from repro.runtime.executor import (
    MODE_GROUPED,
    MODE_INDEPENDENT,
    MODE_MERGE,
    ChunkPipeline,
    Slot,
)
from repro.simulation import Simulator
from repro.synthesis.strategy import Flow, Primitive, SubCollective
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


@pytest.fixture
def topo():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    return LogicalTopology.from_cluster(cluster)


def immediate_source(payloads):
    """Chunk source with data available at t=0."""

    def source(flow_idx, k):
        sim_event = None

        def get():
            return payloads[flow_idx][k]

        return sim_event, get

    return source


def make_source(topo, payloads):
    sim = topo.cluster.sim

    def source(flow_idx, k):
        return sim.timeout(0.0), (lambda: payloads[flow_idx][k])

    return source


class TestChunkPipelineMerge:
    def test_two_flow_aggregation(self, topo):
        sim = topo.cluster.sim
        flows = [
            (0, Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)])),
            (1, Flow(gpu_node(2), gpu_node(0), [gpu_node(2), gpu_node(0)])),
        ]
        payloads = {
            0: [np.array([1.0, 2.0]), np.array([3.0])],
            1: [np.array([10.0, 20.0]), np.array([30.0])],
        }
        pipeline = ChunkPipeline(
            topo,
            flows,
            num_chunks=2,
            chunk_bytes=[16.0, 8.0],
            chunk_source=make_source(topo, payloads),
            mode=MODE_MERGE,
            aggregates_at=lambda n: n == gpu_node(0),
        )
        sim.run_until_complete(pipeline.start())
        np.testing.assert_array_equal(
            pipeline.gather(("agg", gpu_node(0)), gpu_node(0)),
            np.array([11.0, 22.0, 33.0]),
        )

    def test_relay_without_kernel_single_unit(self, topo):
        """An aggregating node with a single incoming unit relays the
        payload unchanged and pays no kernel time (hasKernel condition 2)."""
        sim = topo.cluster.sim
        flows = [
            (0, Flow(gpu_node(2), gpu_node(0), [gpu_node(2), gpu_node(1), gpu_node(0)])),
        ]
        payloads = {0: [np.array([5.0])]}
        pipeline = ChunkPipeline(
            topo,
            flows,
            num_chunks=1,
            chunk_bytes=[8.0],
            chunk_source=make_source(topo, payloads),
            mode=MODE_MERGE,
            aggregates_at=lambda n: n in (gpu_node(0), gpu_node(1)),
        )
        sim.run_until_complete(pipeline.start())
        result = pipeline.gather(("agg", gpu_node(0)), gpu_node(0))
        np.testing.assert_array_equal(result, np.array([5.0]))

    def test_chunks_delivered_in_order(self, topo):
        sim = topo.cluster.sim
        flows = [(0, Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)]))]
        payloads = {0: [np.array([float(k)]) for k in range(5)]}
        pipeline = ChunkPipeline(
            topo,
            flows,
            num_chunks=5,
            chunk_bytes=[8.0] * 5,
            chunk_source=make_source(topo, payloads),
            mode=MODE_MERGE,
            aggregates_at=lambda n: n == gpu_node(0),
        )
        sim.run_until_complete(pipeline.start())
        np.testing.assert_array_equal(
            pipeline.gather(("agg", gpu_node(0)), gpu_node(0)),
            np.arange(5.0),
        )


class TestChunkPipelineModes:
    def test_grouped_single_transfer_for_shared_prefix(self, topo):
        """Broadcast replicas crossing the same edge move once: with two
        destinations behind one network hop, the egress link carries the
        data once, not twice."""
        sim = topo.cluster.sim
        flows = [
            (0, Flow(gpu_node(0), gpu_node(4),
                     [gpu_node(0), nic_node(0), nic_node(1), gpu_node(4)])),
            (1, Flow(gpu_node(0), gpu_node(5),
                     [gpu_node(0), nic_node(0), nic_node(1), gpu_node(5)])),
        ]
        payload = np.ones(1000)
        payloads = {0: [payload], 1: [payload]}
        egress = topo.cluster.nic_egress(0)
        before = egress.bytes_carried
        pipeline = ChunkPipeline(
            topo,
            flows,
            num_chunks=1,
            chunk_bytes=[8000.0],
            chunk_source=make_source(topo, payloads),
            mode=MODE_GROUPED,
        )
        sim.run_until_complete(pipeline.start())
        assert egress.bytes_carried - before == pytest.approx(8000.0)
        np.testing.assert_array_equal(
            pipeline.gather(("bcast", gpu_node(0)), gpu_node(5)), payload
        )

    def test_independent_flows_carry_distinct_payloads(self, topo):
        sim = topo.cluster.sim
        flows = [
            (0, Flow(gpu_node(0), gpu_node(4),
                     [gpu_node(0), nic_node(0), nic_node(1), gpu_node(4)])),
            (1, Flow(gpu_node(1), gpu_node(5),
                     [gpu_node(1), nic_node(0), nic_node(1), gpu_node(5)])),
        ]
        payloads = {0: [np.array([1.0])], 1: [np.array([2.0])]}
        egress = topo.cluster.nic_egress(0)
        before = egress.bytes_carried
        pipeline = ChunkPipeline(
            topo,
            flows,
            num_chunks=1,
            chunk_bytes=[8.0],
            chunk_source=make_source(topo, payloads),
            mode=MODE_INDEPENDENT,
        )
        sim.run_until_complete(pipeline.start())
        assert egress.bytes_carried - before == pytest.approx(16.0)
        np.testing.assert_array_equal(
            pipeline.gather(("flow", 1), gpu_node(5)), np.array([2.0])
        )


class TestChunkPipelineValidation:
    def test_unknown_mode_rejected(self, topo):
        with pytest.raises(CommunicatorError):
            ChunkPipeline(topo, [], 0, [], lambda f, k: None, mode="quantum")

    def test_aggregation_outside_merge_rejected(self, topo):
        with pytest.raises(CommunicatorError):
            ChunkPipeline(
                topo, [], 0, [], lambda f, k: None,
                mode=MODE_GROUPED, aggregates_at=lambda n: True,
            )

    def test_chunk_bytes_length_checked(self, topo):
        with pytest.raises(CommunicatorError):
            ChunkPipeline(topo, [], 3, [1.0], lambda f, k: None)

    def test_double_start_rejected(self, topo):
        pipeline = ChunkPipeline(topo, [], 0, [], lambda f, k: None)
        pipeline.start()
        with pytest.raises(CommunicatorError):
            pipeline.start()

    def test_gather_missing_chunk_rejected(self, topo):
        pipeline = ChunkPipeline(topo, [], 1, [8.0], lambda f, k: None)
        with pytest.raises(CommunicatorError):
            pipeline.gather(("flow", 0), gpu_node(0))


class TestBehaviorExecutorConsistency:
    """The executor's implicit per-node behaviour must match the paper's
    behaviour-tuple abstraction for arbitrary active sets."""

    def make_sc(self, topo, participants, root):
        from repro.synthesis import Synthesizer, SynthesizerConfig

        synth = Synthesizer(topo, SynthesizerConfig(parallelism=1))
        strategy = synth.synthesize(Primitive.REDUCE, 8192.0, participants, root=root)
        return strategy, strategy.subcollectives[0]

    @pytest.mark.parametrize("active_mask", [0b11111111, 0b11110101, 0b10000001])
    def test_partial_reduce_matches_tuples(self, topo, active_mask):
        from repro.runtime import run_reduce

        participants = list(range(8))
        active = [r for r in participants if active_mask & (1 << r)]
        if 0 not in active:
            active.append(0)
        strategy, sc = self.make_sc(topo, participants, root=0)
        tuples = behavior_tuples(sc, Primitive.REDUCE, active)

        inputs = {r: np.full(64, float(r + 1)) for r in participants}
        result = run_reduce(topo, strategy, inputs, active_ranks=active)
        expected = sum(inputs[r] for r in active)
        np.testing.assert_array_equal(result.outputs[0], expected)

        # Tuple sanity: the root receives iff any non-root is active; a
        # rank sends iff it is active or has active upstream.
        non_root_active = [r for r in active if r != 0]
        assert tuples[0].has_recv == bool(non_root_active)
        for rank, t in tuples.items():
            if rank != 0 and not t.is_active and not t.has_recv:
                assert not t.has_send
