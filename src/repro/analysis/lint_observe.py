"""Observe-log lint: the watchdog's causal chain, statically checked.

The observe watchdog's whole claim is discipline: verdicts only with
evidence, re-probes only in response to verdicts, re-synthesis only past
the hysteresis threshold, and nothing at all while disabled. This pass
walks an :class:`~repro.observe.verdicts.ObserveLog` (or its JSONL
export) and checks exactly that chain:

* the first record is the config header, and it is unique;
* a log whose header says ``enabled: false`` contains nothing else;
* every verdict cites a non-empty, time-ordered evidence window that
  does not postdate the verdict, carries a known kind/direction, and a
  CUSUM statistic actually past the configured threshold;
* every re-probe cites at least one earlier verdict, and probes only
  links those verdicts implicated;
* every re-synthesis cites an earlier re-probe, respects the hysteresis
  bound (|refreshed/stale − 1| > hysteresis), and the re-synthesized
  finish time does not exceed the refreshed stale finish it replaced;
* record timestamps are monotone non-decreasing (sim clock discipline).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.verify_strategy import Violation
from repro.observe.verdicts import (
    CONFIG_RECORD,
    REPROBE_RECORD,
    RESYNTHESIS_RECORD,
    VERDICT_RECORD,
    AnomalyKind,
    parse_observe_jsonl,
)

_KNOWN_TYPES = (CONFIG_RECORD, VERDICT_RECORD, REPROBE_RECORD, RESYNTHESIS_RECORD)
_KNOWN_KINDS = tuple(kind.value for kind in AnomalyKind)
#: Tolerance for the "re-synthesis must not be worse" comparison: the new
#: strategy's predicted finish may equal the refreshed stale finish (the
#: optimizer re-derived the same plan) but must not exceed it materially.
_FINISH_SLACK = 1e-9


def _record_time(record: Dict[str, Any]):
    return record.get("time", record.get("start"))


def lint_observe_records(records: Sequence[Dict[str, Any]]) -> List[Violation]:
    """Check one observe log's records; returns all violations found."""
    violations: List[Violation] = []
    if not records:
        violations.append(
            Violation("observe-header", "log", "empty log: missing config header")
        )
        return violations

    header = records[0]
    if header.get("type") != CONFIG_RECORD:
        violations.append(
            Violation(
                "observe-header",
                "record0",
                f"first record must be the config header, got {header.get('type')!r}",
            )
        )
        header = {}
    for index, record in enumerate(records[1:], start=1):
        if record.get("type") == CONFIG_RECORD:
            violations.append(
                Violation(
                    "observe-header", f"record{index}", "duplicate config header"
                )
            )

    enabled = bool(header.get("enabled", True))
    body = [r for r in records[1:] if r.get("type") != CONFIG_RECORD]
    if not enabled and body:
        violations.append(
            Violation(
                "observe-disabled",
                "log",
                f"{len(body)} record(s) emitted while the watchdog was disabled",
            )
        )

    threshold = float(header.get("cusum_threshold", 0.0))
    hysteresis = float(header.get("hysteresis", 0.0))

    verdicts: Dict[str, Dict[str, Any]] = {}
    reprobes: Dict[str, Dict[str, Any]] = {}
    last_time = None
    for index, record in enumerate(body, start=1):
        record_type = record.get("type")
        subject = f"record{index}"
        if record_type not in _KNOWN_TYPES:
            violations.append(
                Violation(
                    "observe-record", subject, f"unknown record type {record_type!r}"
                )
            )
            continue

        time = _record_time(record)
        if time is None:
            violations.append(
                Violation("observe-monotonic", subject, "record carries no timestamp")
            )
        else:
            if last_time is not None and time < last_time:
                violations.append(
                    Violation(
                        "observe-monotonic",
                        subject,
                        f"time {time} precedes previous record's {last_time}",
                    )
                )
            last_time = time

        if record_type == VERDICT_RECORD:
            violations.extend(_lint_verdict(record, subject, threshold))
            if "id" in record:
                verdicts[str(record["id"])] = record
        elif record_type == REPROBE_RECORD:
            violations.extend(_lint_reprobe(record, subject, verdicts))
            if "id" in record:
                reprobes[str(record["id"])] = record
        elif record_type == RESYNTHESIS_RECORD:
            violations.extend(
                _lint_resynthesis(record, subject, reprobes, hysteresis)
            )
    return violations


def _lint_verdict(
    record: Dict[str, Any], subject: str, threshold: float
) -> List[Violation]:
    violations: List[Violation] = []
    name = str(record.get("id", subject))
    if record.get("kind") not in _KNOWN_KINDS:
        violations.append(
            Violation(
                "observe-kind", name, f"unknown anomaly kind {record.get('kind')!r}"
            )
        )
    if record.get("direction") not in ("up", "down"):
        violations.append(
            Violation(
                "observe-kind",
                name,
                f"verdict direction must be up/down, got {record.get('direction')!r}",
            )
        )
    evidence = record.get("evidence") or []
    if not evidence:
        violations.append(
            Violation("observe-evidence", name, "verdict cites no evidence window")
        )
    else:
        times = []
        for sample in evidence:
            if not isinstance(sample, (list, tuple)) or len(sample) != 2:
                violations.append(
                    Violation(
                        "observe-evidence",
                        name,
                        f"evidence sample {sample!r} is not a (time, value) pair",
                    )
                )
                break
            times.append(float(sample[0]))
        else:
            if times != sorted(times):
                violations.append(
                    Violation(
                        "observe-evidence", name, "evidence window is not time-ordered"
                    )
                )
            if "time" in record and times and times[-1] > float(record["time"]):
                violations.append(
                    Violation(
                        "observe-evidence",
                        name,
                        "evidence postdates the verdict it supports",
                    )
                )
    if threshold > 0 and float(record.get("statistic", 0.0)) <= threshold:
        violations.append(
            Violation(
                "observe-threshold",
                name,
                f"statistic {record.get('statistic')} did not exceed the "
                f"configured CUSUM threshold {threshold}",
            )
        )
    if int(record.get("iteration", -1)) < 0:
        violations.append(
            Violation("observe-kind", name, "verdict iteration must be non-negative")
        )
    return violations


def _lint_reprobe(
    record: Dict[str, Any], subject: str, verdicts: Dict[str, Dict[str, Any]]
) -> List[Violation]:
    violations: List[Violation] = []
    name = str(record.get("id", subject))
    cited = [str(v) for v in record.get("verdicts") or []]
    if not cited:
        violations.append(
            Violation(
                "observe-causality", name, "re-probe does not cite any verdict"
            )
        )
    unknown = [v for v in cited if v not in verdicts]
    if unknown:
        violations.append(
            Violation(
                "observe-causality",
                name,
                f"re-probe cites verdict(s) not seen earlier in the log: {unknown}",
            )
        )
    implicated = set()
    for verdict_id in cited:
        implicated.update(verdicts.get(verdict_id, {}).get("implicated_links") or [])
    stray = sorted(set(record.get("probed_links") or []) - implicated)
    if stray:
        violations.append(
            Violation(
                "observe-targeting",
                name,
                f"re-probe touched link(s) no cited verdict implicated: {stray}",
            )
        )
    start, end = record.get("start"), record.get("end")
    if start is not None and end is not None and end < start:
        violations.append(
            Violation("observe-causality", name, "re-probe ends before it starts")
        )
    return violations


def _lint_resynthesis(
    record: Dict[str, Any],
    subject: str,
    reprobes: Dict[str, Dict[str, Any]],
    hysteresis: float,
) -> List[Violation]:
    violations: List[Violation] = []
    name = str(record.get("id", subject))
    reprobe_id = record.get("reprobe")
    if reprobe_id is None or str(reprobe_id) not in reprobes:
        violations.append(
            Violation(
                "observe-causality",
                name,
                f"re-synthesis does not trace to an earlier re-probe "
                f"(cited {reprobe_id!r})",
            )
        )
    stale = float(record.get("stale_finish", 0.0))
    refreshed = float(record.get("refreshed_finish", 0.0))
    bound = float(record.get("hysteresis", hysteresis))
    if stale <= 0:
        violations.append(
            Violation(
                "observe-hysteresis", name, f"stale finish time {stale} is not positive"
            )
        )
    elif abs(refreshed / stale - 1.0) <= bound:
        violations.append(
            Violation(
                "observe-hysteresis",
                name,
                f"re-synthesis fired inside the hysteresis band: "
                f"|{refreshed}/{stale} - 1| <= {bound}",
            )
        )
    new_finish = record.get("new_finish")
    if new_finish is not None and refreshed > 0:
        if float(new_finish) > refreshed * (1.0 + _FINISH_SLACK):
            violations.append(
                Violation(
                    "observe-hysteresis",
                    name,
                    f"re-synthesized finish {new_finish} is worse than the "
                    f"refreshed stale finish {refreshed}",
                )
            )
    return violations


def lint_observe_file(path: str) -> List[Violation]:
    """Lint an exported observe JSONL log on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_observe_records(parse_observe_jsonl(handle.read()))
