"""Graph-reconstruction cost accounting (paper Fig. 19c).

AdapCC reconstructs a communication graph *in place*: profile the links,
re-solve the optimization, and set up fresh transmission contexts — the
job keeps running and no checkpoint is written. NCCL's communicator is
immutable, so adopting a new graph means terminating the job: checkpoint
the model, tear down and rebuild the process group, restore the model, and
rewarm. The helpers here price both paths so the benchmark can report the
savings (74–91 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Sustained checkpoint-write/read bandwidth to shared storage (bytes/s).
CHECKPOINT_BANDWIDTH = 1.2e9
#: Process-group construction: rendezvous plus per-rank NCCL communicator
#: init (unique-id broadcast, ring/tree build, channel setup).
PROCESS_GROUP_BASE_SECONDS = 2.0
PROCESS_GROUP_PER_RANK_SECONDS = 0.25
#: CUDA context + framework re-import on relaunch, per job.
RELAUNCH_BASE_SECONDS = 4.0
#: PyTorch Elastic's default keep-alive window before a fault is acted on.
ELASTIC_DETECT_SECONDS = 15.0


@dataclass
class ReconstructionCost:
    """Breakdown of one graph-reconstruction path."""

    profiling_seconds: float = 0.0
    solve_seconds: float = 0.0
    context_setup_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    relaunch_seconds: float = 0.0
    restore_seconds: float = 0.0
    detect_seconds: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end seconds the reconstruction path costs."""
        return (
            self.profiling_seconds
            + self.solve_seconds
            + self.context_setup_seconds
            + self.checkpoint_seconds
            + self.relaunch_seconds
            + self.restore_seconds
            + self.detect_seconds
        )


def adapcc_reconstruction_cost(
    profiling_seconds: float,
    solve_seconds: float,
    context_setup_seconds: float,
) -> ReconstructionCost:
    """AdapCC's path: profile + solve + context set-up, nothing else.

    All three inputs are *measured* by the caller (simulated profiling
    time, real optimizer wall-clock, simulated context set-up).
    """
    for value in (profiling_seconds, solve_seconds, context_setup_seconds):
        if value < 0:
            raise ReproError("negative cost component")
    return ReconstructionCost(
        profiling_seconds=profiling_seconds,
        solve_seconds=solve_seconds,
        context_setup_seconds=context_setup_seconds,
    )


def nccl_restart_cost(
    world_size: int,
    model_bytes: float,
    include_fault_detection: bool = False,
) -> ReconstructionCost:
    """NCCL's path: checkpoint, relaunch, rebuild the group, restore.

    ``include_fault_detection`` adds PyTorch Elastic's 15 s keep-alive
    window (the fault-recovery comparison); plain strategy changes skip it
    (the operator restarts deliberately).
    """
    if world_size < 1:
        raise ReproError("world size must be >= 1")
    if model_bytes <= 0:
        raise ReproError("model size must be positive")
    checkpoint = model_bytes / CHECKPOINT_BANDWIDTH
    restore = model_bytes / CHECKPOINT_BANDWIDTH
    group = PROCESS_GROUP_BASE_SECONDS + PROCESS_GROUP_PER_RANK_SECONDS * world_size
    return ReconstructionCost(
        checkpoint_seconds=checkpoint,
        relaunch_seconds=RELAUNCH_BASE_SECONDS + group,
        restore_seconds=restore,
        detect_seconds=ELASTIC_DETECT_SECONDS if include_fault_detection else 0.0,
    )
