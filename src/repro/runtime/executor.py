"""The pipelined chunk executor (Sec. V-B).

One :class:`ChunkPipeline` executes one sub-collective *stage* as an event
graph over the simulator:

* a **sender** per (edge, traffic unit) streams chunks in order — the
  analogue of one CUDA stream issuing ``cudaMemcpyPeerAsync`` +
  event-record per chunk; the receiver's ``cudaStreamWaitEvent`` ordering
  is the per-chunk availability slot;
* an **aggregator** per aggregating GPU node waits for the same-index
  chunk from every incoming unit (plus the node's own tensor when it is an
  active source), launches a reduce kernel, and publishes the merged
  chunk — unless only a single unit arrives, in which case it relays
  without a kernel (the paper's ``hasKernel`` condition 2);
* a **source** per flow publishes the local tensor's chunks once the
  worker's data is ready (supporting straggler ready-times and stage
  chaining: an AllReduce broadcast stage sources from the reduce stage's
  output slots, which is exactly the paper's reduce/broadcast pipelining).

Payloads are real numpy arrays, so tests can assert bit-exact collective
semantics, not just timing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.config import verification_enabled
from repro.errors import CommunicatorError
from repro.integrity.channel import data_plane
from repro.simulation.engine import Event, Simulator
from repro.synthesis.strategy import Flow
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology, NodeId, NodeKind

UnitKey = Tuple
SlotKey = Tuple[UnitKey, NodeId, int]

#: Pipeline modes, matching the evaluator's bandwidth-sharing rules.
MODE_MERGE = "merge"  # reduce-family: units merge at aggregation points
MODE_GROUPED = "grouped"  # broadcast: replicas share one unit per source
MODE_INDEPENDENT = "independent"  # alltoall: every flow is its own unit


class Slot:
    """One chunk's availability: an event plus the payload."""

    __slots__ = ("event", "payload")

    def __init__(self, sim: Simulator):
        self.event = Event(sim)
        self.payload: Optional[np.ndarray] = None

    def set(self, payload: np.ndarray) -> None:
        """Publish the chunk and wake every waiter."""
        self.payload = payload
        self.event.succeed()


#: A chunk source: (availability event, payload getter) for chunk k.
ChunkSource = Callable[[int, int], Tuple[Event, Callable[[], np.ndarray]]]


class ChunkPipeline:
    """Event-graph execution of one sub-collective stage."""

    def __init__(
        self,
        topology: LogicalTopology,
        flows: Sequence[Tuple[int, Flow]],
        num_chunks: int,
        chunk_bytes: Sequence[float],
        chunk_source: ChunkSource,
        mode: str = MODE_MERGE,
        aggregates_at: Optional[Callable[[NodeId], bool]] = None,
        kernel_enabled: bool = True,
        tag: str = "collective",
    ):
        if mode not in (MODE_MERGE, MODE_GROUPED, MODE_INDEPENDENT):
            raise CommunicatorError(f"unknown pipeline mode {mode!r}")
        if mode is not MODE_MERGE and aggregates_at is not None:
            raise CommunicatorError("aggregation only applies to merge mode")
        if len(chunk_bytes) != num_chunks:
            raise CommunicatorError("chunk_bytes must have one entry per chunk")
        self.topology = topology
        self.sim = topology.cluster.sim
        self.network = topology.cluster.network
        self.flows = list(flows)
        self.num_chunks = num_chunks
        self.chunk_bytes = list(chunk_bytes)
        self.chunk_source = chunk_source
        self.mode = mode
        self._aggregates_at = aggregates_at or (lambda node: False)
        self.kernel_enabled = kernel_enabled
        self.tag = tag
        self._slots: Dict[SlotKey, Slot] = {}
        self._published: set = set()
        self._started = False
        # Resolved once per pipeline: None when telemetry is off, so the
        # per-chunk hot paths below pay a single identity check and
        # allocate no spans.
        _hub = telemetry_hub()
        self._telemetry = _hub if _hub.enabled else None
        # Same idiom for the data-plane integrity/chaos tap: resolved once
        # per pipeline, None when nobody is attached.
        _plane = data_plane()
        self._data_plane = _plane if _plane.active else None
        #: Flow indices whose data joins *opportunistically*: a late-ready
        #: relay's chunk k is folded into the aggregation at its source
        #: node iff it is ready when chunk k's kernel runs (Sec. IV-C:
        #: "data chunks with the same offset join the ongoing
        #: aggregation"). Chunks that miss the window stay for phase 2.
        self.optional_flows: Dict[int, Flow] = {}
        #: (flow_idx, chunk index) pairs that did make it into phase 1.
        self.included_optional: set = set()

    # -- unit algebra ---------------------------------------------------------------

    def aggregates_at(self, node: NodeId) -> bool:
        """Whether this pipeline merges units at ``node`` (merge mode only)."""
        return self.mode == MODE_MERGE and bool(self._aggregates_at(node))

    def unit_at(self, flow_idx: int, flow: Flow, path_idx: int) -> UnitKey:
        """The traffic unit carrying ``flow`` outgoing from path[path_idx]."""
        if self.mode == MODE_GROUPED:
            return ("bcast", flow.src)
        if self.mode == MODE_INDEPENDENT:
            return ("flow", flow_idx)
        unit: UnitKey = ("flow", flow_idx)
        for idx in range(path_idx + 1):
            if self.aggregates_at(flow.path[idx]):
                unit = ("agg", flow.path[idx])
        return unit

    def slot(self, unit: UnitKey, node: NodeId, k: int) -> Slot:
        """The (lazily created) availability slot of one chunk at one node."""
        key = (unit, node, k)
        if key not in self._slots:
            self._slots[key] = Slot(self.sim)
        return self._slots[key]

    def output_unit(self, flow_idx: int, flow: Flow) -> UnitKey:
        """The unit under which this flow's data arrives at its destination."""
        return self.unit_at(flow_idx, flow, len(flow.path) - 1)

    # -- wiring ----------------------------------------------------------------------

    def validate(self) -> None:
        """Pre-execution deadlock check over the chunk dependency graph.

        Runs the same fixpoint the event graph would resolve dynamically
        (:func:`repro.analysis.stage_unreachable`): if any flow's terminal
        chunk slot is unreachable — e.g. two aggregation points each
        waiting on the other's output — the stage would stall forever, so
        fail fast here instead of hanging the simulator.
        """
        if self.num_chunks == 0 or not self.flows:
            return
        from repro.analysis.verify_strategy import stage_unreachable

        unreachable = stage_unreachable(
            [(idx, flow.path) for idx, flow in self.flows],
            self.mode,
            self._aggregates_at,
        )
        if unreachable:
            unique = list(dict.fromkeys(unreachable))
            detail = ", ".join(f"{unit} at {node}" for unit, node in unique[:4])
            raise CommunicatorError(
                f"stage {self.tag!r} would deadlock: "
                f"{len(unique)} terminal slot(s) unreachable ({detail})"
            )

    def start(self) -> Event:
        """Spawn all processes; returns an event for full completion."""
        if self._started:
            raise CommunicatorError("pipeline already started")
        self._started = True
        if self.num_chunks == 0 or not self.flows:
            return self.sim.timeout(0.0)
        if verification_enabled():
            self.validate()

        senders: Dict[Tuple[NodeId, NodeId, UnitKey], None] = {}
        #: Incoming units per aggregating node.
        agg_inputs: Dict[NodeId, set] = {}
        #: Active source flows per aggregating node (their data merges there).
        agg_local: Dict[NodeId, List[int]] = {}
        terminal_events: List[Event] = []

        for flow_idx, flow in self.flows:
            src = flow.path[0]
            if self.aggregates_at(src):
                agg_inputs.setdefault(src, set())
                agg_local.setdefault(src, []).append(flow_idx)
            else:
                self._spawn_source(flow_idx, flow)
            for path_idx, (i, j) in enumerate(flow.edges):
                unit = self.unit_at(flow_idx, flow, path_idx)
                senders.setdefault((i, j, unit), None)
                if self.aggregates_at(j):
                    agg_inputs.setdefault(j, set()).add(unit)
            out_unit = self.output_unit(flow_idx, flow)
            terminal_events.append(self.slot(out_unit, flow.dst, self.num_chunks - 1).event)

        # Late-join candidates attach as optional contributors wherever an
        # aggregation is already happening at their source node.
        agg_optional: Dict[NodeId, List[int]] = {}
        for flow_idx, flow in self.optional_flows.items():
            src = flow.path[0]
            if src in agg_inputs and self.aggregates_at(src):
                agg_optional.setdefault(src, []).append(flow_idx)

        for (i, j, unit) in senders:
            self.sim.process(self._sender(i, j, unit), name=f"send:{i}->{j}")
        for node, units in agg_inputs.items():
            self.sim.process(
                self._aggregator(
                    node,
                    sorted(units),
                    agg_local.get(node, []),
                    agg_optional.get(node, []),
                ),
                name=f"agg:{node}",
            )
        return self.sim.all_of(terminal_events)

    # -- processes ----------------------------------------------------------------------

    def _spawn_source(self, flow_idx: int, flow: Flow) -> None:
        unit = self.unit_at(flow_idx, flow, 0)
        key = (unit, flow.src)
        if key in self._published:
            return  # grouped mode: another flow already publishes this unit
        self._published.add(key)
        self.sim.process(self._source(flow_idx, flow, unit), name=f"src:{flow.src}")

    def _source(self, flow_idx: int, flow: Flow, unit: UnitKey):
        for k in range(self.num_chunks):
            ready, payload = self.chunk_source(flow_idx, k)
            yield ready
            self.slot(unit, flow.src, k).set(payload())

    def _sender(self, i: NodeId, j: NodeId, unit: UnitKey):
        """Stream chunks of one unit across one edge, in order."""
        edge = self.topology.edge(i, j)
        telemetry = self._telemetry
        for k in range(self.num_chunks):
            slot_in = self.slot(unit, i, k)
            yield slot_in.event
            if telemetry is not None:
                span = telemetry.begin(
                    f"{self.tag}:send",
                    self.sim.now,
                    category="chunk",
                    track=f"link:{i}->{j}",
                    chunk=k,
                    bytes=self.chunk_bytes[k],
                    # Identifies the sender process for the race detector's
                    # happens-before replay; must match
                    # repro.analysis.race.unit_label.
                    unit=f"{unit[0]}:{unit[1]}",
                )
            yield self.network.transfer(
                edge.fluid_links, self.chunk_bytes[k], tag=f"{self.tag}:{i}->{j}"
            )
            if telemetry is not None:
                telemetry.end(span, self.sim.now)
                telemetry.metrics.counter(
                    "chunks_sent_total", "chunks streamed across logical edges"
                ).inc(stage=self.tag.split(":", 1)[0])
            out_slot = self.slot(unit, j, k)
            if not out_slot.event.triggered:
                delivered = slot_in.payload
                if self._data_plane is not None:
                    # Checksum stamp/verify and (under chaos) corruption.
                    delivered = self._data_plane.deliver(
                        f"{i}->{j}", k, delivered, tag=self.tag, now=self.sim.now
                    )
                out_slot.set(delivered)

    def _aggregator(
        self,
        node: NodeId,
        units: List[UnitKey],
        local_flows: List[int],
        optional_flows: Optional[List[int]] = None,
    ):
        """Merge same-index chunks from all units (+ local data) at a node.

        ``optional_flows`` are late-join candidates: their chunk k is
        included iff its source is ready when the aggregation of chunk k
        starts — never waited for.
        """
        out_unit: UnitKey = ("agg", node)
        gpu = (
            self.topology.cluster.gpu(node.index)
            if node.kind is NodeKind.GPU
            else None
        )
        for k in range(self.num_chunks):
            events = [self.slot(unit, node, k).event for unit in units]
            getters: List[Callable[[], np.ndarray]] = []
            for flow_idx in local_flows:
                ready, payload = self.chunk_source(flow_idx, k)
                events.append(ready)
                getters.append(payload)
            yield self.sim.all_of(events)
            parts = [self.slot(unit, node, k).payload for unit in units]
            parts.extend(getter() for getter in getters)
            for flow_idx in optional_flows or ():
                ready, payload = self.chunk_source(flow_idx, k)
                if ready.processed:  # ready right now: join this offset
                    parts.append(payload())
                    self.included_optional.add((flow_idx, k))
            if len(parts) >= 2:
                total = parts[0].copy()
                for part in parts[1:]:
                    total += part
                if self.kernel_enabled and gpu is not None:
                    telemetry = self._telemetry
                    if telemetry is not None:
                        span = telemetry.begin(
                            f"{self.tag}:reduce",
                            self.sim.now,
                            category="reduce",
                            track=f"gpu:{node.index}",
                            chunk=k,
                            bytes=self.chunk_bytes[k],
                            inputs=len(parts),
                        )
                    yield self.sim.timeout(gpu.spec.reduce_kernel_time(self.chunk_bytes[k]))
                    if telemetry is not None:
                        telemetry.end(span, self.sim.now)
                        telemetry.metrics.counter(
                            "reduce_kernels_total", "aggregation kernels launched"
                        ).inc()
            else:
                total = parts[0]  # single unit: relay without a kernel
            self.slot(out_unit, node, k).set(total)

    # -- output access --------------------------------------------------------------------

    def gather(self, unit: UnitKey, node: NodeId) -> np.ndarray:
        """Concatenate all chunk payloads of ``unit`` delivered at ``node``."""
        chunks = []
        for k in range(self.num_chunks):
            slot = self._slots.get((unit, node, k))
            if slot is None or slot.payload is None:
                raise CommunicatorError(f"chunk {k} of {unit} missing at {node}")
            chunks.append(slot.payload)
        return np.concatenate(chunks) if chunks else np.empty(0)

    def output_slots(self, unit: UnitKey, node: NodeId) -> List[Slot]:
        """Per-chunk slots of a unit at a node (for stage chaining)."""
        return [self.slot(unit, node, k) for k in range(self.num_chunks)]
