"""Fig. 17 — ViT training throughput vs batch size.

Companion of Fig. 16 on ViT (208 MB gradients): the paper reports up to
20 % throughput improvement over NCCL, growing with batch size.

Reproduction note: as in Fig. 16, AdapCC wins at every batch size but the
gain shrinks rather than grows with batch (see EXPERIMENTS.md).
"""

import pytest

from repro.bench import Series, measure_training
from repro.hardware import make_hetero_cluster
from repro.training import VIT
from repro.training.trainer import TrainerConfig

BATCHES = [64, 128, 256]
ITERATIONS = 6


def measure():
    results = {}
    for batch in BATCHES:
        for backend in ("adapcc", "nccl"):
            report = measure_training(
                make_hetero_cluster(num_a100=2, num_v100=2),
                backend,
                VIT,
                TrainerConfig(
                    iterations=ITERATIONS, batch=batch, seed=31, jitter_sigma=0.08
                ),
            )
            results[(batch, backend)] = report.throughput
    return results


def test_fig17_vit_throughput_vs_batch(run_once):
    results = run_once(measure)

    series = Series(
        "Fig. 17 — ViT training throughput vs local batch size (hetero)",
        "batch",
        "samples/s",
    )
    series.set_x(BATCHES)
    series.add("adapcc", [results[(b, "adapcc")] for b in BATCHES])
    series.add("nccl", [results[(b, "nccl")] for b in BATCHES])
    series.add(
        "speedup", [results[(b, "adapcc")] / results[(b, "nccl")] for b in BATCHES]
    )
    series.show()
    gains = {b: results[(b, "adapcc")] / results[(b, "nccl")] for b in BATCHES}
    print(f"throughput gains by batch: {gains} (paper: up to 20 %)")

    assert all(g > 1.0 for g in gains.values())
    assert results[(256, "adapcc")] > results[(64, "adapcc")]
