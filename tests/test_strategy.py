"""Tests for the strategy data model and XML round-trip."""

import pytest

from repro.errors import StrategyFormatError, SynthesisError
from repro.synthesis.strategy import (
    Flow,
    Primitive,
    Strategy,
    SubCollective,
    strategy_from_xml,
    strategy_to_xml,
)
from repro.topology.graph import gpu_node, nic_node


def simple_flow():
    return Flow(
        src=gpu_node(0),
        dst=gpu_node(4),
        path=[gpu_node(0), nic_node(0), nic_node(1), gpu_node(4)],
    )


def simple_strategy():
    sc = SubCollective(
        index=0,
        size=1000.0,
        chunk_size=100.0,
        flows=[simple_flow()],
        aggregation={gpu_node(4): True},
        root=gpu_node(4),
    )
    return Strategy(
        primitive=Primitive.REDUCE,
        tensor_size=1000.0,
        participants=[0, 4],
        subcollectives=[sc],
        predicted_time=0.5,
        routing_family="flat-star",
    )


class TestFlow:
    def test_edges(self):
        flow = simple_flow()
        assert flow.edges == [
            (gpu_node(0), nic_node(0)),
            (nic_node(0), nic_node(1)),
            (nic_node(1), gpu_node(4)),
        ]

    def test_path_endpoints_must_match(self):
        with pytest.raises(SynthesisError):
            Flow(src=gpu_node(0), dst=gpu_node(1), path=[gpu_node(0), gpu_node(2)])

    def test_short_path_rejected(self):
        with pytest.raises(SynthesisError):
            Flow(src=gpu_node(0), dst=gpu_node(0), path=[gpu_node(0)])

    def test_gpu_revisit_rejected(self):
        with pytest.raises(SynthesisError):
            Flow(
                src=gpu_node(0),
                dst=gpu_node(0),
                path=[gpu_node(0), gpu_node(1), gpu_node(0)],
            )

    def test_nic_revisit_allowed_for_relays(self):
        # Relay through instance 1's GPU: the NIC node repeats legally.
        flow = Flow(
            src=gpu_node(0),
            dst=gpu_node(8),
            path=[
                gpu_node(0),
                nic_node(0),
                nic_node(1),
                gpu_node(4),
                nic_node(1),
                nic_node(2),
                gpu_node(8),
            ],
        )
        assert len(flow.edges) == 6

    def test_self_loop_rejected(self):
        with pytest.raises(SynthesisError):
            Flow(
                src=gpu_node(0),
                dst=gpu_node(4),
                path=[gpu_node(0), nic_node(0), nic_node(0), gpu_node(4)],
            )


class TestSubCollective:
    def test_num_chunks_ceil(self):
        sc = SubCollective(index=0, size=1050.0, chunk_size=100.0, flows=[simple_flow()])
        assert sc.num_chunks == 11

    def test_num_chunks_zero_size(self):
        sc = SubCollective(index=0, size=0.0, chunk_size=100.0, flows=[])
        assert sc.num_chunks == 0

    def test_aggregation_on_nic_rejected(self):
        with pytest.raises(SynthesisError):
            SubCollective(
                index=0,
                size=10.0,
                chunk_size=10.0,
                flows=[simple_flow()],
                aggregation={nic_node(0): True},
            )

    def test_bad_chunk_rejected(self):
        with pytest.raises(SynthesisError):
            SubCollective(index=0, size=10.0, chunk_size=0.0, flows=[])

    def test_nodes_deduplicated(self):
        sc = SubCollective(index=0, size=10.0, chunk_size=10.0, flows=[simple_flow()])
        assert len(sc.nodes()) == 4


class TestStrategyValidation:
    def test_sizes_must_sum_to_tensor(self):
        with pytest.raises(SynthesisError):
            Strategy(
                primitive=Primitive.REDUCE,
                tensor_size=2000.0,
                participants=[0, 4],
                subcollectives=[
                    SubCollective(index=0, size=1000.0, chunk_size=100.0, flows=[simple_flow()])
                ],
            )

    def test_alltoall_expected_is_per_pair_share(self):
        assert Strategy.expected_total_size(Primitive.ALLTOALL, 800.0, 4) == 200.0

    def test_allgather_expected_scales_with_world(self):
        assert Strategy.expected_total_size(Primitive.ALLGATHER, 100.0, 4) == 400.0

    def test_needs_participants(self):
        with pytest.raises(SynthesisError):
            Strategy(
                primitive=Primitive.REDUCE,
                tensor_size=0.0,
                participants=[],
                subcollectives=[],
            )

    def test_parallelism_property(self):
        assert simple_strategy().parallelism == 1


class TestPrimitive:
    def test_aggregating_primitives(self):
        assert Primitive.REDUCE.needs_aggregation
        assert Primitive.ALLREDUCE.needs_aggregation
        assert Primitive.REDUCE_SCATTER.needs_aggregation
        assert not Primitive.BROADCAST.needs_aggregation
        assert not Primitive.ALLTOALL.needs_aggregation
        assert not Primitive.ALLGATHER.needs_aggregation

    def test_rooted_primitives(self):
        assert Primitive.REDUCE.has_root
        assert Primitive.BROADCAST.has_root
        assert not Primitive.ALLTOALL.has_root


class TestXmlRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = simple_strategy()
        document = strategy_to_xml(original)
        parsed = strategy_from_xml(document)
        assert parsed.primitive == original.primitive
        assert parsed.tensor_size == original.tensor_size
        assert parsed.participants == original.participants
        assert parsed.predicted_time == original.predicted_time
        assert parsed.routing_family == original.routing_family
        sc0, sc1 = original.subcollectives[0], parsed.subcollectives[0]
        assert sc1.size == sc0.size
        assert sc1.chunk_size == sc0.chunk_size
        assert sc1.root == sc0.root
        assert sc1.flows[0].path == sc0.flows[0].path
        assert sc1.aggregation == sc0.aggregation

    def test_malformed_xml_rejected(self):
        with pytest.raises(StrategyFormatError):
            strategy_from_xml("<not-a-strategy/>")
        with pytest.raises(StrategyFormatError):
            strategy_from_xml("garbage <<<")

    def test_unknown_primitive_rejected(self):
        with pytest.raises(StrategyFormatError):
            strategy_from_xml('<strategy primitive="teleport" tensor_size="1"/>')

    def test_bad_node_id_rejected(self):
        document = strategy_to_xml(simple_strategy()).replace("g0", "x0")
        with pytest.raises(StrategyFormatError):
            strategy_from_xml(document)

    def test_xml_is_single_document_string(self):
        document = strategy_to_xml(simple_strategy())
        assert document.startswith("<strategy")
        assert "subcollective" in document
