"""Cluster: instances wired together over a simulated fabric.

The cluster owns the :class:`~repro.simulation.fluid.FluidNetwork` and all
concrete links:

* one **NVLink** fluid link per direction per directly-connected GPU pair;
* one shared **PCIe bus** fluid link per (instance, PCIe switch) — every
  host-mediated movement on that switch crosses it, which is what makes the
  detector's contention probes (two GPUs flooding the same switch, or a GPU
  copy racing a CPU→NIC send) observe reduced bandwidth exactly like on
  real machines;
* one **egress** and one **ingress** fluid link per NIC; an inter-instance
  transfer crosses the source NIC's egress and the destination NIC's
  ingress, so heterogeneous NIC speeds (100 vs 50 Gbps in the paper
  testbed) and tc-style shaping act on the right ends.

Paths returned by :meth:`Cluster.gpu_path` are what the runtime hands to
``FluidNetwork.transfer``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.hardware.gpu import GPU
from repro.hardware.instance import Instance, InstanceSpec
from repro.hardware.links import us
from repro.simulation.engine import Simulator
from repro.simulation.fluid import FluidLink, FluidNetwork

#: Extra socket-loopback latency paid when the issuing process is bound to
#: a NUMA node other than the NIC's (the signal the detector's affinity
#: probe measures).
CROSS_NUMA_LOOPBACK_PENALTY = us(18)


class Cluster:
    """Concrete simulated cluster built from instance specs."""

    def __init__(self, sim: Simulator, specs: Sequence[InstanceSpec]):
        if not specs:
            raise TopologyError("cluster needs at least one instance")
        self.sim = sim
        self.network = FluidNetwork(sim)
        self.instances: List[Instance] = []
        self.gpus: List[GPU] = []
        rank = 0
        for instance_id, spec in enumerate(specs):
            instance = Instance(spec, instance_id, first_rank=rank)
            self.instances.append(instance)
            self.gpus.extend(instance.gpus)
            rank += spec.num_gpus

        self._nvlinks: Dict[Tuple[int, int], FluidLink] = {}
        self._pcie_buses: Dict[Tuple[int, int], FluidLink] = {}
        self._nic_egress: Dict[Tuple[int, int], FluidLink] = {}
        self._nic_ingress: Dict[Tuple[int, int], FluidLink] = {}
        self._nic_duplex: Dict[Tuple[int, int], FluidLink] = {}
        self._build_links()

    # -- construction ---------------------------------------------------------

    def _build_links(self) -> None:
        for instance in self.instances:
            spec = instance.spec
            for a in range(spec.num_gpus):
                for b in range(spec.num_gpus):
                    if a != b and instance.has_nvlink(a, b):
                        ra = instance.gpus[a].rank
                        rb = instance.gpus[b].rank
                        self._nvlinks[(ra, rb)] = FluidLink(
                            f"nvlink:{instance.name}:{a}->{b}",
                            capacity=spec.nvlink.bandwidth,
                            latency=spec.nvlink.latency,
                            per_stream_cap=spec.nvlink.per_stream_cap,
                        )
            switches = {gpu.pcie_switch for gpu in instance.gpus}
            switches.update(nic.pcie_switch for nic in spec.nics)
            for switch in switches:
                self._pcie_buses[(instance.instance_id, switch)] = FluidLink(
                    f"pcie:{instance.name}:sw{switch}",
                    capacity=spec.pcie.bandwidth,
                    latency=spec.pcie.latency,
                    per_stream_cap=spec.pcie.per_stream_cap,
                )
            for nic_idx, nic in enumerate(spec.nics):
                key = (instance.instance_id, nic_idx)
                self._nic_egress[key] = FluidLink(
                    f"nic-out:{instance.name}:{nic.name}",
                    capacity=nic.link.bandwidth,
                    latency=nic.link.latency,
                    per_stream_cap=nic.link.per_stream_cap,
                )
                self._nic_ingress[key] = FluidLink(
                    f"nic-in:{instance.name}:{nic.name}",
                    capacity=nic.link.bandwidth,
                    latency=nic.link.latency,
                    per_stream_cap=nic.link.per_stream_cap,
                )
                if nic.link.duplex_factor != float("inf"):
                    # Couples the send and receive directions: concurrent
                    # in+out traffic shares duplex_factor x line rate
                    # (host staging limits real bidirectional throughput).
                    self._nic_duplex[key] = FluidLink(
                        f"nic-duplex:{instance.name}:{nic.name}",
                        capacity=nic.link.bandwidth * nic.link.duplex_factor,
                        latency=0.0,
                    )

    # -- elastic scaling ---------------------------------------------------------

    def add_instance(self, spec: InstanceSpec) -> Instance:
        """Attach a new instance at runtime (elastic scale-out).

        New GPUs get the next global ranks; the instance's intra-server
        links and NIC links are created and it joins the full NIC mesh
        implicitly (paths are resolved per request). The caller is
        responsible for re-running detection/profiling and rebuilding the
        logical topology — exactly what AdapCC's Detector does "when a new
        worker joins the job" (Sec. IV-A).
        """
        instance_id = len(self.instances)
        instance = Instance(spec, instance_id, first_rank=len(self.gpus))
        self.instances.append(instance)
        self.gpus.extend(instance.gpus)

        for a in range(spec.num_gpus):
            for b in range(spec.num_gpus):
                if a != b and instance.has_nvlink(a, b):
                    ra, rb = instance.gpus[a].rank, instance.gpus[b].rank
                    self._nvlinks[(ra, rb)] = FluidLink(
                        f"nvlink:{instance.name}:{a}->{b}",
                        capacity=spec.nvlink.bandwidth,
                        latency=spec.nvlink.latency,
                        per_stream_cap=spec.nvlink.per_stream_cap,
                    )
        switches = {gpu.pcie_switch for gpu in instance.gpus}
        switches.update(nic.pcie_switch for nic in spec.nics)
        for switch in switches:
            self._pcie_buses[(instance_id, switch)] = FluidLink(
                f"pcie:{instance.name}:sw{switch}",
                capacity=spec.pcie.bandwidth,
                latency=spec.pcie.latency,
                per_stream_cap=spec.pcie.per_stream_cap,
            )
        for nic_idx, nic in enumerate(spec.nics):
            key = (instance_id, nic_idx)
            self._nic_egress[key] = FluidLink(
                f"nic-out:{instance.name}:{nic.name}",
                capacity=nic.link.bandwidth,
                latency=nic.link.latency,
                per_stream_cap=nic.link.per_stream_cap,
            )
            self._nic_ingress[key] = FluidLink(
                f"nic-in:{instance.name}:{nic.name}",
                capacity=nic.link.bandwidth,
                latency=nic.link.latency,
                per_stream_cap=nic.link.per_stream_cap,
            )
            if nic.link.duplex_factor != float("inf"):
                self._nic_duplex[key] = FluidLink(
                    f"nic-duplex:{instance.name}:{nic.name}",
                    capacity=nic.link.bandwidth * nic.link.duplex_factor,
                    latency=0.0,
                )
        return instance

    # -- lookups ---------------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total number of GPUs (= workers = ranks) in the job."""
        return len(self.gpus)

    def gpu(self, rank: int) -> GPU:
        """The GPU holding global ``rank``."""
        if not 0 <= rank < len(self.gpus):
            raise TopologyError(f"rank {rank} out of range [0, {len(self.gpus)})")
        return self.gpus[rank]

    def instance_of(self, rank: int) -> Instance:
        """The instance hosting ``rank``."""
        return self.instances[self.gpu(rank).instance_id]

    def ranks_on_instance(self, instance_id: int) -> List[int]:
        """Global ranks of all GPUs on one instance, in local-index order."""
        return [gpu.rank for gpu in self.instances[instance_id].gpus]

    def nvlink(self, src_rank: int, dst_rank: int) -> Optional[FluidLink]:
        """The directed NVLink between two ranks, or None."""
        return self._nvlinks.get((src_rank, dst_rank))

    def pcie_bus(self, instance_id: int, switch: int) -> FluidLink:
        """The shared PCIe-switch bus link."""
        try:
            return self._pcie_buses[(instance_id, switch)]
        except KeyError:
            raise TopologyError(f"no PCIe switch {switch} on instance {instance_id}")

    def nic_egress(self, instance_id: int, nic_idx: int = 0) -> FluidLink:
        """Outbound NIC link of an instance."""
        return self._nic_egress[(instance_id, nic_idx)]

    def nic_ingress(self, instance_id: int, nic_idx: int = 0) -> FluidLink:
        """Inbound NIC link of an instance."""
        return self._nic_ingress[(instance_id, nic_idx)]

    def all_links(self) -> List[FluidLink]:
        """Every fluid link of the cluster, in deterministic (name) order.

        Observability helper: the bench snapshot and telemetry summaries
        rank links by :attr:`~repro.simulation.fluid.FluidLink.bytes_carried`
        to find the communication bottleneck.
        """
        links: List[FluidLink] = [
            *self._nvlinks.values(),
            *self._pcie_buses.values(),
            *self._nic_egress.values(),
            *self._nic_ingress.values(),
            *self._nic_duplex.values(),
        ]
        return sorted(links, key=lambda link: link.name)

    # -- data-plane paths --------------------------------------------------------

    def gpu_path(self, src_rank: int, dst_rank: int) -> List[FluidLink]:
        """Fluid links crossed by a transfer from ``src_rank`` to ``dst_rank``.

        Same instance: the direct NVLink when one exists, otherwise a
        host-mediated PCIe path (crossing the shared switch bus once per
        side — twice when both GPUs sit under the same switch, halving the
        achieved bandwidth exactly as the paper's probe observes).

        Different instances: source NIC egress then destination NIC
        ingress. Device↔host staging is not modelled on this path because
        the communicator pipelines it behind network transfers (Sec. V-B,
        "hidden memory movements"); the detector's probes model PCIe
        explicitly instead.
        """
        if src_rank == dst_rank:
            return []
        src = self.gpu(src_rank)
        dst = self.gpu(dst_rank)
        if src.instance_id == dst.instance_id:
            direct = self._nvlinks.get((src_rank, dst_rank))
            if direct is not None:
                return [direct]
            src_bus = self.pcie_bus(src.instance_id, src.pcie_switch)
            dst_bus = self.pcie_bus(dst.instance_id, dst.pcie_switch)
            if src_bus is dst_bus:
                return [src_bus, src_bus]
            return [src_bus, dst_bus]
        return self.nic_path(src.instance_id, dst.instance_id)

    def nic_path(self, src_instance: int, dst_instance: int) -> List[FluidLink]:
        """Fluid links of one inter-instance network hop (NIC to NIC).

        Includes each side's duplex-coupling link when the NIC spec caps
        bidirectional throughput.
        """
        path = [self.nic_egress(src_instance)]
        duplex_src = self._nic_duplex.get((src_instance, 0))
        if duplex_src is not None:
            path.append(duplex_src)
        duplex_dst = self._nic_duplex.get((dst_instance, 0))
        if duplex_dst is not None:
            path.append(duplex_dst)
        path.append(self.nic_ingress(dst_instance))
        return path

    def gpu_to_host_path(self, rank: int) -> List[FluidLink]:
        """Path of a device-to-host copy (used by detector probes)."""
        gpu = self.gpu(rank)
        return [self.pcie_bus(gpu.instance_id, gpu.pcie_switch)]

    def host_to_nic_path(self, instance_id: int, nic_idx: int = 0) -> List[FluidLink]:
        """PCIe path of a CPU→NIC send (used by detector probe 3)."""
        nic = self.instances[instance_id].nics[nic_idx]
        return [self.pcie_bus(instance_id, nic.pcie_switch)]

    def loopback_latency(self, instance_id: int, numa_node: int, nic_idx: int = 0) -> float:
        """Socket-loopback latency to a NIC from a process bound to a NUMA node.

        Ground truth behind the detector's NUMA-affinity probe: binding to
        the NIC's own NUMA node is fastest; any other node pays
        :data:`CROSS_NUMA_LOOPBACK_PENALTY`.
        """
        instance = self.instances[instance_id]
        if not 0 <= numa_node < instance.spec.num_numa_nodes:
            raise TopologyError(f"NUMA node {numa_node} out of range on {instance.name}")
        nic = instance.nics[nic_idx]
        base = 2 * nic.link.latency
        if numa_node != nic.numa_node:
            return base + CROSS_NUMA_LOOPBACK_PENALTY
        return base

    # -- shaping (tc equivalent) ---------------------------------------------------

    def set_nic_bandwidth(
        self, instance_id: int, bandwidth: float, nic_idx: int = 0, direction: str = "both"
    ) -> None:
        """Change a NIC's available bandwidth mid-run (the paper uses tc).

        ``direction`` is ``"egress"``, ``"ingress"`` or ``"both"``.
        """
        if direction not in ("egress", "ingress", "both"):
            raise TopologyError(f"bad direction {direction!r}")
        if direction in ("egress", "both"):
            self.network.set_capacity(self.nic_egress(instance_id, nic_idx), bandwidth)
        if direction in ("ingress", "both"):
            self.network.set_capacity(self.nic_ingress(instance_id, nic_idx), bandwidth)

    def nominal_nic_bandwidth(self, instance_id: int, nic_idx: int = 0) -> float:
        """The NIC's spec-sheet bandwidth (before any shaping)."""
        return self.instances[instance_id].nics[nic_idx].link.bandwidth
