"""The online watchdog: telemetry stream in, targeted adaptation out.

:class:`Watchdog` is a :class:`~repro.telemetry.core.TelemetryConsumer`
subscribed to the live hub stream. It maintains rolling statistics —
EWMA baselines + CUSUM change detectors (:mod:`repro.observe.detectors`)
— over four signal families:

* **per-link throughput** from the chunk pipeline's ``link:*`` spans,
  aggregated to one bytes/busy-second sample per link per iteration;
* **α–β fit residuals** from the profiler's ``alpha-beta-fit`` instants,
  one signal per edge;
* **per-rank lateness** from ``ski-rental-decision`` instants (each
  rank's ready delay in excess of the iteration median, normalized by the
  buy cost);
* **iteration time**, fed explicitly by the driving loop through
  :meth:`end_iteration`.

When a detector fires the watchdog emits a typed
:class:`~repro.observe.verdicts.AnomalyVerdict` and *closes the loop*:
it asks the profiler to re-probe only the implicated links, re-evaluates
the live strategy's eq.-4 finish time under the refreshed costs, and —
only if the finish time moved beyond the hysteresis threshold — triggers
re-synthesis through the caller-supplied hook (which routes through the
two-phase recovery transition machinery where a control plane exists).
This replaces blind fixed-period re-profiling: probes go exactly where
the evidence points, exactly when the evidence demands.

Every decision advances on the sim clock only, so same-seed runs produce
byte-identical verdict logs (see ``tests/test_observe.py``); the
``--observe`` analysis pass lints the log's causal chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObserveError
from repro.observe.detectors import CusumDetector, EwmaBaseline, SignalTracker
from repro.observe.verdicts import (
    CONFIG_RECORD,
    REPROBE_RECORD,
    RESYNTHESIS_RECORD,
    AnomalyKind,
    AnomalyVerdict,
    ObserveLog,
    link_endpoints,
)
from repro.telemetry.core import Span, TelemetryConsumer, TelemetryHub
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology, NodeId, NodeKind


@dataclass
class ObserveConfig:
    """Tunables of the watchdog's detectors and its adaptation policy."""

    #: Master switch: a disabled watchdog allocates no detector state,
    #: subscribes to nothing, and its log holds only the config header.
    enabled: bool = True
    #: EWMA smoothing / warm-up for link-throughput and iteration signals.
    smoothing: float = 0.3
    warmup: int = 3
    #: CUSUM firing threshold and per-sample drift allowance (relative
    #: deviations, so 0.25 tolerates 25 % per-sample noise).
    cusum_threshold: float = 1.0
    cusum_drift: float = 0.25
    #: Evidence-window length attached to verdicts.
    window: int = 8
    #: Warm-up for the α–β residual signals (fits are rare — one per edge
    #: per profiling pass — so they must arm faster).
    fit_warmup: int = 2
    #: Iterations a subject stays muted after raising a verdict.
    cooldown_iterations: int = 2
    #: Fractional eq.-4 finish-time change that justifies re-synthesis.
    hysteresis: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.hysteresis:
            raise ObserveError("hysteresis must be positive")
        if self.cooldown_iterations < 0:
            raise ObserveError("cooldown must be non-negative")

    def header(self) -> Dict:
        """The observe-log config header record."""
        return {
            "type": CONFIG_RECORD,
            "enabled": self.enabled,
            "smoothing": self.smoothing,
            "warmup": self.warmup,
            "cusum_threshold": self.cusum_threshold,
            "cusum_drift": self.cusum_drift,
            "window": self.window,
            "fit_warmup": self.fit_warmup,
            "cooldown_iterations": self.cooldown_iterations,
            "hysteresis": self.hysteresis,
        }


def _node_from_name(name: str) -> NodeId:
    """Parse ``"g3"`` / ``"n1"`` back into a :class:`NodeId`."""
    if len(name) < 2 or name[0] not in ("g", "n") or not name[1:].isdigit():
        raise ObserveError(f"not a node name: {name!r}")
    kind = NodeKind.GPU if name[0] == "g" else NodeKind.NIC
    return NodeId(kind, int(name[1:]))


class Watchdog(TelemetryConsumer):
    """Online anomaly detection driving targeted re-probing/re-synthesis.

    The three hooks are optional so the watchdog degrades gracefully to a
    pure detector (verdicts only):

    * ``profiler`` — anything with a ``reprobe(edges)`` method (the
      targeted pass on :class:`~repro.profiling.profiler.Profiler`);
    * ``current_strategy`` — zero-arg callable returning the live
      :class:`~repro.synthesis.strategy.Strategy` (or ``None``);
    * ``resynthesize`` — callable taking a reason string, installing a
      fresh strategy (through the two-phase transition machinery where
      one exists) and returning it;
    * ``attribution`` — zero-arg callable returning the current
      iteration's top-1 attributed bottleneck link (``"g0->n1"`` form) or
      ``None`` — typically :meth:`repro.critpath.consumer.
      CritpathConsumer.top_link`. When the attributed link is among a
      verdict round's implicated links, the re-probe narrows to that
      link (plus its reverse direction, when implicated — a probe
      measures the physical medium both ways) and the verdicts carry it
      as ``attributed_link``.
    """

    def __init__(
        self,
        topology: LogicalTopology,
        config: Optional[ObserveConfig] = None,
        profiler=None,
        current_strategy: Optional[Callable[[], object]] = None,
        resynthesize: Optional[Callable[[str], object]] = None,
        synthesizer=None,
        attribution: Optional[Callable[[], Optional[str]]] = None,
    ):
        self.topology = topology
        self.config = config or ObserveConfig()
        self.profiler = profiler
        self.current_strategy = current_strategy
        self.resynthesize = resynthesize
        self.synthesizer = synthesizer
        self.attribution = attribution
        #: The attribution hook's answer for the iteration being scored
        #: (refreshed at the top of :meth:`end_iteration`).
        self._attributed_link: Optional[str] = None
        self.log = ObserveLog()
        self.log.append(self.config.header())
        self._hub: Optional[TelemetryHub] = None
        self._iteration = -1
        self._verdict_count = 0
        self._reprobe_count = 0
        self._resynthesis_count = 0
        if self.config.enabled:
            #: Per-iteration accumulators (cleared at every iteration end).
            self._link_bytes: Dict[str, float] = {}
            self._link_busy: Dict[str, float] = {}
            self._pending_delays: Dict[int, float] = {}
            #: Rolling signals, one tracker per monitored subject.
            self._link_signals: Dict[str, SignalTracker] = {}
            #: link name -> whether it maps to a *profiled* topology edge.
            #: Only those are monitored: a verdict on a staging (LOCAL)
            #: link could never drive a re-probe, and its throughput is a
            #: backpressure shadow of the NIC's anyway.
            self._monitored: Dict[str, bool] = {}
            self._fit_signals: Dict[str, SignalTracker] = {}
            self._rank_signals: Dict[int, SignalTracker] = {}
            self._iteration_signal = self._make_tracker(relative=True)
            self._cooldown: Dict[str, int] = {}

    # -- wiring ------------------------------------------------------------------

    @property
    def sim(self):
        """The simulator whose clock stamps every verdict."""
        return self.topology.cluster.sim

    def attach(self, hub: Optional[TelemetryHub] = None) -> "Watchdog":
        """Subscribe to the hub's live record stream.

        The hub must be enabled: the watchdog *is* a telemetry consumer,
        and attaching it to a silent stream would just never detect.
        Disabled watchdogs are a no-op (nothing subscribed, no state).
        """
        if not self.config.enabled:
            return self
        hub = hub or telemetry_hub()
        if not hub.enabled:
            raise ObserveError(
                "the observe watchdog needs an enabled telemetry hub "
                "(set REPRO_TELEMETRY=1 or AdapCCSession(telemetry=True))"
            )
        hub.subscribe(self)
        self._hub = hub
        return self

    def detach(self) -> None:
        """Unsubscribe from the hub (idempotent)."""
        if self._hub is not None:
            self._hub.unsubscribe(self)
            self._hub = None

    # -- detector construction ---------------------------------------------------

    def _make_tracker(self, relative: bool, warmup: Optional[int] = None) -> SignalTracker:
        cfg = self.config
        return SignalTracker(
            baseline=EwmaBaseline(
                smoothing=cfg.smoothing,
                warmup=warmup if warmup is not None else cfg.warmup,
                relative=relative,
            ),
            cusum=CusumDetector(threshold=cfg.cusum_threshold, drift=cfg.cusum_drift),
            window=cfg.window,
        )

    # -- stream consumption (TelemetryConsumer) ----------------------------------

    def on_span(self, span: Span) -> None:
        """Accumulate chunk-pipeline link spans into per-iteration sums."""
        if not self.config.enabled:
            return
        if span.category != "chunk" or not span.track.startswith("link:"):
            return
        duration = span.duration
        if duration is None or duration <= 0:
            return
        link = span.track[len("link:"):]
        self._link_bytes[link] = self._link_bytes.get(link, 0.0) + float(
            span.args.get("bytes", 0.0)
        )
        self._link_busy[link] = self._link_busy.get(link, 0.0) + duration

    def on_event(self, event: Span) -> None:
        """Fold profiler fits and ski-rental verdicts into the signals."""
        if not self.config.enabled:
            return
        if event.name == "alpha-beta-fit":
            subject = f"fit:{event.args.get('edge', '?')}"
            tracker = self._fit_signals.get(subject)
            if tracker is None:
                tracker = self._fit_signals[subject] = self._make_tracker(
                    relative=False, warmup=self.config.fit_warmup
                )
            tracker.observe(event.start, float(event.args.get("residual", 0.0)))
        elif event.name == "ski-rental-decision":
            delays = {
                int(rank): float(delay)
                for rank, delay in (event.args.get("ready_delays") or {}).items()
                if delay is not None
            }
            if not delays:
                return
            ordered = sorted(delays.values())
            median = ordered[len(ordered) // 2]
            scale = max(float(event.args.get("buy_cost_seconds", 0.0)), 1e-9)
            for rank, delay in delays.items():
                excess = max(0.0, delay - median) / scale
                self._pending_delays[rank] = max(
                    self._pending_delays.get(rank, 0.0), excess
                )

    # -- the per-iteration evaluation (the closed loop) --------------------------

    def end_iteration(self, iteration: int, duration_seconds: float) -> List[AnomalyVerdict]:
        """Fold the iteration's samples in, raise verdicts, drive adaptation.

        Called by the training/chaos loop once per iteration, after the
        collective completed. Returns the verdicts raised this iteration
        (already logged and acted upon).
        """
        if not self.config.enabled:
            return []
        self._iteration = iteration
        now = self.sim.now
        # One attribution query per iteration: verdicts and the re-probe
        # below must agree on the culprit they cite.
        self._attributed_link = (
            self.attribution() if self.attribution is not None else None
        )

        # 1. Per-link throughput samples out of the iteration accumulators.
        for link in sorted(self._link_busy):
            busy = self._link_busy[link]
            if busy <= 0 or not self._monitor(link):
                continue
            sample = self._link_bytes.get(link, 0.0) / busy
            tracker = self._link_signals.get(link)
            if tracker is None:
                tracker = self._link_signals[link] = self._make_tracker(relative=True)
            tracker.observe(now, sample)
        self._link_bytes.clear()
        self._link_busy.clear()

        # 2. Per-rank lateness samples (0 for ranks that were on time).
        for rank in sorted(self._pending_delays):
            tracker = self._rank_signals.get(rank)
            if tracker is None:
                tracker = self._rank_signals[rank] = self._make_tracker(relative=False)
            tracker.observe(now, self._pending_delays[rank])
        self._pending_delays.clear()

        # 3. The iteration-time signal.
        self._iteration_signal.observe(now, duration_seconds)

        verdicts = self._collect_verdicts(iteration, now)
        for verdict in verdicts:
            self._emit(verdict)
        if verdicts:
            self._adapt(verdicts)
        return verdicts

    def _monitor(self, link: str) -> bool:
        cached = self._monitored.get(link)
        if cached is None:
            cached = bool(self._profiled_edges_for([link]))
            self._monitored[link] = cached
        return cached

    # -- verdict assembly --------------------------------------------------------

    def _muted(self, subject: str, iteration: int) -> bool:
        return iteration < self._cooldown.get(subject, -1)

    def _mute(self, subject: str, iteration: int) -> None:
        self._cooldown[subject] = iteration + 1 + self.config.cooldown_iterations

    def _verdict(
        self,
        kind: AnomalyKind,
        subject: str,
        tracker: SignalTracker,
        iteration: int,
        now: float,
        implicated: Tuple[str, ...],
    ) -> AnomalyVerdict:
        self._verdict_count += 1
        verdict = AnomalyVerdict(
            verdict_id=f"v{self._verdict_count}",
            kind=kind,
            subject=subject,
            detected_at=now,
            iteration=iteration,
            direction=tracker.cusum.direction,
            statistic=tracker.cusum.statistic,
            baseline=tracker.baseline.mean,
            evidence=tuple(tracker.snapshot_evidence()),
            implicated_links=implicated,
            attributed_link=(
                self._attributed_link
                if self._attributed_link in implicated
                else None
            ),
        )
        tracker.cusum.reset()
        self._mute(subject, iteration)
        return verdict

    def _collect_verdicts(self, iteration: int, now: float) -> List[AnomalyVerdict]:
        verdicts: List[AnomalyVerdict] = []
        fired_links = [
            link
            for link in sorted(self._link_signals)
            if self._link_signals[link].fired and not self._muted(f"link:{link}", iteration)
        ]
        for link in fired_links:
            verdicts.append(
                self._verdict(
                    AnomalyKind.BANDWIDTH_DRIFT,
                    f"link:{link}",
                    self._link_signals[link],
                    iteration,
                    now,
                    implicated=(link,),
                )
            )
        for subject in sorted(self._fit_signals):
            tracker = self._fit_signals[subject]
            if tracker.fired and not self._muted(subject, iteration):
                edge = subject[len("fit:"):]
                verdicts.append(
                    self._verdict(
                        AnomalyKind.TOPOLOGY_CHANGE, subject, tracker, iteration, now,
                        implicated=(edge,),
                    )
                )
        for rank in sorted(self._rank_signals):
            tracker = self._rank_signals[rank]
            subject = f"rank{rank}"
            if tracker.fired and not self._muted(subject, iteration):
                verdicts.append(
                    self._verdict(
                        AnomalyKind.STRAGGLER_EMERGENCE, subject, tracker,
                        iteration, now, implicated=(),
                    )
                )
        if self._iteration_signal.fired and not self._muted("iteration", iteration):
            # Interference is an *upward* iteration-time shift corroborated
            # by link signals degrading together; implicate every link whose
            # CUSUM is at least half-way to firing. An uncorroborated shift
            # (e.g. a straggler already reported above, or a speed-up after
            # recovery) is not interference — swallow the firing so the
            # detector re-arms instead of latching.
            elevated = tuple(
                link
                for link in sorted(self._link_signals)
                if self._link_signals[link].cusum.statistic
                > self.config.cusum_threshold / 2
            )
            if elevated and self._iteration_signal.cusum.direction == "up":
                verdicts.append(
                    self._verdict(
                        AnomalyKind.INTERFERENCE_ONSET,
                        "iteration",
                        self._iteration_signal,
                        iteration,
                        now,
                        implicated=elevated,
                    )
                )
            else:
                self._iteration_signal.cusum.reset()
        return verdicts

    def _emit(self, verdict: AnomalyVerdict) -> None:
        """Append to the observe log and mirror into telemetry."""
        self.log.append(verdict.to_record())
        hub = self._hub or telemetry_hub()
        if hub.enabled:
            hub.instant(
                "anomaly-verdict",
                verdict.detected_at,
                category="observe",
                track="observe",
                verdict=verdict.verdict_id,
                kind=verdict.kind.value,
                subject=verdict.subject,
                iteration=verdict.iteration,
                direction=verdict.direction,
                statistic=verdict.statistic,
                implicated_links=list(verdict.implicated_links),
            )
            hub.metrics.counter(
                "observe_verdicts_total", "anomaly verdicts raised by the watchdog"
            ).inc(kind=verdict.kind.value)

    # -- adaptation --------------------------------------------------------------

    def _profiled_edges_for(self, links: Sequence[str]):
        """Resolve link names to profiled topology edges (skip the rest)."""
        edges = []
        for link in links:
            try:
                src, dst = (
                    _node_from_name(name) for name in link_endpoints(link)
                )
            except ObserveError:
                continue
            if not self.topology.has_edge(src, dst):
                continue
            edge = self.topology.edge(src, dst)
            if edge.kind.profiled:
                edges.append(edge)
        return edges

    def _adapt(self, verdicts: List[AnomalyVerdict]) -> None:
        """Targeted re-probe of implicated links, then hysteresis-gated
        re-synthesis — the loop the ISSUE calls "closed"."""
        implicated = sorted(
            {link for verdict in verdicts for link in verdict.implicated_links}
        )
        if not implicated or self.profiler is None:
            return
        refresh_edges = self._profiled_edges_for(implicated)
        if not refresh_edges:
            return
        # When the critical-path engine attributes the iteration to one of
        # the implicated links, narrow the probe to that link and its
        # reverse direction (a probe measures the physical medium both
        # ways) — the other implicated links were symptoms, not the
        # bottleneck. The attribution must corroborate the evidence
        # (culprit ∈ implicated) and resolve to a profiled edge;
        # otherwise probe the full implicated set as before.
        attributed = self._attributed_link
        edges = refresh_edges
        if attributed in implicated:
            src, dst = link_endpoints(attributed)
            pair = [
                link
                for link in (attributed, f"{dst}->{src}")
                if link in implicated
            ]
            narrowed = self._profiled_edges_for(pair)
            if narrowed:
                edges = narrowed
            else:
                attributed = None
        else:
            attributed = None
        started = self.sim.now
        self.profiler.reprobe(edges)
        self._reprobe_count += 1
        probed = sorted(f"{edge.src}->{edge.dst}" for edge in edges)
        reprobe_id = f"p{self._reprobe_count}"
        self.log.append(
            {
                "type": REPROBE_RECORD,
                "id": reprobe_id,
                "verdicts": [verdict.verdict_id for verdict in verdicts],
                "implicated_links": implicated,
                "probed_links": probed,
                "attributed_link": attributed,
                "start": started,
                "end": self.sim.now,
                "iteration": self._iteration,
            }
        )
        hub = self._hub or telemetry_hub()
        if hub.enabled:
            hub.instant(
                "targeted-reprobe",
                self.sim.now,
                category="observe",
                track="observe",
                reprobe=reprobe_id,
                links=probed,
                attributed=attributed,
                verdicts=[verdict.verdict_id for verdict in verdicts],
            )
            hub.metrics.counter(
                "observe_reprobes_total", "targeted profiler re-probes"
            ).inc()
        # The refreshed estimates define the new normal for every
        # implicated subject — including the ones the attribution spared
        # from probing, whose detectors fired on the same episode and
        # must not re-raise it as a fresh anomaly next iteration.
        for link in sorted(f"{edge.src}->{edge.dst}" for edge in refresh_edges):
            if link in self._link_signals:
                self._link_signals[link].rebaseline()
            fit_subject = f"fit:{link}"
            if fit_subject in self._fit_signals:
                self._fit_signals[fit_subject].rebaseline()
        self._maybe_resynthesize(reprobe_id)

    def _maybe_resynthesize(self, reprobe_id: str) -> None:
        if (
            self.synthesizer is None
            or self.current_strategy is None
            or self.resynthesize is None
        ):
            return
        strategy = self.current_strategy()
        if strategy is None or strategy.predicted_time <= 0:
            return
        stale = strategy.predicted_time
        refreshed = self.synthesizer.finish_time(strategy)
        ratio = refreshed / stale
        if abs(ratio - 1.0) <= self.config.hysteresis:
            return  # within hysteresis: the stale strategy is still fine
        new_strategy = self.resynthesize(f"observe:{reprobe_id}")
        self._resynthesis_count += 1
        self.log.append(
            {
                "type": RESYNTHESIS_RECORD,
                "id": f"s{self._resynthesis_count}",
                "reprobe": reprobe_id,
                "stale_finish": stale,
                "refreshed_finish": refreshed,
                "new_finish": getattr(new_strategy, "predicted_time", None),
                "hysteresis": self.config.hysteresis,
                "time": self.sim.now,
                "iteration": self._iteration,
            }
        )
        hub = self._hub or telemetry_hub()
        if hub.enabled:
            hub.instant(
                "resynthesis-triggered",
                self.sim.now,
                category="observe",
                track="observe",
                reprobe=reprobe_id,
                stale_finish=stale,
                refreshed_finish=refreshed,
            )
            hub.metrics.counter(
                "observe_resyntheses_total", "re-syntheses triggered by the watchdog"
            ).inc()

    # -- inspection --------------------------------------------------------------

    @property
    def verdicts_raised(self) -> int:
        """Total verdicts raised so far."""
        return self._verdict_count

    @property
    def reprobes_run(self) -> int:
        """Total targeted re-probes driven so far."""
        return self._reprobe_count

    @property
    def resyntheses_triggered(self) -> int:
        """Total re-syntheses triggered so far."""
        return self._resynthesis_count

    def detector_state_size(self) -> int:
        """Number of live signal trackers (0 for a disabled watchdog)."""
        if not self.config.enabled:
            return 0
        return (
            len(self._link_signals)
            + len(self._fit_signals)
            + len(self._rank_signals)
            + 1  # the iteration signal
        )
