"""Post-run lint over recorded chaos traces.

A chaos run with a :class:`repro.simulation.records.TraceRecorder` attached
(see :class:`repro.chaos.runner.ChaosRunner`) interleaves two streams in
one record list: the fluid network's ``net-*`` events and the injector's
``chaos-*`` events. This pass checks that injecting faults never bends the
simulator's physics:

* the ``net-*`` subset must still satisfy **every**
  :func:`repro.analysis.lint_trace.lint_trace` invariant — capacity,
  max-min fairness, byte conservation hold *through* link degradations and
  flaps;
* ``chaos-link`` events carry a ``bandwidth_fraction`` in ``[0, 1]``, and
  the **last** event per instance restores fraction 1.0 (an injector may
  degrade a link but must always hand nominal capacity back);
* ``chaos-straggler`` delays are positive, ``chaos-msg`` actions are known,
  and every ``chaos-evict`` is preceded by a fault event
  (``chaos-crash``/``chaos-straggler``) for the same rank — an eviction
  without an injected cause means the detector fired spuriously;
* chaos timestamps are non-decreasing (the replay-comparison order).

Violations share the :class:`repro.analysis.verify_strategy.Violation`
record type so ``python -m repro.analysis --chaos`` reports uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.analysis.lint_trace import lint_trace
from repro.analysis.verify_strategy import Violation
from repro.simulation.records import TraceRecord

#: Chaos event kinds the injector and runner emit.
CHAOS_KINDS = (
    "chaos-straggler",
    "chaos-crash",
    "chaos-link",
    "chaos-msg",
    "chaos-evict",
    "chaos-rejoin",
    "chaos-resynthesis",
    "chaos-coordinator-crash",
    "chaos-partition",
    "chaos-heal",
)

_MESSAGE_ACTIONS = ("drop", "duplicate")


def lint_chaos(records: Iterable[TraceRecord]) -> List[Violation]:
    """Check one recorded chaos run; returns all violations (empty = clean)."""
    records = list(records)
    fluid = [r for r in records if r.kind.startswith("net-")]
    chaos = [r for r in records if r.kind.startswith("chaos-")]

    violations = lint_trace(fluid)

    last_time = float("-inf")
    last_fraction: Dict[int, float] = {}
    faulted_ranks: Set[int] = set()
    for record in chaos:
        if record.kind not in CHAOS_KINDS:
            violations.append(
                Violation("chaos-kind", record.subject, f"unknown kind {record.kind}")
            )
        if record.time < last_time:
            violations.append(
                Violation(
                    "event-order",
                    record.subject,
                    f"{record.kind} at t={record.time} after t={last_time}",
                )
            )
        last_time = max(last_time, record.time)

        if record.kind == "chaos-link":
            fraction = record.payload.get("bandwidth_fraction")
            instance = record.payload.get("instance")
            if fraction is None or not 0.0 <= fraction <= 1.0:
                violations.append(
                    Violation(
                        "chaos-link-fraction",
                        record.subject,
                        f"bandwidth fraction {fraction} outside [0, 1]",
                    )
                )
            elif instance is not None:
                last_fraction[instance] = fraction
        elif record.kind == "chaos-straggler":
            delay = record.payload.get("delay_seconds", 0.0)
            if delay <= 0:
                violations.append(
                    Violation(
                        "chaos-straggler-delay",
                        record.subject,
                        f"non-positive delay {delay}",
                    )
                )
            faulted_ranks.add(record.payload.get("rank"))
        elif record.kind == "chaos-crash":
            faulted_ranks.add(record.payload.get("rank"))
        elif record.kind == "chaos-msg":
            action = record.payload.get("action")
            if action not in _MESSAGE_ACTIONS:
                violations.append(
                    Violation(
                        "chaos-msg-action", record.subject, f"unknown action {action!r}"
                    )
                )
        elif record.kind == "chaos-evict":
            rank = record.payload.get("rank")
            if rank not in faulted_ranks:
                violations.append(
                    Violation(
                        "chaos-evict-cause",
                        record.subject,
                        f"rank {rank} evicted without a prior injected fault",
                    )
                )

    for instance, fraction in sorted(last_fraction.items()):
        if fraction != 1.0:
            violations.append(
                Violation(
                    "chaos-link-restore",
                    f"instance{instance}",
                    f"final bandwidth fraction {fraction} != 1.0 — nominal "
                    "capacity was never restored",
                )
            )
    return violations
