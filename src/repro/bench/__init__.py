"""Measurement harness shared by the benchmarks in ``benchmarks/``."""

from repro.bench.harness import (
    BenchEnvironment,
    measure_algorithm_bandwidth,
    measure_training,
)
from repro.bench.report import (
    Series,
    Table,
    bench_dir,
    captured_bench_payloads,
    geometric_mean,
    write_bench_payload,
)
from repro.bench.sweep import SweepError, run_sweep

__all__ = [
    "BenchEnvironment",
    "Series",
    "SweepError",
    "Table",
    "bench_dir",
    "captured_bench_payloads",
    "geometric_mean",
    "measure_algorithm_bandwidth",
    "measure_training",
    "run_sweep",
    "write_bench_payload",
]
