"""Blink baseline model (prototype, as the paper implements it).

Blink (MLSys'20) packs spanning trees over the *detected intra-server*
topology and hands inter-server communication to NCCL. The paper's
prototype (Blink is not open-sourced) behaves as follows, all encoded
here:

* **Intra-server spanning trees** — topology-aware trees over the NVLinks
  that actually exist (so fragmented allocations still use NVLink where
  possible, Blink's headline win); built by BFS over detected NVLink
  pairs, PCIe fallback for unreachable GPUs.
* **Inter-server via NCCL** — leaders run a rank-ordered single-channel
  NCCL binary tree; "it is primarily optimized for intra-server
  communication, relying on NCCL operations for inter-server aggregation"
  (Sec. VI-C).
* **Empirical fixed chunk size (8 MB)** — Sec. VI-B.
* **Stages not pipelined** — "the two stages of intra- and inter-server
  communications are not effectively pipelined" (Sec. VI-C): AllReduce
  runs with a stage barrier (``pipeline_stages=False``).
* **No multi-server AlltoAll** — the paper could not compare Blink on
  AlltoAll "as it does not support AlltoAll in the multi-server case".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.baselines.common import Backend, register_backend
from repro.errors import SynthesisError
from repro.hardware.links import MB
from repro.synthesis.aggregation import default_aggregation
from repro.synthesis.routing import Tree, broadcast_flows, reduce_flows
from repro.synthesis.strategy import Primitive, Strategy, SubCollective
from repro.topology.graph import EdgeKind, gpu_node

#: Blink's empirically-set chunk size (Sec. VI-B).
BLINK_CHUNK_BYTES = 8 * MB


@register_backend
class BlinkBackend(Backend):
    """Intra-server spanning trees + NCCL inter-server, unpipelined."""

    name = "blink"

    def pipelines_stages(self) -> bool:
        """Blink's intra/inter stages run back to back (Sec. VI-C)."""
        return False  # reduce and broadcast stages run back to back

    # -- intra-server spanning tree --------------------------------------------------

    def _local_spanning_tree(self, ranks: List[int], leader: int) -> Dict[int, int]:
        """BFS spanning tree toward the leader over NVLink edges; GPUs not
        NVLink-reachable attach over PCIe directly to the leader."""
        nvlink_neighbors: Dict[int, List[int]] = {rank: [] for rank in ranks}
        for a in ranks:
            for b in ranks:
                if a != b and self.topology.has_edge(gpu_node(a), gpu_node(b)):
                    if self.topology.edge(gpu_node(a), gpu_node(b)).kind is EdgeKind.NVLINK:
                        nvlink_neighbors[a].append(b)
        parent = {leader: leader}
        frontier = deque([leader])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(nvlink_neighbors[current]):
                if neighbor not in parent:
                    parent[neighbor] = current
                    frontier.append(neighbor)
        for rank in ranks:  # PCIe fallback
            parent.setdefault(rank, leader)
        return parent

    def _tree(self, participants: List[int], root: int) -> Tree:
        groups: Dict[int, List[int]] = {}
        for rank in participants:
            groups.setdefault(self.topology.cluster.gpu(rank).instance_id, []).append(rank)
        groups = {iid: sorted(r) for iid, r in sorted(groups.items())}
        root_instance = self.topology.cluster.gpu(root).instance_id

        tree: Tree = {root: root}
        leaders: Dict[int, int] = {}
        for instance_id, ranks in groups.items():
            leader = root if instance_id == root_instance else ranks[0]
            leaders[instance_id] = leader
            tree.update(self._local_spanning_tree(ranks, leader))
        tree[root] = root
        # NCCL-style rank-ordered binary tree over leaders.
        ordered = [root_instance] + [iid for iid in groups if iid != root_instance]
        for position, instance_id in enumerate(ordered[1:], start=1):
            parent_instance = ordered[(position - 1) // 2]
            tree[leaders[instance_id]] = leaders[parent_instance]
        return tree

    # -- Backend interface --------------------------------------------------------------

    def _plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        participants = sorted(set(participants))
        if not participants:
            raise SynthesisError("no participants")
        instances = {self.topology.cluster.gpu(r).instance_id for r in participants}
        if primitive is Primitive.ALLTOALL and len(instances) > 1:
            raise SynthesisError("Blink does not support AlltoAll across servers")
        if primitive in (Primitive.ALLGATHER, Primitive.REDUCE_SCATTER, Primitive.ALLTOALL):
            raise SynthesisError(f"Blink model does not implement {primitive.value}")
        root = participants[0] if root is None else root
        tree = self._tree(participants, root)
        chunk = min(BLINK_CHUNK_BYTES, max(1.0, tensor_size))
        if primitive is Primitive.BROADCAST:
            flows = broadcast_flows(self.topology, tree, root)
            aggregation: Dict = {}
        else:
            flows = reduce_flows(self.topology, tree, root)
            aggregation = default_aggregation(tree, root)
        sc = SubCollective(
            index=0,
            size=tensor_size,
            chunk_size=chunk,
            flows=flows,
            aggregation=aggregation,
            root=gpu_node(root),
        )
        return Strategy(
            primitive=primitive,
            tensor_size=tensor_size,
            participants=participants,
            subcollectives=[sc],
            routing_family="blink",
        )
