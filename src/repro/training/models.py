"""Workload model descriptors (paper Sec. VI-D).

The four models the paper trains, with the gradient sizes it states and
training-compute estimates from the architectures:

* VGG16 — 528 MB gradients, ImageNet, local batch 128, AllReduce.
* GPT-2 — 475 MB, persona-chat, local batch 16, AllReduce.
* ViT  — 208 MB, ImageNet, local batch 128, AllReduce.
* MoE  — 512 MB expert activations (fastMoE, one expert per GPU, two
  linear layers), dummy data, AlltoAll for token dispatch.

``flops_per_sample`` is the fwd+bwd training cost per sample — its
absolute calibration only shifts the compute/communication ratio; the
figures compare backends under identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TrainingError
from repro.hardware.links import MB
from repro.synthesis.strategy import Primitive


@dataclass(frozen=True)
class ModelSpec:
    """One DNN workload."""

    name: str
    #: Bytes communicated per iteration per worker (gradients, or dispatched
    #: tokens for MoE).
    tensor_bytes: float
    #: Training FLOPs per sample (forward + backward).
    flops_per_sample: float
    #: Default per-GPU batch size used in the paper.
    default_batch: int
    #: The collective the model's training step issues.
    primitive: Primitive
    dataset: str = ""

    def __post_init__(self) -> None:
        if self.tensor_bytes <= 0 or self.flops_per_sample <= 0 or self.default_batch < 1:
            raise TrainingError(f"invalid model spec {self.name}")

    def compute_seconds(self, batch: int, effective_flops: float) -> float:
        """Noise-free compute time of one iteration at the given batch."""
        if batch < 1:
            raise TrainingError("batch must be at least 1")
        if effective_flops <= 0:
            raise TrainingError("compute throughput must be positive")
        return batch * self.flops_per_sample / effective_flops


VGG16 = ModelSpec(
    name="VGG16",
    tensor_bytes=528 * MB,
    flops_per_sample=46.5e9,  # 15.5 GFLOPs forward x3
    default_batch=128,
    primitive=Primitive.ALLREDUCE,
    dataset="ImageNet",
)

GPT2 = ModelSpec(
    name="GPT2",
    tensor_bytes=475 * MB,
    flops_per_sample=360e9,  # ~117M params, 512-token sequences, fwd+bwd
    default_batch=16,
    primitive=Primitive.ALLREDUCE,
    dataset="persona-chat",
)

VIT = ModelSpec(
    name="ViT",
    tensor_bytes=208 * MB,
    flops_per_sample=53e9,  # ViT-B 17.6 GFLOPs forward x3
    default_batch=128,
    primitive=Primitive.ALLREDUCE,
    dataset="ImageNet",
)

MOE = ModelSpec(
    name="MoE",
    tensor_bytes=512 * MB,
    flops_per_sample=24e9,  # one expert (two linear layers) per GPU
    default_batch=128,
    primitive=Primitive.ALLTOALL,
    dataset="dummy",
)

#: The paper's four workloads, in its presentation order.
PAPER_MODELS = (VGG16, GPT2, VIT, MOE)
