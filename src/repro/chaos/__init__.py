"""Seeded, schedule-driven fault injection for the AdapCC reproduction.

One :class:`FaultPlan` is a declarative, seed-replayable schedule of
stragglers, crashes, link degradations, message faults, coordinator-role
crashes, control-channel partitions and silent link corruption; the
:class:`ChaosInjector` applies it to a simulated cluster, and the
:class:`ChaosRunner` drives it through the full relay/recovery stack.
"""

from repro.chaos.corruption import PayloadCorruptor
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import (
    BITFLIP,
    DECIDE_PHASE,
    DROP,
    DUPLICATE,
    SCALE,
    TRANSITION_PHASE,
    CoordinatorCrashFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    LinkFault,
    MessageFault,
    PartitionFault,
    StragglerFault,
)
from repro.chaos.runner import ChaosRunner, ChaosRunReport, IterationOutcome

__all__ = [
    "BITFLIP",
    "DECIDE_PHASE",
    "DROP",
    "DUPLICATE",
    "SCALE",
    "TRANSITION_PHASE",
    "ChaosInjector",
    "ChaosRunReport",
    "ChaosRunner",
    "CoordinatorCrashFault",
    "CorruptionFault",
    "CrashFault",
    "FaultPlan",
    "IterationOutcome",
    "LinkFault",
    "MessageFault",
    "PartitionFault",
    "PayloadCorruptor",
    "StragglerFault",
]
