"""The AdapCC user-facing session API (paper Sec. VI-A).

Mirrors how a training script uses the real library::

    import adapcc
    adapcc.init()        # detect topology, profile links, build strategies
    adapcc.setup()       # register buffers / transmission contexts
    ...
    adapcc.allreduce(tensor)
    adapcc.profile(period=500)   # periodic re-profiling

Here the session owns a simulated cluster instead of real GPUs::

    from repro import AdapCCSession
    from repro.hardware import make_hetero_cluster

    session = AdapCCSession(make_hetero_cluster())
    session.init()
    session.setup()
    out = session.allreduce({rank: tensor for rank, tensor in ...})
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.config import verification_enabled
from repro.errors import ReproError
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.observe.watchdog import ObserveConfig, Watchdog
from repro.profiling.profiler import Profiler
from repro.relay.coordinator import AdaptiveAllReduce
from repro.runtime.collectives import (
    CollectiveResult,
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_reduce,
    run_reduce_scatter,
)
from repro.runtime.context import ContextManager, TransmissionContext
from repro.simulation.engine import Simulator
from repro.synthesis.optimizer import Synthesizer, SynthesizerConfig
from repro.synthesis.strategy import Primitive, Strategy
from repro.telemetry.core import TelemetryHub, resolve_telemetry
from repro.topology.detector import DetectionReport, Detector
from repro.topology.graph import LogicalTopology


class AdapCCSession:
    """One training job's AdapCC instance on a simulated cluster."""

    def __init__(
        self,
        instance_specs: Sequence[InstanceSpec],
        config: Optional[SynthesizerConfig] = None,
        seed: int = 0,
        verify: Optional[bool] = None,
        telemetry: Union[None, bool, TelemetryHub] = None,
        observe: Union[None, bool, ObserveConfig] = None,
    ):
        #: The process-wide telemetry hub this session records into.
        #: ``None`` defers to ``REPRO_TELEMETRY``; ``True``/``False`` flip
        #: the current hub; a :class:`TelemetryHub` is installed globally.
        #: Resolved before the cluster exists so the fluid network attaches
        #: its tracing bridge at construction.
        self.telemetry = resolve_telemetry(telemetry)
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, instance_specs)
        self.config = config
        self.seed = seed
        #: Tri-state static-verification override: ``None`` defers to
        #: :func:`repro.analysis.verification_enabled` (on under pytest or
        #: ``REPRO_VERIFY=1``), ``True``/``False`` force it. When enabled,
        #: every synthesized strategy is checked by
        #: :func:`repro.analysis.assert_valid` before first use.
        self.verify = verify
        self.topology: Optional[LogicalTopology] = None
        self.detection: Optional[DetectionReport] = None
        self.profiler: Optional[Profiler] = None
        self.synthesizer: Optional[Synthesizer] = None
        self.contexts: Optional[ContextManager] = None
        self.adaptive: Optional[AdaptiveAllReduce] = None
        self._strategies: Dict = {}
        self._active_contexts: List[TransmissionContext] = []
        self._profile_period: Optional[int] = None
        self._collectives_run = 0
        #: Closed-loop observability: ``True`` or an :class:`ObserveConfig`
        #: arms a :class:`~repro.observe.watchdog.Watchdog` on the live
        #: telemetry stream at :meth:`init` (requires an enabled hub).
        #: The watchdog replaces fixed-period re-profiling with verdict-
        #: driven targeted re-probes — see :meth:`profile`.
        if observe is True:
            self._observe_config: Optional[ObserveConfig] = ObserveConfig()
        elif observe is False or observe is None:
            self._observe_config = None
        else:
            self._observe_config = observe
        self.watchdog: Optional[Watchdog] = None
        self._last_strategy_key = None

    # -- lifecycle -------------------------------------------------------------------

    def init(self) -> "AdapCCSession":
        """Detect topology, build the logical graph, run the first
        profiling pass, and create the synthesizer (``adapcc.init()``)."""
        detector = Detector(self.cluster)
        self.detection = detector.detect()
        self.topology = LogicalTopology.from_cluster(
            self.cluster, nvlink_pairs=self.detection.nvlink_pairs_by_instance()
        )
        self.profiler = Profiler(self.topology)
        self.profiler.profile()
        self.synthesizer = Synthesizer(self.topology, self.config)
        self.adaptive = AdaptiveAllReduce(self.topology, seed=self.seed)
        self._arm_watchdog()
        return self

    def setup(self) -> float:
        """Create the context manager (``adapcc.setup()``); returns the
        simulated seconds the set-up consumed (0 until strategies exist —
        contexts are set up lazily per strategy)."""
        self._require_init()
        self.contexts = ContextManager(self.cluster)
        return 0.0

    def profile(self, period: Optional[int] = None) -> None:
        """Enable re-profiling (``adapcc.profile()``).

        With a ``period``, re-profile every that many collectives — the
        paper's original fixed cadence. With no ``period`` the session
        must have been created with ``observe=`` armed: re-probing is then
        *watchdog-triggered* — the observe loop probes only the links its
        verdicts implicate, exactly when its detectors fire, and blind
        periodic passes are switched off.
        """
        if period is None:
            if self.watchdog is None and self._observe_config is None:
                raise ReproError(
                    "profile() without a period needs observe= enabled: "
                    "pass a period, or create the session with observe=True"
                )
            self._profile_period = None
            return
        if period < 1:
            raise ReproError("profiling period must be >= 1")
        self._profile_period = period

    def reprofile_now(self) -> None:
        """Force a profiling pass and invalidate cached strategies."""
        self._require_init()
        self.profiler.profile()
        self._strategies.clear()

    def scale_out(self, spec: InstanceSpec) -> List[int]:
        """Elastic scaling: attach a new instance mid-job (Sec. IV-A).

        Re-runs detection (the new instance's workers trigger the
        Detector), rebuilds the logical topology, re-profiles, and drops
        cached strategies so the next collective includes the new ranks —
        no restart. Returns the new global ranks.
        """
        self._require_init()
        instance = self.cluster.add_instance(spec)
        detector = Detector(self.cluster)
        self.detection = detector.detect()
        self.topology = LogicalTopology.from_cluster(
            self.cluster, nvlink_pairs=self.detection.nvlink_pairs_by_instance()
        )
        self.profiler = Profiler(self.topology)
        self.profiler.profile()
        self.synthesizer = Synthesizer(self.topology, self.config)
        self.adaptive = AdaptiveAllReduce(self.topology, seed=self.seed)
        if self.contexts is not None:
            self.contexts = ContextManager(self.cluster)
        self._strategies.clear()
        self._last_strategy_key = None
        self._arm_watchdog()
        return [gpu.rank for gpu in instance.gpus]

    # -- collectives -------------------------------------------------------------------

    def allreduce(
        self,
        tensors: Dict[int, np.ndarray],
        ready_times: Optional[Dict[int, Optional[float]]] = None,
        adaptive: bool = True,
        byte_scale: float = 1.0,
    ):
        """AllReduce across all ranks; adaptive relay control by default."""
        strategy = self._strategy(Primitive.ALLREDUCE, tensors, byte_scale)
        self._tick()
        if adaptive and ready_times:
            return self._observed(
                self.adaptive.run(strategy, tensors, ready_times, byte_scale=byte_scale)
            )
        clean = {r: (t or 0.0) for r, t in (ready_times or {}).items()}
        return self._observed(
            run_allreduce(
                self.topology, strategy, tensors, ready_times=clean, byte_scale=byte_scale
            )
        )

    def reduce(self, tensors, root: int = 0, byte_scale: float = 1.0) -> CollectiveResult:
        """Reduce: the root rank receives the elementwise sum."""
        strategy = self._strategy(Primitive.REDUCE, tensors, byte_scale, root=root)
        self._tick()
        return self._observed(
            run_reduce(self.topology, strategy, tensors, byte_scale=byte_scale)
        )

    def broadcast(self, tensors, root: int = 0, byte_scale: float = 1.0) -> CollectiveResult:
        """Broadcast: every rank receives the root's tensor."""
        strategy = self._strategy(Primitive.BROADCAST, tensors, byte_scale, root=root)
        self._tick()
        return self._observed(
            run_broadcast(self.topology, strategy, tensors, byte_scale=byte_scale)
        )

    def alltoall(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """AlltoAll: rank d's block s is rank s's block d (token dispatch)."""
        strategy = self._strategy(Primitive.ALLTOALL, tensors, byte_scale)
        self._tick()
        return self._observed(
            run_alltoall(self.topology, strategy, tensors, byte_scale=byte_scale)
        )

    def allgather(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """AllGather: every rank receives all shards, in rank order."""
        strategy = self._strategy(Primitive.ALLGATHER, tensors, byte_scale)
        self._tick()
        return self._observed(
            run_allgather(self.topology, strategy, tensors, byte_scale=byte_scale)
        )

    def reduce_scatter(self, tensors, byte_scale: float = 1.0) -> CollectiveResult:
        """ReduceScatter: rank r receives the sum of partition r."""
        strategy = self._strategy(Primitive.REDUCE_SCATTER, tensors, byte_scale)
        self._tick()
        return self._observed(
            run_reduce_scatter(self.topology, strategy, tensors, byte_scale=byte_scale)
        )

    # -- internals -----------------------------------------------------------------------

    def _require_init(self) -> None:
        if self.topology is None:
            raise ReproError("call session.init() first")

    def _arm_watchdog(self) -> None:
        """(Re)build the observe watchdog against the current topology.

        Called from :meth:`init` and again from :meth:`scale_out` — the
        watchdog's detectors are keyed by link name, and a rebuilt
        topology means fresh links, fresh baselines, fresh strategy hooks.
        """
        if self._observe_config is None or not self._observe_config.enabled:
            return
        if self.watchdog is not None:
            self.watchdog.detach()
        self.watchdog = Watchdog(
            self.topology,
            config=self._observe_config,
            profiler=self.profiler,
            current_strategy=self._observed_strategy,
            resynthesize=self._resynthesize_for_observe,
            synthesizer=self.synthesizer,
        ).attach(self.telemetry)

    def _observed_strategy(self) -> Optional[Strategy]:
        """The watchdog's view of 'the live strategy': the one the most
        recent collective ran with."""
        if self._last_strategy_key is None:
            return None
        return self._strategies.get(self._last_strategy_key)

    def _resynthesize_for_observe(self, reason: str) -> Optional[Strategy]:
        """Watchdog hook: replace the live strategy under refreshed costs."""
        key = self._last_strategy_key
        if key is None:
            return None
        self._strategies.pop(key, None)
        return self._strategy_for_key(key)

    def _observed(self, result):
        """Feed one finished collective to the watchdog (identity pass)."""
        if self.watchdog is not None:
            self.watchdog.end_iteration(
                self._collectives_run - 1, max(0.0, result.duration)
            )
        return result

    def _strategy(
        self,
        primitive: Primitive,
        tensors: Dict[int, np.ndarray],
        byte_scale: float,
        root: Optional[int] = None,
    ) -> Strategy:
        self._require_init()
        participants = tuple(sorted(tensors))
        sample = tensors[participants[0]]
        tensor_size = len(sample) * sample.itemsize * byte_scale
        key = (primitive, participants, float(tensor_size), root)
        self._last_strategy_key = key
        return self._strategy_for_key(key)

    def _strategy_for_key(self, key) -> Strategy:
        primitive, participants, tensor_size, root = key
        if key not in self._strategies:
            strategy = self.synthesizer.synthesize(
                primitive, tensor_size, list(participants), root=root
            )
            if verification_enabled(self.verify):
                from repro.analysis.verify_strategy import assert_valid

                assert_valid(strategy, self.topology)
            if self.contexts is not None:
                planned = self.contexts.plan_contexts(strategy)
                self.contexts.setup_all(planned)
                self._active_contexts.extend(planned)
            self._strategies[key] = strategy
        return self._strategies[key]

    def _tick(self) -> None:
        self._collectives_run += 1
        if (
            self._profile_period
            and self._collectives_run % self._profile_period == 0
        ):
            self.reprofile_now()
