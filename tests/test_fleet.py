"""Conformance suite for fleet-level multi-job workload replay.

Central claims, asserted per seed (override with the ``REPRO_CHAOS_SEED``
environment variable, as the CI fleet job does):

* **determinism** — replaying the same workload on the same seed yields
  a byte-identical merged JSONL export and fleet report, for both the
  canonical two-job overlap and the three-job generated workload;
* **attribution** — on the canonical overlap scenario the watchdog's
  interference verdict is attributed to the planted aggressor on a
  genuinely shared link, with precision and recall exactly 1.0 against
  the generator's ground truth;
* **isolation** — per-job telemetry hubs merge collision-free: every
  record carries its job label, (job, id) pairs are unique, and the
  aggressor's burst never pollutes the victim's stream;
* **lint** — the merged export satisfies the ``--fleet`` analysis pass,
  and tampered streams are flagged.
"""

import json
import os

import pytest

from repro.analysis.lint_fleet import lint_fleet_file, lint_fleet_run
from repro.analysis.passes import run_fleet_pass
from repro.errors import FleetError
from repro.fleet import (
    ALLREDUCE,
    ALLTOALL,
    CollectiveOp,
    FleetAttribution,
    FleetRunner,
    InterferenceWindow,
    JobTrace,
    ScoringWindow,
    Workload,
    canonical_overlap_workload,
    dump_workload,
    generate_workload,
    jain_index,
    load_workload,
    overlap_seconds,
    replay,
    score_attributions,
    three_job_workload,
)
from repro.fleet.__main__ import main as fleet_main
from repro.hardware import make_homo_cluster
from repro.telemetry import parse_jsonl

#: The CI fleet job sweeps this over several fixed seeds.
FLEET_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "11"))


# -- workload traces ------------------------------------------------------------------


def test_collective_op_validation():
    with pytest.raises(FleetError):
        CollectiveOp(kind="broadcast", start=0.0, size_bytes=1.0)
    with pytest.raises(FleetError):
        CollectiveOp(kind=ALLREDUCE, start=-1.0, size_bytes=1.0)
    with pytest.raises(FleetError):
        CollectiveOp(kind=ALLREDUCE, start=0.0, size_bytes=0.0)


def test_job_trace_validation():
    op = CollectiveOp(kind=ALLREDUCE, start=0.0, size_bytes=1.0)
    later = CollectiveOp(kind=ALLREDUCE, start=1.0, size_bytes=1.0)
    with pytest.raises(FleetError):
        JobTrace(name="solo", ranks=(0,), ops=(op,))
    with pytest.raises(FleetError):
        JobTrace(name="dup", ranks=(0, 0), ops=(op,))
    with pytest.raises(FleetError):
        JobTrace(name="unsorted", ranks=(0, 1), ops=(later, op))
    with pytest.raises(FleetError):
        JobTrace(name="", ranks=(0, 1), ops=(op,))


def test_workload_validation():
    op = CollectiveOp(kind=ALLREDUCE, start=0.0, size_bytes=1.0)
    alpha = JobTrace(name="alpha", ranks=(0, 1), ops=(op,))
    beta = JobTrace(name="beta", ranks=(2, 3), ops=(op,))
    shares_rank = JobTrace(name="gamma", ranks=(1, 4), ops=(op,))
    with pytest.raises(FleetError):
        Workload(jobs=())
    with pytest.raises(FleetError):
        Workload(jobs=(alpha, alpha))
    with pytest.raises(FleetError):
        Workload(jobs=(alpha, shares_rank))
    with pytest.raises(FleetError):
        Workload(
            jobs=(alpha, beta),
            ground_truth=(
                InterferenceWindow(
                    victim="alpha", aggressor="ghost", start=0.0, end=1.0
                ),
            ),
        )
    with pytest.raises(FleetError):
        InterferenceWindow(victim="alpha", aggressor="alpha", start=0.0, end=1.0)
    with pytest.raises(FleetError):
        InterferenceWindow(victim="alpha", aggressor="beta", start=1.0, end=1.0)
    workload = Workload(jobs=(beta, alpha))
    assert workload.job_names == ["alpha", "beta"]
    assert workload.job("beta") is beta
    with pytest.raises(FleetError):
        workload.job("ghost")


def test_generate_workload_is_seed_deterministic():
    rank_sets = [(0, 1, 4, 5), (2, 3, 6, 7)]
    first = generate_workload(rank_sets, seed=FLEET_SEED)
    second = generate_workload(rank_sets, seed=FLEET_SEED)
    assert dump_workload(first) == dump_workload(second)
    other = generate_workload(rank_sets, seed=FLEET_SEED + 1)
    assert dump_workload(first) != dump_workload(other)


def test_generate_workload_shape():
    workload = generate_workload([(0, 1), (2, 3), (4, 5)], seed=FLEET_SEED)
    assert len(workload.jobs) == 3
    for job in workload.jobs:
        assert job.ops, "every job schedules at least one op"
        starts = [op.start for op in job.ops]
        assert starts == sorted(starts)
        for op in job.ops:
            assert op.kind in (ALLREDUCE, ALLTOALL)
            assert op.size_bytes > 0


def test_workload_json_round_trip(tmp_path):
    workload = canonical_overlap_workload(seed=FLEET_SEED)
    payload = dump_workload(workload)
    assert load_workload(payload) == workload
    # And through an actual file, the way ``--trace`` consumes it.
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    from repro.fleet import read_workload

    assert read_workload(str(path)) == workload


def test_load_workload_rejects_malformed():
    with pytest.raises(FleetError):
        load_workload(["not", "an", "object"])
    with pytest.raises(FleetError):
        load_workload({"jobs": [{"name": "a"}]})


def test_canonical_overlap_workload_plants_truth():
    workload = canonical_overlap_workload(seed=FLEET_SEED)
    assert workload.job_names == ["alpha", "beta"]
    assert set(workload.job("alpha").ranks).isdisjoint(workload.job("beta").ranks)
    (truth,) = workload.ground_truth
    assert truth.victim == "alpha" and truth.aggressor == "beta"
    alpha_ops = workload.job("alpha").ops
    assert alpha_ops[0].start <= truth.start <= alpha_ops[-1].start
    with pytest.raises(FleetError):
        canonical_overlap_workload(burst_start_iteration=2)
    with pytest.raises(FleetError):
        canonical_overlap_workload(victim_iterations=6, burst_start_iteration=6)


# -- aggregation ----------------------------------------------------------------------


def test_jain_index_bounds():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jain_index([0.0, 0.0]) == 1.0
    with pytest.raises(FleetError):
        jain_index([])
    with pytest.raises(FleetError):
        jain_index([1.0, -0.5])


def test_overlap_seconds_merges_intervals():
    intervals = [(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)]
    assert overlap_seconds(intervals, (0.0, 5.0)) == pytest.approx(3.0)
    assert overlap_seconds(intervals, (1.5, 3.5)) == pytest.approx(1.0)
    assert overlap_seconds(intervals, (2.0, 3.0)) == 0.0
    assert overlap_seconds([], (0.0, 1.0)) == 0.0


def test_score_attributions():
    hit = FleetAttribution(
        victim="alpha",
        aggressor="beta",
        link="n0->n1",
        verdict_id="v1",
        kind="interference-onset",
        iteration=7,
        window_start=1.0,
        window_end=1.2,
        overlap_seconds=0.1,
    )
    miss = FleetAttribution(
        victim="alpha",
        aggressor="gamma",
        link="n0->n1",
        verdict_id="v2",
        kind="interference-onset",
        iteration=9,
        window_start=5.0,
        window_end=5.2,
        overlap_seconds=0.1,
    )
    truth = ScoringWindow(victim="alpha", aggressor="beta", start=0.9, end=1.5)
    assert score_attributions([hit], []) is None
    scored = score_attributions([hit, miss], [truth])
    assert scored == {
        "predictions": 2,
        "correct": 1,
        "truths": 1,
        "covered": 1,
        "precision": 0.5,
        "recall": 1.0,
    }


# -- runner validation ----------------------------------------------------------------


def test_runner_rejects_ranks_outside_cluster():
    op = CollectiveOp(kind=ALLREDUCE, start=0.0, size_bytes=1e6)
    workload = Workload(
        jobs=(JobTrace(name="wide", ranks=(0, 99), ops=(op,)),)
    )
    with pytest.raises(FleetError):
        FleetRunner(workload, specs=make_homo_cluster(2, 2))


def test_runner_rejects_indivisible_alltoall():
    op = CollectiveOp(kind=ALLTOALL, start=0.0, size_bytes=1e6)
    workload = Workload(
        jobs=(JobTrace(name="odd", ranks=(0, 1, 2), ops=(op,)),)
    )
    with pytest.raises(FleetError):
        FleetRunner(workload, specs=make_homo_cluster(2, 2), length=512)


def test_runner_is_single_shot():
    runner = FleetRunner(canonical_overlap_workload(seed=FLEET_SEED))
    runner.run()
    with pytest.raises(FleetError):
        runner.run()


# -- canonical overlap replay ---------------------------------------------------------


@pytest.fixture(scope="module")
def canonical_pair():
    """The canonical scenario replayed twice on one seed."""
    workload = canonical_overlap_workload(seed=FLEET_SEED)
    return replay(workload), replay(canonical_overlap_workload(seed=FLEET_SEED))


def test_canonical_replay_is_byte_identical(canonical_pair):
    first, second = canonical_pair
    assert first.merged_jsonl == second.merged_jsonl
    assert first.report_json() == second.report_json()


def test_canonical_attribution_accuracy(canonical_pair):
    result, _ = canonical_pair
    accuracy = result.report["accuracy"]
    assert accuracy["precision"] == 1.0
    assert accuracy["recall"] == 1.0
    assert result.attributions, "the planted overlap must be attributed"
    for attribution in result.attributions:
        assert attribution.victim == "alpha"
        assert attribution.aggressor == "beta"
        assert attribution.overlap_seconds > 0.0


def test_canonical_contention_on_shared_links(canonical_pair):
    result, _ = canonical_pair
    contention = result.report["contention"]
    contested = {
        link for link, row in contention.items() if row["contended_seconds"] > 0
    }
    assert contested, "alpha and beta share fabric somewhere"
    for attribution in result.attributions:
        assert attribution.link in contested


def test_canonical_fairness_bounds(canonical_pair):
    result, _ = canonical_pair
    fairness = result.report["fairness"]
    assert fairness["n"] == 2
    assert fairness["lower_bound"] == pytest.approx(0.5)
    assert fairness["lower_bound"] <= fairness["jain"] <= 1.0


def test_merged_stream_is_labeled_and_collision_free(canonical_pair):
    result, _ = canonical_pair
    run = parse_jsonl(result.merged_jsonl)
    assert run.meta["fleet"] is True
    assert run.meta["jobs"] == ["alpha", "beta"]
    assert run.meta["seed"] == FLEET_SEED
    assert run.meta["spans"] == len(run.spans)
    assert run.meta["events"] == len(run.events)
    seen = set()
    for record in run.records:
        job = record["labels"]["job"]
        assert job in ("alpha", "beta")
        identity = (job, record["id"])
        assert identity not in seen
        seen.add(identity)
    assert set(run.metrics) == {"alpha", "beta"}
    starts = [record["start"] for record in run.records]
    assert starts == sorted(starts)


def test_victim_stream_carries_the_attribution_event(canonical_pair):
    result, _ = canonical_pair
    run = parse_jsonl(result.merged_jsonl)
    events = [
        event
        for event in run.events
        if event["name"] == "interference-attribution"
    ]
    assert len(events) == len(result.attributions)
    for event in events:
        assert event["labels"]["job"] == event["args"]["victim"] == "alpha"
        assert event["args"]["aggressor"] == "beta"


def test_canonical_job_outcomes(canonical_pair):
    result, _ = canonical_pair
    jobs = result.report["jobs"]
    for name, row in jobs.items():
        assert row["ops_completed"] == row["ops_total"], name
        assert row["goodput"] > 0.0
    # The burst slows alpha but never shows up as alpha's own verdicts.
    assert jobs["beta"]["verdicts"] == 0
    assert jobs["alpha"]["verdicts"] >= 1


# -- lint -----------------------------------------------------------------------------


def test_fleet_lint_clean_on_canonical_export(canonical_pair, tmp_path):
    result, _ = canonical_pair
    assert lint_fleet_run(parse_jsonl(result.merged_jsonl)) == []
    path = tmp_path / "fleet.jsonl"
    path.write_text(result.merged_jsonl, encoding="utf-8")
    assert run_fleet_pass(target=str(path)) == []


def test_fleet_lint_flags_tampering(canonical_pair):
    result, _ = canonical_pair

    def tampered(mutate):
        records = [
            json.loads(line) for line in result.merged_jsonl.splitlines()
        ]
        mutate(records)
        return parse_jsonl("\n".join(json.dumps(r) for r in records))

    def drop_label(records):
        next(r for r in records if r.get("type") == "span").pop("labels")

    def fake_link(records):
        event = next(
            r
            for r in records
            if r.get("name") == "interference-attribution"
        )
        event["args"]["link"] = "n9->n8"

    def shrink_chunk(records):
        # Conservation is checked across hops within one collective
        # instance, so tamper a chunk that traverses more than one link.
        from repro.analysis.lint_fleet import collective_windows, _enclosing

        windows = collective_windows(parse_jsonl(result.merged_jsonl))
        groups = {}
        for r in records:
            if r.get("cat") == "chunk" and r.get("name", "").endswith(":send"):
                job = r["labels"]["job"]
                key = (
                    job,
                    _enclosing(windows[job], r["start"]),
                    r["name"],
                    r["args"]["unit"],
                    r["args"]["chunk"],
                )
                groups.setdefault(key, []).append(r)
        span = next(hops[0] for hops in groups.values() if len(hops) > 1)
        span["args"]["bytes"] /= 2

    assert any(
        v.check == "fleet-schema" for v in lint_fleet_run(tampered(drop_label))
    )
    assert any(
        v.check == "fleet-attribution"
        for v in lint_fleet_run(tampered(fake_link))
    )
    assert any(
        v.check == "fleet-conservation"
        for v in lint_fleet_run(tampered(shrink_chunk))
    )


def test_fleet_lint_io_error(tmp_path):
    violations = lint_fleet_file(str(tmp_path / "missing.jsonl"))
    assert [v.check for v in violations] == ["fleet-io"]


# -- three-job generated replay -------------------------------------------------------


@pytest.fixture(scope="module")
def three_job_pair():
    """A three-job generated workload replayed twice on one seed."""
    return (
        replay(three_job_workload(seed=FLEET_SEED)),
        replay(three_job_workload(seed=FLEET_SEED)),
    )


def test_three_job_replay_is_byte_identical(three_job_pair):
    first, second = three_job_pair
    assert first.merged_jsonl == second.merged_jsonl
    assert first.report_json() == second.report_json()


def test_three_job_report_shape(three_job_pair):
    result, _ = three_job_pair
    report = result.report
    assert len(report["jobs"]) == 3
    assert report["accuracy"] is None, "generated traces plant no truth"
    fairness = report["fairness"]
    assert fairness["n"] == 3
    assert fairness["lower_bound"] <= fairness["jain"] <= 1.0
    assert lint_fleet_run(parse_jsonl(result.merged_jsonl)) == []


# -- bench cell -----------------------------------------------------------------------


def test_bench_fleet_cell():
    from repro.bench.grid import measure_fleet

    block = measure_fleet(seed=FLEET_SEED)
    assert set(block) == {"seed", "goodput", "jain", "attribution_accuracy"}
    assert block["seed"] == FLEET_SEED
    assert block["attribution_accuracy"] == {"precision": 1.0, "recall": 1.0}
    assert 0.5 <= block["jain"] <= 1.0
    assert all(value > 0 for value in block["goodput"].values())


# -- CLI ------------------------------------------------------------------------------


def test_fleet_cli_json_report(capsys, tmp_path):
    export = tmp_path / "cli.jsonl"
    code = fleet_main(
        ["--seed", str(FLEET_SEED), "--json", "--export", str(export)]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["seed"] == FLEET_SEED
    assert report["accuracy"]["precision"] == 1.0
    assert lint_fleet_file(str(export)) == []


def test_fleet_cli_rejects_bad_input(capsys, tmp_path):
    assert fleet_main(["--trace", str(tmp_path / "nope.json")]) == 1
    assert "error:" in capsys.readouterr().err
    assert fleet_main(["--scenario", "generated", "--jobs", "9"]) == 1
