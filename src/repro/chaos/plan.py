"""Declarative, seed-replayable fault plans.

A :class:`FaultPlan` is the chaos subsystem's single source of truth: a
frozen list of fault events, each one a plain dataclass, plus the seed the
plan was generated from. Everything downstream — the injector, the runner,
the conformance suite — consumes the *plan*, never ambient randomness, so
any chaos run can be replayed bit-for-bit from ``FaultPlan.generate(seed,
...)`` (or from the explicit event list itself).

Seven fault families (ISSUE 2's four, the recovery control plane's, plus
the data-plane integrity layer's):

* :class:`StragglerFault` — a per-rank delay added to the tensor-ready
  time of one iteration (drives the ski-rental wait-vs-relay decision);
* :class:`CrashFault` — a worker crash at a chosen iteration, permanent
  (``rejoin_iteration=None``) or transient (the rank reports ``None``
  until it rejoins);
* :class:`LinkFault` — degradation or flapping of one instance's NIC
  bandwidth on the :class:`~repro.simulation.fluid.FluidNetwork`;
* :class:`MessageFault` — a dropped or duplicated work-queue submission at
  the framework/communicator boundary (Fig. 4's Work Queue);
* :class:`CoordinatorCrashFault` — the acting coordinator's *control-plane
  role* dies mid-iteration (during the ski-rental decision, or between a
  strategy transition's prepare and commit), forcing a lease takeover and
  journal replay in :class:`~repro.recovery.control_plane.
  RecoveringControlPlane`;
* :class:`PartitionFault` — a set of ranks loses the control channel for a
  window of iterations and heals, exercising epoch fencing (split-brain
  resolution) without touching the data path;
* :class:`CorruptionFault` — silent data corruption on one link's payloads
  (a high-mantissa bit flip or a scaled payload), at the wire site
  (caught by per-hop checksums) or the kernel site (past verification —
  only the end-of-collective digest exchange sees it), single-shot or
  intermittent at a seeded per-transmission rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChaosError
from repro.integrity.channel import SITE_KERNEL, SITE_WIRE

#: Message-fault actions.
DROP = "drop"
DUPLICATE = "duplicate"

#: Corruption-fault modes.
BITFLIP = "bitflip"
SCALE = "scale"

#: Coordinator-crash phases: during the ski-rental decision scan, or
#: between a strategy transition's prepare and its commit.
DECIDE_PHASE = "decide"
TRANSITION_PHASE = "transition"


@dataclass(frozen=True)
class StragglerFault:
    """Delay ``rank``'s tensor-ready time by ``delay_seconds`` at one
    iteration."""

    rank: int
    iteration: int
    delay_seconds: float

    def __post_init__(self) -> None:
        if self.delay_seconds < 0:
            raise ChaosError("straggler delay must be non-negative")
        if self.iteration < 0:
            raise ChaosError("iteration must be non-negative")


@dataclass(frozen=True)
class CrashFault:
    """``rank`` crashes at ``iteration``; a transient crash rejoins at
    ``rejoin_iteration`` (exclusive of the crash window), a permanent one
    never does."""

    rank: int
    iteration: int
    rejoin_iteration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ChaosError("iteration must be non-negative")
        if self.rejoin_iteration is not None and self.rejoin_iteration <= self.iteration:
            raise ChaosError("rejoin must happen after the crash")

    @property
    def permanent(self) -> bool:
        """Whether the worker never comes back."""
        return self.rejoin_iteration is None

    def down_at(self, iteration: int) -> bool:
        """Whether the worker is down during ``iteration``."""
        if iteration < self.iteration:
            return False
        return self.rejoin_iteration is None or iteration < self.rejoin_iteration


@dataclass(frozen=True)
class LinkFault:
    """Degrade one instance's NIC to ``bandwidth_fraction`` of nominal at
    ``start_seconds`` (simulated time) for ``duration_seconds``.

    With ``flaps > 1`` the window is split into that many down/up cycles
    (half degraded, half restored each), modelling a flapping link rather
    than a single sag. The nominal bandwidth is always restored at the end
    of the window.
    """

    instance_id: int
    start_seconds: float
    duration_seconds: float
    bandwidth_fraction: float
    flaps: int = 1

    def __post_init__(self) -> None:
        if self.start_seconds < 0 or self.duration_seconds <= 0:
            raise ChaosError("link fault window must be positive and start at t>=0")
        if not 0.0 <= self.bandwidth_fraction < 1.0:
            raise ChaosError("bandwidth fraction must be in [0, 1)")
        if self.flaps < 1:
            raise ChaosError("flaps must be >= 1")


@dataclass(frozen=True)
class MessageFault:
    """Drop or duplicate the ``submission_index``-th work-queue submission
    of ``rank`` (0-based, counted per rank across the whole run)."""

    rank: int
    submission_index: int
    action: str

    def __post_init__(self) -> None:
        if self.action not in (DROP, DUPLICATE):
            raise ChaosError(f"unknown message-fault action {self.action!r}")
        if self.submission_index < 0:
            raise ChaosError("submission index must be non-negative")


@dataclass(frozen=True)
class CoordinatorCrashFault:
    """Kill the acting coordinator's control-plane role at ``iteration``.

    Whoever holds the lease when the fault fires is the victim — the plan
    names the *moment*, not the rank, because the rank depends on earlier
    elections. ``phase`` places the crash inside the iteration: during the
    ski-rental ``decide`` scan, or in a strategy ``transition`` between
    prepare and commit (the rollback path). The victim's worker keeps
    running: only its coordination agent dies and restarts as a follower.
    """

    iteration: int
    phase: str = DECIDE_PHASE

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ChaosError("iteration must be non-negative")
        if self.phase not in (DECIDE_PHASE, TRANSITION_PHASE):
            raise ChaosError(f"unknown coordinator-crash phase {self.phase!r}")


@dataclass(frozen=True)
class PartitionFault:
    """Cut ``ranks`` off the control channel from ``iteration`` until the
    heal at ``heal_iteration`` (exclusive of the partition window).

    Control-channel-only: isolated ranks keep exchanging tensors on the
    data network, but stop hearing epoch announcements — so if the
    partition swallowed the coordinator, the majority side elects a new
    one and the deposed incumbent's first post-heal message is fenced.
    """

    ranks: Tuple[int, ...]
    iteration: int
    heal_iteration: int

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ChaosError("a partition isolates at least one rank")
        if self.iteration < 0:
            raise ChaosError("iteration must be non-negative")
        if self.heal_iteration <= self.iteration:
            raise ChaosError("heal must happen after the partition starts")


@dataclass(frozen=True)
class CorruptionFault:
    """Silently corrupt payloads crossing ``link`` (e.g. ``"n0->n1"``).

    ``mode`` picks the mutation — :data:`BITFLIP` XORs a high mantissa
    bit of one nonzero element (a classic SDC: large relative
    displacement, no NaN), :data:`SCALE` multiplies the whole payload by
    ``scale_factor``. ``site`` places the corruption relative to the hop
    checksums: :data:`~repro.integrity.channel.SITE_WIRE` lands between
    stamp and verify (the receiver's CRC32 names the link immediately),
    :data:`~repro.integrity.channel.SITE_KERNEL` lands after verification
    (the aggregation buffer), so only the digest exchange catches it.

    ``rate`` is the per-transmission corruption probability over the
    active window ``[start_iteration, end_iteration)`` (``1.0`` =
    deterministic, below = intermittent; draws come from the plan-seeded
    corruptor, so replays are bit-for-bit). ``max_corruptions`` caps the
    total strikes — ``1`` models a single-shot upset.
    """

    link: str
    mode: str = BITFLIP
    rate: float = 1.0
    start_iteration: int = 0
    end_iteration: Optional[int] = None
    site: str = SITE_WIRE
    max_corruptions: Optional[int] = None
    scale_factor: float = 2.0

    def __post_init__(self) -> None:
        if "->" not in self.link:
            raise ChaosError(f"corruption link must name a hop, got {self.link!r}")
        if self.mode not in (BITFLIP, SCALE):
            raise ChaosError(f"unknown corruption mode {self.mode!r}")
        if not 0.0 < self.rate <= 1.0:
            raise ChaosError("corruption rate must be in (0, 1]")
        if self.start_iteration < 0:
            raise ChaosError("iteration must be non-negative")
        if self.end_iteration is not None and self.end_iteration <= self.start_iteration:
            raise ChaosError("corruption window must end after it starts")
        if self.site not in (SITE_WIRE, SITE_KERNEL):
            raise ChaosError(f"unknown corruption site {self.site!r}")
        if self.max_corruptions is not None and self.max_corruptions < 1:
            raise ChaosError("max_corruptions must be >= 1")
        if self.mode == SCALE and (self.scale_factor <= 0 or self.scale_factor == 1.0):
            raise ChaosError("scale factor must be positive and != 1")

    def active_at(self, iteration: int) -> bool:
        """Whether the fault's window covers ``iteration``."""
        if iteration < self.start_iteration:
            return False
        return self.end_iteration is None or iteration < self.end_iteration


@dataclass(frozen=True)
class FaultPlan:
    """One replayable chaos schedule for a multi-iteration run."""

    seed: int
    iterations: int
    stragglers: Tuple[StragglerFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    message_faults: Tuple[MessageFault, ...] = ()
    coordinator_crashes: Tuple[CoordinatorCrashFault, ...] = ()
    partitions: Tuple[PartitionFault, ...] = ()
    corruptions: Tuple[CorruptionFault, ...] = ()

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ChaosError("a plan covers at least one iteration")
        crashed_ranks = [c.rank for c in self.crashes]
        if len(crashed_ranks) != len(set(crashed_ranks)):
            raise ChaosError("at most one crash fault per rank")
        crash_iterations = [c.iteration for c in self.coordinator_crashes]
        if len(crash_iterations) != len(set(crash_iterations)):
            raise ChaosError("at most one coordinator crash per iteration")
        corrupted_links = [c.link for c in self.corruptions]
        if len(corrupted_links) != len(set(corrupted_links)):
            raise ChaosError("at most one corruption fault per link")

    # -- queries ---------------------------------------------------------------

    def ready_delays(
        self, iteration: int, participants: Sequence[int]
    ) -> Dict[int, Optional[float]]:
        """Per-rank ready delays for one iteration: straggler delays where
        scheduled, ``None`` for ranks down (crashed) this iteration, 0.0
        otherwise."""
        delays: Dict[int, Optional[float]] = {rank: 0.0 for rank in participants}
        for straggler in self.stragglers:
            if straggler.iteration == iteration and straggler.rank in delays:
                delays[straggler.rank] = straggler.delay_seconds
        for crash in self.crashes:
            if crash.rank in delays and crash.down_at(iteration):
                delays[crash.rank] = None
        return delays

    def crashed_at(self, iteration: int) -> List[int]:
        """Ranks down during ``iteration``."""
        return sorted(c.rank for c in self.crashes if c.down_at(iteration))

    def rejoining_at(self, iteration: int) -> List[int]:
        """Ranks whose transient crash ends exactly at ``iteration``."""
        return sorted(
            c.rank for c in self.crashes if c.rejoin_iteration == iteration
        )

    def coordinator_crash_at(self, iteration: int) -> Optional[CoordinatorCrashFault]:
        """The coordinator-role crash scheduled for ``iteration``, if any."""
        for fault in self.coordinator_crashes:
            if fault.iteration == iteration:
                return fault
        return None

    def partitions_starting_at(self, iteration: int) -> List[PartitionFault]:
        """Partitions whose isolation window opens at ``iteration``."""
        return [p for p in self.partitions if p.iteration == iteration]

    def partitions_healing_at(self, iteration: int) -> List[PartitionFault]:
        """Partitions whose heal lands exactly at ``iteration``."""
        return [p for p in self.partitions if p.heal_iteration == iteration]

    def corruptions_at(self, iteration: int) -> List[CorruptionFault]:
        """Corruption faults whose window covers ``iteration``."""
        return [c for c in self.corruptions if c.active_at(iteration)]

    def message_actions(self, rank: int) -> Dict[int, str]:
        """submission-index -> action map for one rank's work queue."""
        return {
            fault.submission_index: fault.action
            for fault in self.message_faults
            if fault.rank == rank
        }

    def ground_truth(self) -> List[Dict[str, object]]:
        """Anomaly labels this plan should produce, for detection scoring.

        The observe watchdog's quality harness (:mod:`repro.observe.quality`)
        treats the fault plan as ground truth: every link fault is one
        anomaly window an online detector ought to flag (as interference
        onset, bandwidth drift, or — via fit residuals — topology-change
        suspicion on the faulted instance's NIC), and every rank with
        scheduled stragglers is one straggler-emergence label over those
        iterations. Labels are plain dicts so chaos stays independent of
        the observe package.
        """
        labels: List[Dict[str, object]] = []
        for fault in self.link_faults:
            labels.append(
                {
                    "kinds": ("interference-onset", "bandwidth-drift", "topology-change"),
                    "node": f"n{fault.instance_id}",
                    "start_seconds": fault.start_seconds,
                    "end_seconds": fault.start_seconds + fault.duration_seconds,
                }
            )
        straggler_iterations: Dict[int, List[int]] = {}
        for straggler in self.stragglers:
            straggler_iterations.setdefault(straggler.rank, []).append(
                straggler.iteration
            )
        for rank in sorted(straggler_iterations):
            labels.append(
                {
                    "kinds": ("straggler-emergence",),
                    "subject": f"rank{rank}",
                    "iterations": tuple(sorted(straggler_iterations[rank])),
                }
            )
        for fault in self.corruptions:
            labels.append(
                {
                    "kinds": ("silent-corruption",),
                    "link": fault.link,
                    "mode": fault.mode,
                    "site": fault.site,
                    "start_iteration": fault.start_iteration,
                    "end_iteration": fault.end_iteration,
                }
            )
        return labels

    def signature(self) -> Tuple:
        """A stable value equal across replays of the same plan (used by the
        determinism conformance tests)."""
        return (
            self.seed,
            self.iterations,
            self.stragglers,
            self.crashes,
            self.link_faults,
            self.message_faults,
            self.coordinator_crashes,
            self.partitions,
            self.corruptions,
        )

    # -- generation ------------------------------------------------------------

    @classmethod
    def interference(
        cls,
        seed: int,
        iterations: int,
        instance_id: int = 0,
        start_seconds: float = 0.8,
        duration_seconds: float = 60.0,
        bandwidth_fraction: float = 0.3,
    ) -> "FaultPlan":
        """A plan with one long NIC degradation and nothing else.

        The canonical observe-watchdog scenario: an external workload
        starts contending for ``instance_id``'s NIC at ``start_seconds``
        and keeps squeezing it to ``bandwidth_fraction`` of nominal for
        ``duration_seconds`` — long enough that the watchdog must detect
        it online and adapt, rather than outlive it. The defaults assume
        iterations of roughly a tenth of a simulated second (e.g.
        ``ChaosRunner(..., length=512, byte_scale=200_000.0)``) so the
        onset lands around iteration eight, after the detectors' warm-up.
        Used by the ``--observe`` lint pass, the detection-quality tests,
        and ``examples/adaptive_interference.py``.
        """
        return cls(
            seed=seed,
            iterations=iterations,
            link_faults=(
                LinkFault(
                    instance_id=instance_id,
                    start_seconds=start_seconds,
                    duration_seconds=duration_seconds,
                    bandwidth_fraction=bandwidth_fraction,
                ),
            ),
        )

    @classmethod
    def corruption(
        cls,
        seed: int,
        iterations: int,
        link: str,
        mode: str = BITFLIP,
        rate: float = 0.6,
        site: str = SITE_WIRE,
        start_iteration: int = 0,
        end_iteration: Optional[int] = None,
        max_corruptions: Optional[int] = None,
        scale_factor: float = 2.0,
    ) -> "FaultPlan":
        """A plan with one silently-corrupting link and nothing else.

        The canonical integrity scenario: ``link`` intermittently (at the
        default ``rate=0.6``) corrupts payloads it carries, and the
        integrity layer must detect it within one iteration, localize it
        within the log2 probe bound, quarantine it, and retry the
        corrupted iterations so the run's outputs stay bitwise-equal to
        the fault-free same-seed run. Used by the ``--integrity`` lint
        pass, ``tests/test_integrity.py``, and
        ``examples/sdc_quarantine.py``.
        """
        return cls(
            seed=seed,
            iterations=iterations,
            corruptions=(
                CorruptionFault(
                    link=link,
                    mode=mode,
                    rate=rate,
                    start_iteration=start_iteration,
                    end_iteration=end_iteration,
                    site=site,
                    max_corruptions=max_corruptions,
                    scale_factor=scale_factor,
                ),
            ),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        world: int,
        iterations: int,
        straggler_rate: float = 0.3,
        max_delay_seconds: float = 0.1,
        crash_rate: float = 0.1,
        transient_fraction: float = 0.5,
        link_fault_rate: float = 0.0,
        num_instances: int = 0,
        message_fault_rate: float = 0.0,
        coordinator_crash_rate: float = 0.0,
        transition_crash_fraction: float = 0.25,
        partition_rate: float = 0.0,
        corruption_rate: float = 0.0,
        corruption_links: Sequence[str] = (),
    ) -> "FaultPlan":
        """Draw a random-but-replayable plan from ``seed``.

        All randomness flows through one ``numpy.random.Generator`` seeded
        here, so two calls with identical arguments produce identical plans
        (asserted property-based in the conformance suite). Rank 0 is never
        *worker*-crashed, and at least one rank is left alive at every
        iteration by capping concurrent crashes at ``world - 2``.
        Coordinator-role crashes are a separate family: they may hit any
        incumbent (rank 0 included) because the recovery control plane is
        expected to elect a successor.
        """
        if world < 2:
            raise ChaosError("chaos plans need at least two ranks")
        rng = np.random.default_rng(seed)
        stragglers: List[StragglerFault] = []
        crashes: List[CrashFault] = []
        link_faults: List[LinkFault] = []
        message_faults: List[MessageFault] = []

        crashable = list(range(1, world))
        rng.shuffle(crashable)
        max_crashes = max(0, world - 2)
        for rank in crashable[:max_crashes]:
            if rng.random() >= crash_rate:
                continue
            at = int(rng.integers(0, iterations))
            if rng.random() < transient_fraction and at + 1 < iterations:
                rejoin = int(rng.integers(at + 1, iterations))
                crashes.append(CrashFault(rank, at, rejoin_iteration=rejoin))
            else:
                crashes.append(CrashFault(rank, at))
        down_ranks = {c.rank for c in crashes}

        for iteration in range(iterations):
            for rank in range(world):
                if rank in down_ranks:
                    continue
                if rng.random() < straggler_rate:
                    delay = float(rng.uniform(0.0, max_delay_seconds))
                    stragglers.append(StragglerFault(rank, iteration, delay))

        for instance_id in range(num_instances):
            if rng.random() >= link_fault_rate:
                continue
            start = float(rng.uniform(0.0, 0.05))
            duration = float(rng.uniform(0.01, 0.1))
            fraction = float(rng.uniform(0.05, 0.8))
            flaps = int(rng.integers(1, 4))
            link_faults.append(
                LinkFault(instance_id, start, duration, fraction, flaps=flaps)
            )

        if message_fault_rate > 0:
            for rank in range(world):
                if rank in down_ranks:
                    continue
                for index in range(iterations):
                    if rng.random() < message_fault_rate:
                        action = DROP if rng.random() < 0.5 else DUPLICATE
                        message_faults.append(MessageFault(rank, index, action))

        coordinator_crashes: List[CoordinatorCrashFault] = []
        partitions: List[PartitionFault] = []
        if coordinator_crash_rate > 0:
            for iteration in range(iterations):
                if rng.random() >= coordinator_crash_rate:
                    continue
                phase = (
                    TRANSITION_PHASE
                    if rng.random() < transition_crash_fraction
                    else DECIDE_PHASE
                )
                coordinator_crashes.append(CoordinatorCrashFault(iteration, phase))
        if partition_rate > 0 and iterations > 1:
            # Isolate a strict minority — small enough that the reachable
            # remainder still forms a commit quorum — excluding crashed
            # ranks so a partitioned rank always has a control agent to
            # fence after the heal. Windows never overlap: stacked
            # partitions could jointly isolate past the minority bound.
            isolatable = [r for r in range(world) if r not in down_ranks]
            max_isolated = (len(isolatable) - 1) // 2
            busy_until = 0
            for iteration in range(iterations - 1):
                if iteration < busy_until or max_isolated < 1:
                    continue
                if rng.random() >= partition_rate:
                    continue
                size = int(rng.integers(1, max_isolated + 1))
                chosen = rng.choice(isolatable, size=size, replace=False)
                heal = int(rng.integers(iteration + 1, iterations))
                busy_until = heal
                partitions.append(
                    PartitionFault(tuple(sorted(int(r) for r in chosen)), iteration, heal)
                )

        corruptions: List[CorruptionFault] = []
        if corruption_rate > 0:
            # Drawn last so plans generated with the pre-corruption rate
            # set replay unchanged (same rng consumption order).
            for link in corruption_links:
                if rng.random() >= corruption_rate:
                    continue
                mode = BITFLIP if rng.random() < 0.5 else SCALE
                site = SITE_WIRE if rng.random() < 0.5 else SITE_KERNEL
                strike_rate = float(rng.uniform(0.3, 1.0))
                start = int(rng.integers(0, iterations))
                corruptions.append(
                    CorruptionFault(
                        link=link,
                        mode=mode,
                        rate=strike_rate,
                        start_iteration=start,
                        site=site,
                    )
                )

        return cls(
            seed=seed,
            iterations=iterations,
            stragglers=tuple(stragglers),
            crashes=tuple(crashes),
            link_faults=tuple(link_faults),
            message_faults=tuple(message_faults),
            coordinator_crashes=tuple(coordinator_crashes),
            partitions=tuple(partitions),
            corruptions=tuple(corruptions),
        )
