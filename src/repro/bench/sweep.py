"""Seeded process-pool runner for the Fig. 11–13 grid and figure scripts.

Every grid cell builds its own :class:`~repro.bench.harness.BenchEnvironment`
(fresh simulator, cluster, backend), so cells are embarrassingly parallel.
:func:`run_sweep` fans them out across ``spawn`` worker processes and merges
the results back **in canonical serial order** (:func:`repro.bench.grid.
iter_cells`), so the aggregate payload — and, with ``REPRO_BENCH_DIR`` set,
every side payload — is byte-identical to a serial run:

* cell bandwidths are deterministic and process-independent (each cell is
  a self-contained simulation; object-id offsets never reach the numbers);
* workers never write payload files themselves — they capture
  ``write_bench_payload`` calls (:func:`repro.bench.report.
  captured_bench_payloads`) and ship the records back, and the parent
  replays them cell by cell in the order a serial run would have written
  them, so collision suffixes (``_2``/``_3``) are assigned identically;
* a failing cell fails the whole sweep (:class:`SweepError`) **before**
  any aggregate is assembled — a partial aggregate must never be written.

``python -m repro.bench.sweep benchmarks/bench_fig*.py --jobs 4`` applies
the same fan-out to the pytest figure scripts: each script runs in its own
subprocess, output is reported in deterministic (sorted) order, and any
failing script fails the run.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.grid import (
    assemble_payload,
    cell_id,
    cell_key,
    figure_block,
    iter_cells,
    measure_cell_detail,
)
from repro.bench.report import captured_bench_payloads, write_bench_payload

#: Test hook: set to a cell id (``figure|config|backend``) to make that
#: cell raise, proving a poisoned worker fails the sweep loudly instead
#: of producing a partial aggregate. Inherited by spawn workers.
ENV_POISON = "REPRO_BENCH_POISON"


class SweepError(RuntimeError):
    """One or more sweep cells failed; no aggregate was produced."""


def _maybe_poison(figure: str, config: str, backend: str) -> None:
    if os.environ.get(ENV_POISON, "") == cell_id(figure, config, backend):
        raise RuntimeError(
            f"poisoned cell {cell_id(figure, config, backend)} "
            f"({ENV_POISON} test hook)"
        )


def _run_cell_captured(
    cell: Tuple[str, str, str],
) -> Tuple[float, Optional[str], float, List[Tuple[str, Dict]]]:
    """Worker entry: measure one cell, capturing its payload writes.

    Returns ``(bandwidth_bps, bottleneck_link, wall_seconds,
    captured_payloads)``. Module level so it pickles under the ``spawn``
    start method.
    """
    figure, config, backend = cell
    _maybe_poison(figure, config, backend)
    records: List[Tuple[str, Dict]] = []
    start = time.perf_counter()
    with captured_bench_payloads(records):
        bandwidth, bottleneck = measure_cell_detail(figure, config, backend)
    return bandwidth, bottleneck, time.perf_counter() - start, records


def run_sweep(
    names: Sequence[str], quick: bool = False, jobs: int = 1
) -> Tuple[Dict, Dict[str, float]]:
    """Measure the grid for ``names``; returns ``(payload, timings)``.

    ``timings`` maps each :func:`cell_id` to the wall-clock seconds its
    measurement took (in the worker, excluding pool overhead). Timings are
    host-dependent by nature and are therefore kept **out** of the
    aggregate payload, which stays byte-deterministic; the budget gate in
    ``python -m repro.bench`` consumes them directly.

    With ``jobs > 1``, cells run in ``spawn`` worker processes. If any
    cell raises, the sweep raises :class:`SweepError` after draining the
    pool — no aggregate is assembled and nothing is replayed, so a poisoned
    worker can never leave a partial result behind.
    """
    cells = list(iter_cells(names, quick=quick))
    timings: Dict[str, float] = {}
    bandwidths: Dict[Tuple[str, str, str], float] = {}
    bottlenecks: Dict[Tuple[str, str, str], Optional[str]] = {}

    if jobs <= 1:
        for cell in cells:
            figure, config, backend = cell
            _maybe_poison(figure, config, backend)
            start = time.perf_counter()
            bandwidths[cell], bottlenecks[cell] = measure_cell_detail(
                figure, config, backend
            )
            timings[cell_id(figure, config, backend)] = time.perf_counter() - start
    else:
        context = get_context("spawn")
        failures: List[str] = []
        outcomes: List = []
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = [pool.submit(_run_cell_captured, cell) for cell in cells]
            for cell, future in zip(cells, futures):
                try:
                    outcomes.append((cell, future.result()))
                except Exception as exc:  # noqa: BLE001 - reported, then fatal
                    failures.append(f"{cell_id(*cell)}: {exc}")
        if failures:
            raise SweepError(
                f"{len(failures)} of {len(cells)} sweep cell(s) failed; "
                "refusing to write a partial aggregate:\n  "
                + "\n  ".join(failures)
            )
        # Merge in canonical serial order: `cells` (and therefore
        # `outcomes`) is already iter_cells() order, so the replayed
        # payload stream is exactly what a serial run would have written.
        for cell, (bandwidth, bottleneck, wall_seconds, records) in outcomes:
            bandwidths[cell] = bandwidth
            bottlenecks[cell] = bottleneck
            timings[cell_id(*cell)] = wall_seconds
            for name, payload in records:
                write_bench_payload(name, payload)

    blocks: Dict[str, Dict] = {}
    for name in names:
        figure_cells = {
            cell_key(config, backend): bandwidths[(fig, config, backend)]
            for fig, config, backend in cells
            if fig == name
        }
        figure_bottlenecks = {
            cell_key(config, backend): bottlenecks[(fig, config, backend)]
            for fig, config, backend in cells
            if fig == name
        }
        blocks[name] = figure_block(
            name, figure_cells, quick=quick, bottlenecks=figure_bottlenecks
        )
    return assemble_payload(blocks, quick=quick), timings


# -- figure-script fan-out -----------------------------------------------------


def _run_script(path: Path) -> Tuple[str, int, str]:
    """Run one pytest figure script in a subprocess; returns (name, rc, output)."""
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
    )
    return path.name, proc.returncode, proc.stdout + proc.stderr


def run_scripts(paths: Sequence[Path], jobs: int = 1) -> List[Tuple[str, int, str]]:
    """Run figure scripts across ``jobs`` subprocesses, sorted-order results."""
    ordered = sorted(Path(p) for p in paths)
    if jobs <= 1:
        return [_run_script(path) for path in ordered]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_script, ordered))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sweep",
        description="Fan the benchmarks/ figure scripts out across worker "
        "subprocesses (the Fig. 11-13 grid sweep itself is "
        "`python -m repro.bench --jobs N`).",
    )
    parser.add_argument(
        "scripts",
        nargs="*",
        default=None,
        help="figure scripts to run (default: benchmarks/bench_*.py)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of concurrent script subprocesses (default 1)",
    )
    args = parser.parse_args(argv)

    if args.scripts:
        paths = [Path(s) for s in args.scripts]
    else:
        paths = sorted(Path("benchmarks").glob("bench_*.py"))
    if not paths:
        parser.error("no figure scripts found")
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"missing scripts: {missing}")

    results = run_scripts(paths, jobs=args.jobs)
    failed = 0
    for name, returncode, output in results:
        status = "ok  " if returncode == 0 else "FAIL"
        print(f"{status} {name}")
        if returncode != 0:
            failed += 1
            print(output)
    if failed:
        print(f"FAIL sweep: {failed} of {len(results)} script(s) failed")
        return 1
    print(f"ok   sweep: {len(results)} script(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
