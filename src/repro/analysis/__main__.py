"""Command-line entry point for the analysis pass framework.

``python -m repro.analysis`` runs every registered pass; pass flags
(``--source``, ``--strategies``, …, ``--races``) select a subset. Results
render as a text report (default), a structured JSON report, or a SARIF
2.1.0 document (``--format``), with stable exit codes:

* ``0`` — every selected pass ran and no gating finding remains,
* ``1`` — at least one finding at/above ``--fail-on`` severity survived
  baseline suppression,
* ``2`` — a pass crashed (internal error) or the invocation was invalid.

``--jobs N`` runs independent passes in parallel; passes that swap
process-global state (the telemetry hub) are always serialized. Findings
are cached content-addressed per pass (``--no-cache`` / ``--cache-dir``
to control); reports come out in canonical registry order either way, so
SARIF output is byte-identical across runs and job counts.

The legacy per-pass entry points (``run_source_pass`` & co., returning
bare ``Violation`` records) remain importable from this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.cache import AnalysisCache, default_cache_dir
from repro.analysis.findings import SEVERITIES, severity_rank
from repro.analysis.passes import (
    run_chaos_pass,
    run_critpath_pass,
    run_fleet_pass,
    run_integrity_pass,
    run_observe_pass,
    run_race_pass,
    run_recovery_pass,
    run_source_pass,
    run_strategy_pass,
    run_telemetry_pass,
    run_trace_pass,
)
from repro.analysis.registry import PassResult, iter_passes
from repro.analysis.runner import run_passes
from repro.analysis.sarif import render_text, to_json_report, to_sarif

#: The legacy per-pass entry points stay importable from here.
__all__ = [
    "main",
    "load_baseline",
    "write_baseline",
    "run_chaos_pass",
    "run_critpath_pass",
    "run_fleet_pass",
    "run_integrity_pass",
    "run_observe_pass",
    "run_race_pass",
    "run_recovery_pass",
    "run_source_pass",
    "run_strategy_pass",
    "run_telemetry_pass",
    "run_trace_pass",
]

#: Schema of the baseline (suppression) file.
BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> Set[str]:
    """Suppression keys from a baseline file (empty set if absent)."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA}"
        )
    return set(payload.get("suppressions", []))


def write_baseline(path: Path, results: List[PassResult]) -> int:
    """Write every current finding's suppression key to ``path``."""
    keys = sorted(
        {f.suppression_key for result in results for f in result.findings}
    )
    payload = {"schema": BASELINE_SCHEMA, "suppressions": keys}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(keys)


def _list_passes() -> int:
    for spec in iter_passes():
        flags = []
        if spec.serial:
            flags.append("serial")
        if spec.accepts_target:
            flags.append("accepts FILE")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{spec.name:<12} {spec.description}{suffix}")
        codes = ", ".join(f"{r.code}({r.severity[0]})" for r in spec.rules)
        print(f"{'':<12} codes: {codes}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Analysis pass framework for the AdapCC reproduction.",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered passes and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent passes in parallel (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental findings cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (default: $REPRO_ANALYSIS_CACHE or "
        ".repro-analysis-cache)",
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="error",
        help="lowest severity that causes exit code 1 (default: error)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppression baseline: findings whose keys it lists do not gate",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write all current findings' suppression keys to FILE",
    )
    parser.add_argument(
        "--source", action="store_true", help="select the source lint"
    )
    parser.add_argument(
        "--strategies", action="store_true", help="select the strategy verifier"
    )
    parser.add_argument("--traces", action="store_true", help="select the trace lint")
    parser.add_argument("--chaos", action="store_true", help="select the chaos lint")
    parser.add_argument(
        "--recovery", action="store_true", help="select the recovery-journal lint"
    )
    parser.add_argument(
        "--races", action="store_true", help="select the sim-determinism race detector"
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="select the telemetry lint; optionally against an exported "
        "JSONL run or Chrome trace file",
    )
    parser.add_argument(
        "--observe",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="select the observe lint; optionally against an exported "
        "observe JSONL log",
    )
    parser.add_argument(
        "--critpath",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="select the critical-path lint; optionally against an "
        "exported critpath report JSON file",
    )
    parser.add_argument(
        "--integrity",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="select the data-plane integrity lint; optionally against an "
        "exported integrity JSONL log",
    )
    parser.add_argument(
        "--fleet",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="select the fleet-replay lint; optionally against a merged "
        "fleet JSONL export",
    )
    return parser


def _selection(args) -> Optional[List[str]]:
    """Pass names selected by the flags (``None`` = all passes)."""
    names = [
        name
        for name, on in (
            ("source", args.source),
            ("strategies", args.strategies),
            ("traces", args.traces),
            ("chaos", args.chaos),
            ("recovery", args.recovery),
            ("telemetry", args.telemetry is not False),
            ("observe", args.observe is not False),
            ("races", args.races),
            ("critpath", args.critpath is not False),
            ("integrity", args.integrity is not False),
            ("fleet", args.fleet is not False),
        )
        if on
    ]
    return names or None


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        return _list_passes()

    cache = None
    if not args.no_cache:
        directory = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        cache = AnalysisCache(directory)
    targets: Dict[str, str] = {}
    if isinstance(args.telemetry, str):
        targets["telemetry"] = args.telemetry
    if isinstance(args.observe, str):
        targets["observe"] = args.observe
    if isinstance(args.critpath, str):
        targets["critpath"] = args.critpath
    if isinstance(args.integrity, str):
        targets["integrity"] = args.integrity
    if isinstance(args.fleet, str):
        targets["fleet"] = args.fleet

    try:
        baseline = load_baseline(Path(args.baseline)) if args.baseline else set()
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: unreadable baseline: {exc}", file=sys.stderr)
        return 2

    results = run_passes(
        names=_selection(args),
        jobs=max(1, args.jobs),
        cache=cache,
        targets=targets,
    )

    if args.write_baseline:
        count = write_baseline(Path(args.write_baseline), results)
        print(
            f"wrote {count} suppression(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        baseline |= {
            f.suppression_key for result in results for f in result.findings
        }

    if args.format == "text":
        report = "\n".join(render_text(results, suppressed=baseline)) + "\n"
    else:
        # Progress notes go to stderr so machine-readable stdout stays clean.
        for result in results:
            for note in result.notes:
                print(f"[{result.spec.name}] {note}", file=sys.stderr)
        report = (
            to_sarif(results) if args.format == "sarif" else to_json_report(results)
        )
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    if any(result.error is not None for result in results):
        return 2
    threshold = severity_rank(args.fail_on)
    gating = [
        finding
        for result in results
        for finding in result.findings
        if severity_rank(finding.severity) >= threshold
        and finding.suppression_key not in baseline
    ]
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
