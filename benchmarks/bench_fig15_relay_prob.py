"""Fig. 15 — probability of each worker being chosen as a relay.

The paper counts, over training iterations, how often each worker is a
relay (i.e. not ready when phase 1 triggers). Heterogeneous: the
lower-compute V100 GPUs are chosen far more often; homogeneous: the
distribution is roughly even.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchEnvironment
from repro.hardware import make_hetero_cluster, make_homo_cluster
from repro.training import VIT
from repro.training.trainer import Trainer, TrainerConfig


def relay_probabilities(specs, iterations=20, seed=23, jitter=0.10):
    env = BenchEnvironment(specs, "adapcc")
    trainer = Trainer(
        env.backend,
        VIT,
        TrainerConfig(iterations=iterations, seed=seed, jitter_sigma=jitter),
    )
    trainer.run()
    probabilities = trainer.adaptive.relay_probabilities()
    return {rank: probabilities.get(rank, 0.0) for rank in env.ranks}


def measure():
    hetero = relay_probabilities(make_hetero_cluster(num_a100=2, num_v100=2))
    homo = relay_probabilities(make_homo_cluster(num_servers=4))
    return hetero, homo


def test_fig15_relay_selection_probability(run_once):
    hetero, homo = run_once(measure)

    print("\nFig. 15 — relay selection probability per worker")
    print("hetero (ranks 0-7 = A100, 8-15 = V100):")
    print("  " + "  ".join(f"{r}:{p:.2f}" for r, p in sorted(hetero.items())))
    print("homo (all A100):")
    print("  " + "  ".join(f"{r}:{p:.2f}" for r, p in sorted(homo.items())))

    a100_mean = np.mean([p for r, p in hetero.items() if r < 8])
    v100_mean = np.mean([p for r, p in hetero.items() if r >= 8])
    print(f"hetero: mean P(relay) A100={a100_mean:.2f}  V100={v100_mean:.2f}")

    # Shape: slow GPUs are relays far more often in the hetero setting; the
    # homogeneous distribution is comparatively flat.
    assert v100_mean > a100_mean + 0.3
    homo_values = list(homo.values())
    assert max(homo_values) - min(homo_values) < 0.8
