"""Backend interface shared by AdapCC and the baseline models.

A backend turns (primitive, tensor size, participants) into a strategy and
executes it. The interface deliberately mirrors how the paper's benchmarks
drive each library: plan once (or per profiling period for AdapCC), run
per iteration, measure completion time.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.config import verification_enabled
from repro.errors import CommunicatorError
from repro.runtime.collectives import (
    CollectiveResult,
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_reduce,
    run_reduce_scatter,
)
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology


class Backend(abc.ABC):
    """A communication library under test."""

    #: Display name used in benchmark tables.
    name: str = "backend"

    def __init__(self, topology: LogicalTopology):
        self.topology = topology
        #: Tri-state verification override for :meth:`plan`: ``None`` defers
        #: to :func:`repro.analysis.verification_enabled` (on under pytest
        #: or ``REPRO_VERIFY``), ``True``/``False`` force it.
        self.verify: Optional[bool] = None

    def plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        """Produce (and optionally statically verify) this backend's strategy.

        Template method: backends implement :meth:`_plan`; the produced
        strategy is run through :func:`repro.analysis.assert_valid` when
        verification is enabled, so every baseline's output is held to the
        same invariants as the synthesizer's.
        """
        strategy = self._plan(primitive, tensor_size, participants, root=root)
        if verification_enabled(self.verify):
            from repro.analysis.verify_strategy import assert_valid

            assert_valid(strategy, self.topology)
        return strategy

    @abc.abstractmethod
    def _plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        """Produce the strategy this backend would use."""

    def refresh(self) -> None:
        """React to changed network conditions.

        AdapCC re-profiles and re-synthesizes; static baselines do nothing
        (their strategies are fixed at initialization), which is the
        adaptivity gap Fig. 18 measures.
        """

    def run(
        self,
        strategy: Strategy,
        inputs: Dict[int, np.ndarray],
        active_ranks: Optional[Iterable[int]] = None,
        ready_times: Optional[Dict[int, float]] = None,
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = None,
    ) -> CollectiveResult:
        """Execute a planned strategy on this backend's executor."""
        primitive = strategy.primitive
        if primitive is Primitive.REDUCE:
            return run_reduce(
                self.topology, strategy, inputs, active_ranks, ready_times, byte_scale,
                max_chunks,
            )
        if primitive is Primitive.BROADCAST:
            return run_broadcast(
                self.topology, strategy, inputs, ready_times, byte_scale, max_chunks
            )
        if primitive is Primitive.ALLREDUCE:
            return run_allreduce(
                self.topology,
                strategy,
                inputs,
                active_ranks,
                ready_times,
                pipeline_stages=self.pipelines_stages(),
                byte_scale=byte_scale,
                max_chunks=max_chunks,
            )
        if primitive is Primitive.ALLGATHER:
            return run_allgather(
                self.topology, strategy, inputs, ready_times, byte_scale, max_chunks
            )
        if primitive is Primitive.REDUCE_SCATTER:
            return run_reduce_scatter(
                self.topology, strategy, inputs, active_ranks, ready_times, byte_scale,
                max_chunks,
            )
        if primitive is Primitive.ALLTOALL:
            return run_alltoall(
                self.topology, strategy, inputs, ready_times, byte_scale, max_chunks
            )
        raise CommunicatorError(f"unsupported primitive {primitive}")

    def pipelines_stages(self) -> bool:
        """Whether AllReduce's reduce and broadcast stages are pipelined."""
        return True

    def plan_and_run(
        self,
        primitive: Primitive,
        inputs: Dict[int, np.ndarray],
        participants: Iterable[int],
        root: Optional[int] = None,
        ready_times: Optional[Dict[int, float]] = None,
    ) -> CollectiveResult:
        """Convenience: plan then run in one call (micro-benchmarks)."""
        participants = list(participants)
        length = len(next(iter(inputs.values())))
        itemsize = next(iter(inputs.values())).itemsize
        strategy = self.plan(primitive, length * itemsize, participants, root=root)
        return self.run(strategy, inputs, ready_times=ready_times)


_REGISTRY: Dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator adding a backend to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def make_backend(name: str, topology: LogicalTopology, **kwargs) -> Backend:
    """Instantiate a backend by name ('adapcc', 'nccl', 'msccl', 'blink')."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise CommunicatorError(f"unknown backend {name!r}; have {available_backends()}")
    return cls(topology, **kwargs)
