"""Seeded silent-data-corruption injection on the data plane.

The :class:`PayloadCorruptor` is the chaos party of the process-global
:class:`~repro.integrity.channel.DataPlane` tap: every chunk delivery
(and every integrity probe — probes must experience the same schedule as
the traffic they stand in for) passes through :meth:`PayloadCorruptor.
apply`, which consults the plan's :class:`~repro.chaos.plan.
CorruptionFault` for the link and, when the fault's window and seeded
per-transmission rate say so, returns a mutated *copy* of the payload.

Determinism: each faulted link owns a ``numpy`` generator seeded from
``(plan seed, link index)``; draws are consumed in delivery order, which
the simulator makes deterministic — so two runs of the same plan corrupt
the same transmissions in the same way, bit for bit (asserted by the
conformance suite via :meth:`trace_signature`).

Two mutation modes (see :mod:`repro.integrity.checksums` for why both
are detectable):

* ``bitflip`` — XOR one high mantissa bit (47–51) of one nonzero
  element: a large relative displacement with no NaN/Inf;
* ``scale`` — multiply the whole payload by ``scale_factor``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.plan import BITFLIP, CorruptionFault
from repro.errors import ChaosError

#: Mantissa bits a bit-flip fault may touch (high enough that the
#: relative displacement dwarfs the digest tolerance, low enough to
#: leave the exponent — and thus NaN/Inf territory — alone).
FLIP_BITS = (47, 52)


class PayloadCorruptor:
    """Applies a plan's corruption faults at the data-plane tap."""

    def __init__(
        self,
        faults: Sequence[CorruptionFault],
        seed: int,
        on_corrupt: Optional[Callable[..., None]] = None,
    ):
        links = [fault.link for fault in faults]
        if len(links) != len(set(links)):
            raise ChaosError("at most one corruption fault per link")
        self.faults: Dict[str, CorruptionFault] = {f.link: f for f in faults}
        self.seed = seed
        self.on_corrupt = on_corrupt
        self.iteration = 0
        self._rngs: Dict[str, np.random.Generator] = {
            link: np.random.default_rng((seed, 0x5DC, index))
            for index, link in enumerate(sorted(self.faults))
        }
        #: Corruptions applied so far, per link.
        self.strikes: Dict[str, int] = {link: 0 for link in self.faults}
        #: (iteration, link, site, mode, chunk, tag) per corruption, in order.
        self.trace: List[Tuple] = []

    @property
    def links(self) -> List[str]:
        """The faulted links, sorted."""
        return sorted(self.faults)

    def begin_iteration(self, iteration: int) -> None:
        """Advance the fault windows to ``iteration``."""
        self.iteration = iteration

    def trace_signature(self) -> Tuple[Tuple, ...]:
        """A stable value equal across replays of the same plan."""
        return tuple(self.trace)

    # -- the tap callback ------------------------------------------------------

    def apply(
        self,
        link: str,
        payload: np.ndarray,
        site: str,
        *,
        chunk: int,
        tag: str = "",
        now: float = 0.0,
    ) -> np.ndarray:
        """Maybe corrupt one transmission; never mutates ``payload``."""
        fault = self.faults.get(link)
        if fault is None or fault.site != site or not fault.active_at(self.iteration):
            return payload
        if (
            fault.max_corruptions is not None
            and self.strikes[link] >= fault.max_corruptions
        ):
            return payload
        rng = self._rngs[link]
        if fault.rate < 1.0 and rng.random() >= fault.rate:
            return payload
        corrupted = self._mutate(fault, payload, rng)
        self.strikes[link] += 1
        self.trace.append((self.iteration, link, site, fault.mode, chunk, tag))
        if self.on_corrupt is not None:
            self.on_corrupt(
                link=link,
                site=site,
                mode=fault.mode,
                iteration=self.iteration,
                chunk=chunk,
                tag=tag,
                now=now,
            )
        return corrupted

    def _mutate(
        self, fault: CorruptionFault, payload: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # Always a copy: slot payloads are shared references (sources
        # publish views of the ranks' input tensors).
        work = np.array(payload, copy=True)
        if fault.mode == BITFLIP and work.dtype == np.float64 and work.size:
            nonzero = np.flatnonzero(work)
            if nonzero.size:
                index = int(nonzero[int(rng.integers(0, nonzero.size))])
                bit = int(rng.integers(*FLIP_BITS))
                flat = work.reshape(-1)
                bits = flat.view(np.uint64)
                bits[index] ^= np.uint64(1) << np.uint64(bit)
                return work
            # An all-zero payload has no mantissa to flip; plant a value.
            work.reshape(-1)[0] = 1.0
            return work
        return work * fault.scale_factor
