"""Tests for the training substrate: models, compute, data, interference,
trainer loop, and the convergence simulator."""

import numpy as np
import pytest

from repro.baselines import make_backend
from repro.errors import TrainingError
from repro.hardware import Cluster, make_hetero_cluster, make_homo_cluster
from repro.simulation import Simulator
from repro.topology import LogicalTopology
from repro.training import (
    GPT2,
    MOE,
    PAPER_MODELS,
    VGG16,
    VIT,
    AggregationMode,
    ComputeModel,
    InterferenceModel,
    ShardedDataLoader,
    Trainer,
    TrainerConfig,
    train_convergence,
)


def make_topo(specs=None):
    sim = Simulator()
    cluster = Cluster(sim, specs or make_homo_cluster(num_servers=2))
    return LogicalTopology.from_cluster(cluster)


class TestModels:
    def test_paper_tensor_sizes(self):
        assert VGG16.tensor_bytes == 528e6
        assert GPT2.tensor_bytes == 475e6
        assert VIT.tensor_bytes == 208e6
        assert MOE.tensor_bytes == 512e6

    def test_paper_default_batches(self):
        assert GPT2.default_batch == 16
        assert VGG16.default_batch == 128

    def test_moe_uses_alltoall(self):
        from repro.synthesis import Primitive

        assert MOE.primitive is Primitive.ALLTOALL
        assert all(
            m.primitive is Primitive.ALLREDUCE for m in PAPER_MODELS if m.name != "MoE"
        )

    def test_compute_seconds_scales_with_batch(self):
        t16 = GPT2.compute_seconds(16, 200e12)
        t32 = GPT2.compute_seconds(32, 200e12)
        assert t32 == pytest.approx(2 * t16)

    def test_compute_seconds_validation(self):
        with pytest.raises(TrainingError):
            GPT2.compute_seconds(0, 1.0)
        with pytest.raises(TrainingError):
            GPT2.compute_seconds(1, 0.0)


class TestComputeModel:
    def make(self, specs=None, **kwargs):
        topo = make_topo(specs)
        return ComputeModel(topo.cluster, GPT2, batch=16, **kwargs)

    def test_hetero_base_times_differ(self):
        model = self.make(make_hetero_cluster())
        a100 = model.base_seconds(0)
        v100 = model.base_seconds(8)
        assert v100 > 2 * a100  # V100 is ~2.9x slower

    def test_draw_covers_all_ranks(self):
        model = self.make()
        times = model.draw()
        assert set(times) == set(range(8))
        assert all(t > 0 for t in times.values())

    def test_deterministic_given_seed(self):
        a = self.make(seed=7).draw()
        b = self.make(seed=7).draw()
        assert a == b

    def test_no_jitter_is_exact(self):
        model = self.make(jitter_sigma=0.0, straggle_prob=0.0)
        times = model.draw()
        assert times[0] == pytest.approx(model.base_seconds(0))

    def test_interference_multiplies(self):
        model = self.make(jitter_sigma=0.0, straggle_prob=0.0)
        slowed = model.draw(interference={3: 1.5})
        clean = model.base_seconds(3)
        assert slowed[3] == pytest.approx(1.5 * clean)

    def test_interference_below_one_rejected(self):
        model = self.make()
        with pytest.raises(TrainingError):
            model.draw(interference={0: 0.5})

    def test_skew_ratio(self):
        model = self.make()
        assert model.skew_ratio({0: 1.0, 1: 1.5}) == pytest.approx(0.5)

    def test_hetero_skew_larger_than_homo(self):
        homo = self.make(seed=3)
        hetero = self.make(make_hetero_cluster(), seed=3)
        homo_skews = [homo.skew_ratio(homo.draw()) for _ in range(20)]
        hetero_skews = [hetero.skew_ratio(hetero.draw()) for _ in range(20)]
        assert np.mean(hetero_skews) > np.mean(homo_skews)


class TestInterference:
    def make(self, level=200.0, **kwargs):
        topo = make_topo()
        return InterferenceModel(topo.cluster, level_percent=level, seed=1, **kwargs)

    def test_zero_level_no_victims(self):
        model = self.make(level=0.0)
        assert model.at(0.0) == {}

    def test_victims_bounded_per_server(self):
        model = self.make(level=400.0)
        slowdowns = model.at(0.0)
        per_server = {}
        for rank in slowdowns:
            server = rank // 4
            per_server[server] = per_server.get(server, 0) + 1
        assert all(count <= 2 for count in per_server.values())

    def test_slowdown_grows_with_level(self):
        assert self.make(level=400.0).slowdown_factor > self.make(level=100.0).slowdown_factor

    def test_reroll_after_period(self):
        model = self.make(level=400.0, reroll_seconds=10.0)
        first = model.at(0.0)
        unchanged = model.at(5.0)
        assert first == unchanged
        model.at(10.0)  # may differ; just must not crash and must re-roll clock
        assert model._next_reroll == pytest.approx(20.0)

    def test_negative_level_rejected(self):
        with pytest.raises(TrainingError):
            self.make(level=-1.0)

    def test_same_seed_reroll_sequences_reproducible(self):
        # Satellite: _reroll draws only from the seeded generator, so two
        # same-seed models replay identical at()/victims() sequences.
        first = self.make(level=400.0, reroll_seconds=10.0)
        second = self.make(level=400.0, reroll_seconds=10.0)
        times = [0.0, 3.0, 10.0, 20.0, 35.0, 60.0]
        for now in times:
            assert first.at(now) == second.at(now)
            assert first.victims() == second.victims()

    def test_different_seeds_diverge(self):
        times = [0.0, 10.0, 20.0, 30.0, 40.0]

        def sequence(seed):
            model = InterferenceModel(
                make_topo().cluster,
                level_percent=400.0,
                reroll_seconds=10.0,
                seed=seed,
            )
            return [tuple(sorted(model.at(now).items())) for now in times]

        assert sequence(1) != sequence(2)


class TestDataLoader:
    def test_partition_exact(self):
        loader = ShardedDataLoader(dataset_size=1000, global_batch=64, workers=list(range(8)))
        assert loader.verify_partition()
        assert sum(loader.shard_sizes().values()) == 1000

    def test_batches_sum_to_global(self):
        loader = ShardedDataLoader(dataset_size=1000, global_batch=100, workers=list(range(7)))
        batches = loader.next_batch()
        assert sum(batches.values()) == 100

    def test_redistribution_preserves_global_batch(self):
        loader = ShardedDataLoader(dataset_size=1000, global_batch=64, workers=list(range(8)))
        loader.redistribute([0, 1, 2, 3, 5, 6])
        assert loader.verify_partition()
        assert sum(loader.next_batch().values()) == 64
        assert set(loader.next_batch()) == {0, 1, 2, 3, 5, 6}

    def test_redistribute_to_unknown_rejected(self):
        loader = ShardedDataLoader(dataset_size=100, global_batch=10, workers=[0, 1])
        with pytest.raises(TrainingError):
            loader.redistribute([0, 9])

    def test_redistribute_empty_rejected(self):
        loader = ShardedDataLoader(dataset_size=100, global_batch=10, workers=[0, 1])
        with pytest.raises(TrainingError):
            loader.redistribute([])

    def test_epoch_counting(self):
        loader = ShardedDataLoader(dataset_size=100, global_batch=50, workers=[0, 1])
        loader.next_batch()
        loader.next_batch()
        assert loader.epochs_completed == 1


class TestTrainer:
    def run_training(self, backend_name="adapcc", model=VIT, specs=None, **cfg):
        topo = make_topo(specs)
        backend = make_backend(backend_name, topo)
        config = TrainerConfig(iterations=cfg.pop("iterations", 5), **cfg)
        trainer = Trainer(backend, model, config)
        return trainer, trainer.run()

    def test_report_shape(self):
        trainer, report = self.run_training()
        assert report.iterations == 5
        assert report.throughput > 0
        assert report.mean_comm_seconds > 0
        assert report.makespan > 0

    def test_iteration_includes_compute_and_comm(self):
        trainer, report = self.run_training()
        for stat in report.stats:
            assert stat.iteration_seconds >= stat.compute_seconds_max

    def test_adaptive_disabled_for_baselines(self):
        trainer, _ = self.run_training(backend_name="nccl")
        assert trainer.adaptive is None

    def test_adaptive_enabled_for_adapcc_allreduce(self):
        trainer, _ = self.run_training(backend_name="adapcc")
        assert trainer.adaptive is not None

    def test_moe_uses_alltoall_without_relay(self):
        trainer, report = self.run_training(model=MOE)
        assert trainer.adaptive is None
        assert report.throughput > 0

    def test_adapcc_beats_nccl_throughput_hetero(self):
        """The paper's training-throughput headline (Figs. 14/16/17)."""
        _, adapcc = self.run_training(
            "adapcc", model=VIT, specs=make_hetero_cluster(), iterations=8, seed=5
        )
        _, nccl = self.run_training(
            "nccl", model=VIT, specs=make_hetero_cluster(), iterations=8, seed=5
        )
        assert adapcc.throughput > nccl.throughput

    def test_periodic_profiling_runs(self):
        trainer, report = self.run_training(profile_period=3, iterations=7)
        assert report.reconstructions == 2

    def test_wait_ratio_metric(self):
        from repro.training.trainer import IterationStats

        stat = IterationStats(
            index=0,
            compute_seconds_max=1.2,
            compute_seconds_min=1.0,
            comm_seconds=0.6,
            iteration_seconds=1.8,
        )
        assert stat.wait_ratio == pytest.approx(0.2 / 0.4)


class TestConvergence:
    def test_full_learns(self):
        run = train_convergence(AggregationMode.FULL, steps=80, seed=2)
        assert run.final_accuracy > 0.75

    def test_two_phase_matches_full(self):
        """AdapCC's two-phase aggregation preserves accuracy (Fig. 19b)."""
        full = train_convergence(AggregationMode.FULL, steps=80, seed=2)
        two = train_convergence(AggregationMode.TWO_PHASE, steps=80, seed=2)
        assert abs(full.final_accuracy - two.final_accuracy) < 0.03

    def test_reordered_matches_full(self):
        """Aggregation order only perturbs rounding (Fig. 19b's
        'AdapCC-nccl graph')."""
        full = train_convergence(AggregationMode.FULL, steps=80, seed=2)
        reordered = train_convergence(AggregationMode.REORDERED, steps=80, seed=2)
        assert abs(full.final_accuracy - reordered.final_accuracy) < 0.03

    def test_async_drop_degrades(self):
        """Discarding stragglers' tensors hurts convergence (Fig. 19b's
        'Relay Async')."""
        full = train_convergence(AggregationMode.FULL, steps=80, straggler_prob=0.9, seed=2)
        dropped = train_convergence(
            AggregationMode.ASYNC_DROP, steps=80, straggler_prob=0.9, seed=2
        )
        assert dropped.final_accuracy < full.final_accuracy - 0.1

    def test_needs_two_workers(self):
        with pytest.raises(TrainingError):
            train_convergence(AggregationMode.FULL, workers=1)
