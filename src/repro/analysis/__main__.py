"""``python -m repro.analysis`` — run the static analysis passes.

Seven passes, all on by default (select a subset with flags):

* ``--source``     AST determinism/convention lint over ``src/repro``;
* ``--strategies`` plan every backend × primitive × benchmark topology and
  statically verify the resulting strategies;
* ``--traces``     run a recorded AllReduce and lint the fluid-network
  trace for capacity/fairness/conservation invariants;
* ``--chaos``      replay a seeded fault plan through the chaos runner and
  lint the recorded trace: the fluid invariants must hold *through* the
  injected link faults, chaos events must be well-formed, and the run's
  aggregation must stay bitwise exact;
* ``--telemetry``  with no argument, run a small instrumented collective
  under a fresh telemetry hub and lint both the JSONL export and the
  Chrome-trace conversion; with a path argument, lint that exported file
  (``--telemetry run.jsonl`` / ``--telemetry run.trace.json``);
* ``--recovery``   replay a fault plan that crashes the acting coordinator
  (once mid-decision, once between a strategy transition's prepare and
  commit) and partitions the control channel, then lint the control-plane
  journal: gapless total order, epoch discipline, exactly one coordinator
  per epoch, quorum-backed commits, paired rollbacks — and the run must
  still aggregate bitwise exactly;
* ``--observe``    with no argument, drive the canonical mid-training
  interference scenario through the chaos runner with the observe
  watchdog armed and lint the verdict log's causal chain (evidence
  windows, verdict → re-probe → re-synthesis tracing, targeted probing,
  hysteresis discipline) plus its detection quality against the fault
  plan's ground truth; with a path argument, lint that exported observe
  JSONL log instead.

Exits non-zero when any pass reports a violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.verify_strategy import Violation


def _report(pass_name: str, violations: List[Violation]) -> bool:
    if violations:
        print(f"FAIL {pass_name}: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return False
    print(f"ok   {pass_name}")
    return True


def run_source_pass() -> List[Violation]:
    """Lint the repro source tree."""
    from repro.analysis.lint_source import lint_source

    return lint_source()


def run_strategy_pass(tensor_bytes: float = 8 * 1024 * 1024) -> List[Violation]:
    """Plan and statically verify strategies across backends and topologies.

    Covers the Fig. 11–13 benchmark families: every registered backend on
    single- and multi-server, homogeneous and mixed-SKU clusters, for each
    primitive the backend supports (a backend declining a primitive with a
    ``SynthesisError`` is skipped, not a violation).
    """
    from repro.analysis.verify_strategy import verify_strategy
    from repro.baselines import available_backends  # noqa: F401 (registers backends)
    from repro.bench.harness import BenchEnvironment
    from repro.errors import SynthesisError
    from repro.hardware.presets import make_config
    from repro.synthesis.strategy import Primitive

    configs = [
        ("A100:(4,4)", make_config([4, 4])),
        ("A100:(4,4) V100:(4,4)", make_config([4, 4], [4, 4])),
        ("A100:(2,2) V100:(4,4)", make_config([2, 2], [4, 4])),
    ]
    primitives = [
        Primitive.REDUCE,
        Primitive.ALLREDUCE,
        Primitive.BROADCAST,
        Primitive.ALLTOALL,
    ]
    violations: List[Violation] = []
    planned = skipped = 0
    for label, specs in configs:
        for backend_name in available_backends():
            env = BenchEnvironment(specs, backend_name)
            env.backend.verify = False  # this pass IS the verification
            for primitive in primitives:
                try:
                    strategy = env.backend.plan(
                        primitive, tensor_bytes, env.ranks
                    )
                except SynthesisError:
                    skipped += 1
                    continue
                planned += 1
                for v in verify_strategy(strategy, env.topology):
                    violations.append(
                        Violation(
                            v.check,
                            f"{backend_name}/{primitive.value}/{label}/{v.subject}",
                            v.detail,
                        )
                    )
    print(
        f"     strategies: verified {planned} planned strategies "
        f"({skipped} unsupported combinations skipped)"
    )
    return violations


def run_trace_pass() -> List[Violation]:
    """Execute one recorded AllReduce and lint the network trace."""
    import numpy as np

    from repro.analysis.lint_trace import lint_trace
    from repro.bench.harness import BenchEnvironment
    from repro.hardware.presets import make_config
    from repro.simulation.records import TraceRecorder
    from repro.synthesis.strategy import Primitive

    env = BenchEnvironment(make_config([4, 4]), "adapcc")
    env.backend.verify = False
    recorder = TraceRecorder()
    env.cluster.network.attach_recorder(recorder)
    inputs = {rank: np.full(1024, float(rank + 1)) for rank in env.ranks}
    strategy = env.backend.plan(Primitive.ALLREDUCE, 4 * 1024 * 1024, env.ranks)
    env.backend.run(strategy, inputs, byte_scale=4 * 1024 * 1024 / (1024 * 8.0))
    print(f"     traces: linted {len(recorder.records)} trace records")
    return lint_trace(recorder.records)


def run_chaos_pass(seed: int = 23) -> List[Violation]:
    """Replay one seeded fault plan with a recorder attached and lint it."""
    from repro.analysis.lint_chaos import lint_chaos
    from repro.chaos import ChaosRunner, FaultPlan
    from repro.hardware.presets import make_homo_cluster
    from repro.simulation.records import TraceRecorder

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.generate(
        seed=seed,
        world=8,
        iterations=3,
        straggler_rate=0.4,
        crash_rate=0.3,
        link_fault_rate=0.6,
        num_instances=2,
    )
    recorder = TraceRecorder()
    report = ChaosRunner(specs, plan, length=512, recorder=recorder).run()
    print(
        f"     chaos: replayed seed {seed} — {len(plan.stragglers)} stragglers, "
        f"{len(plan.crashes)} crashes, {len(plan.link_faults)} link faults; "
        f"linted {len(recorder.records)} trace records"
    )
    violations = lint_chaos(recorder.records)
    if not report.all_exact:
        violations.append(
            Violation(
                "chaos-exactness",
                f"seed{seed}",
                "a chaos iteration's AllReduce was not bitwise exact",
            )
        )
    return violations


def run_recovery_pass(seed: int = 29) -> List[Violation]:
    """Crash the coordinator (both phases), partition, then lint the journal."""
    from repro.analysis.lint_recovery import lint_recovery
    from repro.chaos import (
        ChaosRunner,
        CoordinatorCrashFault,
        FaultPlan,
        PartitionFault,
    )
    from repro.hardware.presets import make_homo_cluster

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan(
        seed=seed,
        iterations=5,
        coordinator_crashes=(
            CoordinatorCrashFault(1, "decide"),
            CoordinatorCrashFault(3, "transition"),
        ),
        partitions=(PartitionFault((0,), 2, 4),),
    )
    runner = ChaosRunner(specs, plan, length=512)
    report = runner.run()
    log = runner.control_plane.log
    print(
        f"     recovery: seed {seed} — {report.elections} elections, "
        f"{report.fenced_messages} fenced messages, {report.rollbacks} "
        f"rollback(s), {report.replayed_records} replayed records; "
        f"linted {len(log)} journal records"
    )
    violations = lint_recovery(log)
    if not report.all_exact:
        violations.append(
            Violation(
                "recovery-exactness",
                f"seed{seed}",
                "a coordinator-crash iteration's AllReduce was not bitwise exact",
            )
        )
    if report.elections < 2 or report.rollbacks < 1:
        violations.append(
            Violation(
                "recovery-coverage",
                f"seed{seed}",
                "the recovery scenario did not exercise both failover phases",
            )
        )
    return violations


def run_telemetry_pass(target=None) -> List[Violation]:
    """Lint exported telemetry — a given file, or a fresh self-check run.

    With ``target`` a path, lint that file (JSONL run or Chrome trace,
    detected by content). With ``target`` true-ish-but-not-a-path (the
    bare ``--telemetry`` flag), install a fresh enabled hub, run one
    adaptive AllReduce with a straggler so every layer emits, and lint
    both export formats in memory; the previous hub is restored after.
    """
    from repro.analysis.lint_telemetry import (
        lint_chrome_trace,
        lint_telemetry_file,
        lint_telemetry_run,
    )

    if isinstance(target, str):
        violations = lint_telemetry_file(target)
        print(f"     telemetry: linted {target}")
        return violations

    import numpy as np

    from repro.adapcc import AdapCCSession
    from repro.hardware.presets import make_config
    from repro.telemetry.core import TelemetryHub, hub, set_hub
    from repro.telemetry.export import parse_jsonl, to_chrome_trace, to_jsonl

    previous = hub()
    fresh = TelemetryHub(enabled=True)
    set_hub(fresh)
    try:
        session = AdapCCSession(make_config([2, 2], [2, 2]))
        session.init()
        session.setup()
        tensors = {rank: np.full(256, float(rank + 1)) for rank in range(4)}
        ready = {0: 0.0, 1: 0.0, 2: 0.0, 3: 0.5}
        session.allreduce(tensors, ready_times=ready)
        jsonl = to_jsonl(fresh)
        chrome = to_chrome_trace(fresh)
    finally:
        set_hub(previous)
    violations = lint_telemetry_run(parse_jsonl(jsonl))
    violations.extend(lint_chrome_trace(chrome))
    print(
        f"     telemetry: self-check exported {len(fresh.tracer.spans)} spans, "
        f"{len(fresh.tracer.events)} events; linted JSONL + Chrome forms"
    )
    return violations


def run_observe_pass(target=None, seed: int = 11) -> List[Violation]:
    """Lint an observe log — a given file, or a fresh closed-loop run.

    With ``target`` a path, lint that exported observe JSONL file. With
    the bare ``--observe`` flag, install a fresh enabled telemetry hub,
    replay the canonical interference fault plan through the chaos runner
    with the watchdog armed, and check both the log's causal chain and
    its detection quality (the injected fault must be detected, and the
    loop must actually have re-probed and re-synthesized).
    """
    from repro.analysis.lint_observe import lint_observe_file, lint_observe_records

    if isinstance(target, str):
        violations = lint_observe_file(target)
        print(f"     observe: linted {target}")
        return violations

    from repro.chaos import ChaosRunner, FaultPlan
    from repro.hardware.presets import make_homo_cluster
    from repro.observe import ObserveConfig, evaluate_detection
    from repro.telemetry.core import TelemetryHub, hub, set_hub

    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.interference(seed=seed, iterations=24)
    previous = hub()
    set_hub(TelemetryHub(enabled=True))
    try:
        runner = ChaosRunner(
            specs, plan, length=512, byte_scale=200_000.0, observe=ObserveConfig()
        )
        report = runner.run()
    finally:
        set_hub(previous)
    watchdog = runner.watchdog
    quality = evaluate_detection(watchdog.log.verdicts, plan.ground_truth())
    print(
        f"     observe: seed {seed} — {watchdog.verdicts_raised} verdict(s), "
        f"{watchdog.reprobes_run} targeted re-probe(s), "
        f"{watchdog.resyntheses_triggered} re-synthesis(es); recall "
        f"{quality.recall:.2f}, precision {quality.precision:.2f}; "
        f"linted {len(watchdog.log)} log records"
    )
    violations = lint_observe_records(watchdog.log.records)
    if quality.recall < 1.0:
        violations.append(
            Violation(
                "observe-detection",
                f"seed{seed}",
                "the watchdog missed the injected interference fault",
            )
        )
    if quality.precision < 1.0:
        violations.append(
            Violation(
                "observe-detection",
                f"seed{seed}",
                f"{len(quality.false_positives)} verdict(s) match no injected fault",
            )
        )
    if watchdog.reprobes_run < 1 or watchdog.resyntheses_triggered < 1:
        violations.append(
            Violation(
                "observe-loop",
                f"seed{seed}",
                "the scenario did not close the loop (no re-probe or no "
                "re-synthesis)",
            )
        )
    if not report.all_exact:
        violations.append(
            Violation(
                "observe-exactness",
                f"seed{seed}",
                "an observed iteration's AllReduce was not bitwise exact",
            )
        )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis passes for the AdapCC reproduction.",
    )
    parser.add_argument("--source", action="store_true", help="run only the source lint")
    parser.add_argument(
        "--strategies", action="store_true", help="run only the strategy verifier"
    )
    parser.add_argument("--traces", action="store_true", help="run only the trace lint")
    parser.add_argument("--chaos", action="store_true", help="run only the chaos lint")
    parser.add_argument(
        "--recovery", action="store_true", help="run only the recovery-journal lint"
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="run only the telemetry lint; optionally against an exported "
        "JSONL run or Chrome trace file",
    )
    parser.add_argument(
        "--observe",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="run only the observe lint; optionally against an exported "
        "observe JSONL log",
    )
    args = parser.parse_args(argv)
    selected = [
        args.source,
        args.strategies,
        args.traces,
        args.chaos,
        args.recovery,
        args.telemetry is not False,
        args.observe is not False,
    ]
    run_all = not any(selected)

    ok = True
    if run_all or args.source:
        ok &= _report("source lint", run_source_pass())
    if run_all or args.strategies:
        ok &= _report("strategy verifier", run_strategy_pass())
    if run_all or args.traces:
        ok &= _report("trace lint", run_trace_pass())
    if run_all or args.chaos:
        ok &= _report("chaos lint", run_chaos_pass())
    if run_all or args.recovery:
        ok &= _report("recovery lint", run_recovery_pass())
    if run_all or args.telemetry is not False:
        target = args.telemetry if isinstance(args.telemetry, str) else None
        ok &= _report("telemetry lint", run_telemetry_pass(target))
    if run_all or args.observe is not False:
        target = args.observe if isinstance(args.observe, str) else None
        ok &= _report("observe lint", run_observe_pass(target))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
