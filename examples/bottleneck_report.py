"""Where did the time go? Critical-path attribution of a straggling run.

Replays a seeded straggler fault plan (rank 3 arrives 0.2 s late for five
iterations) with telemetry enabled, then feeds the exported spans through
:mod:`repro.critpath`: the chunk-level send spans are joined into an
execution DAG, the critical path is walked on sim-clock timings, and the
elapsed time is attributed to links, ranks, and pipeline stages — with the
pre-send straggler excess charged to the late rank via the ski-rental
ready-delay telemetry.

The attribution must name the injected culprit: ``top_rank`` is rank 3.

Run:  python examples/bottleneck_report.py

Writes ``bottleneck_report.jsonl`` (the run) and
``bottleneck_report.json`` (the attribution report; byte-identical across
same-seed runs). Inspect either by hand:

    python -m repro.critpath bottleneck_report.jsonl
    python -m repro.analysis --critpath bottleneck_report.json
"""

from repro.chaos import ChaosRunner, FaultPlan, StragglerFault
from repro.critpath import analyze_run, render_report, report_to_json
from repro.hardware import make_homo_cluster
from repro.telemetry import TelemetryHub, set_hub, write_jsonl
from repro.telemetry.export import parse_jsonl, to_jsonl


def main() -> None:
    print("== Critical-path attribution of a straggling AllReduce ==\n")
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan(
        seed=5,
        iterations=10,
        stragglers=tuple(
            StragglerFault(rank=3, iteration=i, delay_seconds=0.2)
            for i in range(3, 8)
        ),
    )
    print(
        f"plan (seed {plan.seed}): rank 3 late by 0.2 s in iterations 3-7, "
        f"{plan.iterations} iterations\n"
    )

    hub = TelemetryHub(enabled=True)
    previous = set_hub(hub)
    try:
        ChaosRunner(specs, plan, length=512, byte_scale=200_000.0).run()
    finally:
        set_hub(previous)

    run = parse_jsonl(to_jsonl(hub))
    report = analyze_run(run)
    print(render_report(report))

    write_jsonl(hub, "bottleneck_report.jsonl")
    with open("bottleneck_report.json", "w", encoding="utf-8") as handle:
        handle.write(report_to_json(report))
    print("\nwrote bottleneck_report.jsonl and bottleneck_report.json")

    top_rank = report["top_rank"]["name"] if report["top_rank"] else None
    assert top_rank == "rank3", f"expected rank3 as the bottleneck, got {top_rank}"
    print(f"attribution names the injected straggler: top_rank = {top_rank}")


if __name__ == "__main__":
    main()
