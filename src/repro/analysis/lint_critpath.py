"""Critpath-report lint: the bottleneck attribution, statically checked.

A critical-path report makes three structural promises (DESIGN.md §12):
the ``path`` tiles ``[start_seconds, end_seconds]`` contiguously with
non-negative segments, the segment durations sum back to the totals the
envelope claims, and the attribution tables are internally consistent —
shares derive from the seconds, and the top-1 culprit actually exists in
its table (with zero minimum slack for the top link: a true bottleneck
has no room to slip). This pass checks exactly those promises over a
report dict or its exported JSON file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.verify_strategy import Violation
from repro.critpath.engine import REPORT_KIND, REPORT_SCHEMA

#: Absolute slop for summed durations: each path boundary may slip by the
#: engine's per-span tolerance, so scale with a generous constant.
_SUM_TOL = 1e-6

#: Fields every report envelope must carry, with their types.
_ENVELOPE = {
    "kind": str,
    "schema": int,
    "clock": str,
    "mode": str,
    "span_count": int,
    "inferred_edges": int,
    "start_seconds": (int, float),
    "end_seconds": (int, float),
    "total_seconds": (int, float),
    "busy_seconds": (int, float),
    "wait_seconds": (int, float),
    "overlap_seconds": (int, float),
    "readiness_seconds": (int, float),
    "path": list,
    "links": dict,
    "ranks": dict,
    "stages": dict,
}

_MODES = ("dag", "inferred")


def lint_critpath_report(report: Dict[str, Any]) -> List[Violation]:
    """Check one critpath report dict; returns all violations found."""
    violations: List[Violation] = []

    for field, expected in _ENVELOPE.items():
        if field not in report:
            violations.append(
                Violation("critpath-schema", field, "missing report field")
            )
        elif not isinstance(report[field], expected) or isinstance(
            report[field], bool
        ):
            violations.append(
                Violation(
                    "critpath-schema",
                    field,
                    f"wrong type {type(report[field]).__name__}",
                )
            )
    if violations:
        return violations

    if report["kind"] != REPORT_KIND:
        violations.append(
            Violation("critpath-schema", "kind", f"unknown kind {report['kind']!r}")
        )
    if report["schema"] != REPORT_SCHEMA:
        violations.append(
            Violation(
                "critpath-schema",
                "schema",
                f"schema {report['schema']} != expected {REPORT_SCHEMA}",
            )
        )
    if report["mode"] not in _MODES:
        violations.append(
            Violation("critpath-schema", "mode", f"unknown mode {report['mode']!r}")
        )

    start = report["start_seconds"]
    end = report["end_seconds"]
    path = report["path"]
    if end < start:
        violations.append(
            Violation("critpath-path", "window", f"end {end} precedes start {start}")
        )
    if not path:
        if report["span_count"] > 0:
            violations.append(
                Violation(
                    "critpath-path",
                    "path",
                    f"{report['span_count']} span(s) but an empty path",
                )
            )
        return violations

    # Contiguity: segments tile [start, end] in order, each non-negative.
    cursor = start
    busy = wait = 0.0
    for index, segment in enumerate(path):
        kind = segment.get("kind")
        if kind not in ("wait", "span"):
            violations.append(
                Violation(
                    "critpath-path", f"segment{index}", f"unknown kind {kind!r}"
                )
            )
            continue
        s, e = segment.get("start"), segment.get("end")
        seconds = segment.get("seconds")
        if s is None or e is None or seconds is None:
            violations.append(
                Violation(
                    "critpath-path", f"segment{index}", "segment missing timestamps"
                )
            )
            continue
        if abs(s - cursor) > _SUM_TOL:
            violations.append(
                Violation(
                    "critpath-path",
                    f"segment{index}",
                    f"starts at {s}, previous segment ended at {cursor}",
                )
            )
        if e < s - _SUM_TOL or seconds < -_SUM_TOL:
            violations.append(
                Violation(
                    "critpath-path", f"segment{index}", "negative segment duration"
                )
            )
        if kind == "wait":
            wait += seconds
        else:
            busy += seconds
        cursor = e
    if abs(cursor - end) > _SUM_TOL:
        violations.append(
            Violation(
                "critpath-path",
                "path",
                f"path ends at {cursor}, window ends at {end}",
            )
        )

    # Durations must sum back to the envelope totals.
    for name, computed, claimed in (
        ("busy_seconds", busy, report["busy_seconds"]),
        ("wait_seconds", wait, report["wait_seconds"]),
        ("total_seconds", end - start, report["total_seconds"]),
        ("tiling", busy + wait, report["total_seconds"]),
    ):
        if abs(computed - claimed) > _SUM_TOL * max(1, len(path)):
            violations.append(
                Violation(
                    "critpath-sums",
                    name,
                    f"path sums to {computed}, report claims {claimed}",
                )
            )

    # Attribution tables: shares derive from seconds; top culprits exist.
    total = report["total_seconds"]
    for table_name in ("links", "ranks"):
        for name, entry in report[table_name].items():
            expected_share = (
                (entry.get("critical_seconds", 0.0) + entry.get("wait_seconds", 0.0))
                / total
                if total > 0
                else 0.0
            )
            if abs(entry.get("share", 0.0) - expected_share) > _SUM_TOL:
                violations.append(
                    Violation(
                        "critpath-sums",
                        f"{table_name}:{name}",
                        "share does not match critical + wait seconds",
                    )
                )
    for top_name, table_name in (("top_link", "links"), ("top_rank", "ranks")):
        top = report.get(top_name)
        if top is None:
            if report[table_name]:
                violations.append(
                    Violation(
                        "critpath-attribution",
                        top_name,
                        f"no top entry despite a non-empty {table_name} table",
                    )
                )
            continue
        if top.get("name") not in report[table_name]:
            violations.append(
                Violation(
                    "critpath-attribution",
                    top_name,
                    f"{top.get('name')!r} not present in {table_name}",
                )
            )
    top_link = report.get("top_link")
    if top_link and top_link.get("name") in report["links"]:
        entry = report["links"][top_link["name"]]
        min_slack = entry.get("min_slack_seconds")
        on_path = entry.get("critical_seconds", 0.0) + entry.get("wait_seconds", 0.0)
        if on_path > _SUM_TOL and (min_slack is None or min_slack > _SUM_TOL):
            violations.append(
                Violation(
                    "critpath-attribution",
                    "top_link",
                    f"{top_link['name']} claims the critical path but its "
                    f"minimum slack is {min_slack}",
                )
            )
    return violations


def lint_critpath_file(path: str) -> List[Violation]:
    """Lint an exported critpath JSON report file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        return [Violation("critpath-io", path, str(exc))]
    except json.JSONDecodeError as exc:
        return [Violation("critpath-schema", path, f"invalid JSON: {exc}")]
    if not isinstance(report, dict):
        return [Violation("critpath-schema", path, "expected a JSON object")]
    return lint_critpath_report(report)
