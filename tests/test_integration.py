"""Full-stack integration tests: detector → profiler → synthesizer →
communicator → relay control on the paper's complete testbed."""

import numpy as np
import pytest

from repro import AdapCCSession, Primitive
from repro.baselines import make_backend
from repro.bench.harness import BenchEnvironment
from repro.hardware import MB, make_paper_testbed
from repro.hardware.presets import a100_server, fragmented_server, v100_server
from repro.network.shaping import TraceShaper
from repro.network.traces import CloudTrace, TracePoint
from repro.training import GPT2, Trainer, TrainerConfig


class TestPaperTestbedEndToEnd:
    """The full six-server testbed (4x4xA100 + 2x4xV100, 24 GPUs)."""

    def test_session_lifecycle_and_allreduce(self):
        session = AdapCCSession(make_paper_testbed()).init()
        session.setup()
        rng = np.random.default_rng(1)
        tensors = {rank: rng.integers(0, 30, 1024).astype(np.float64) for rank in range(24)}
        result = session.allreduce(tensors, byte_scale=64 * MB / (1024 * 8))
        expected = sum(tensors.values())
        for rank in range(24):
            np.testing.assert_array_equal(result.outputs[rank], expected)
        assert 0 < result.duration < 1.0

    def test_detection_matches_testbed_ground_truth(self):
        session = AdapCCSession(make_paper_testbed()).init()
        report = session.detection
        assert len(report.instances) == 6
        for instance_id, info in report.instances.items():
            # Every testbed server has a full 4-GPU NVLink clique.
            assert len(info.nvlink_pairs) == 6

    def test_profiler_distinguishes_nic_speeds(self):
        session = AdapCCSession(make_paper_testbed()).init()
        from repro.topology.graph import nic_node

        topo = session.topology
        a100_edge = topo.edge(nic_node(0), nic_node(1)).effective.bandwidth
        v100_edge = topo.edge(nic_node(4), nic_node(5)).effective.bandwidth
        assert a100_edge > 1.3 * v100_edge

    def test_strategy_roots_only_on_a100_servers(self):
        session = AdapCCSession(make_paper_testbed()).init()
        tensors = {rank: np.ones(512) for rank in range(24)}
        session.allreduce(tensors)
        strategy = next(iter(session._strategies.values()))
        for sc in strategy.subcollectives:
            assert sc.root.index < 16  # ranks 16-23 are the V100 servers

    def test_training_loop_with_relay_and_profiling(self):
        env = BenchEnvironment(make_paper_testbed(), "adapcc")
        trainer = Trainer(
            env.backend,
            GPT2,
            TrainerConfig(iterations=4, profile_period=2, seed=5),
        )
        report = trainer.run()
        assert report.iterations == 4
        assert report.reconstructions == 1
        assert report.throughput > 0


class TestMixedTopologies:
    def test_fragmented_server_falls_back_to_pcie_paths(self):
        """A server without NVLinks still completes collectives correctly
        (the Sec. II-A motivation case)."""
        specs = [a100_server(), fragmented_server()]
        session = AdapCCSession(specs).init()
        tensors = {rank: np.full(256, float(rank)) for rank in range(8)}
        result = session.allreduce(tensors)
        np.testing.assert_array_equal(result.outputs[7], sum(tensors.values()))

    def test_partial_nvlink_server(self):
        specs = [a100_server(nvlink_pairs=frozenset({(0, 1), (1, 2), (2, 3)}))]
        session = AdapCCSession(specs).init()
        assert session.detection.instances[0].nvlink_pairs == frozenset(
            {(0, 1), (1, 2), (2, 3)}
        )
        tensors = {rank: np.ones(128) for rank in range(4)}
        result = session.allreduce(tensors)
        np.testing.assert_array_equal(result.outputs[0], np.full(128, 4.0))

    def test_single_gpu_servers(self):
        specs = [a100_server(num_gpus=1, name=f"s{i}") for i in range(3)]
        session = AdapCCSession(specs).init()
        tensors = {rank: np.full(64, rank + 1.0) for rank in range(3)}
        result = session.allreduce(tensors)
        np.testing.assert_array_equal(result.outputs[2], np.full(64, 6.0))


class TestAdaptivityUnderShaping:
    def test_reprofiling_changes_strategy_after_degradation(self):
        """The Fig. 2 loop end to end: shape a NIC, re-profile, and the
        synthesizer must route around it (and predict a different time)."""
        session = AdapCCSession(
            [a100_server(name=f"a{i}") for i in range(4)]
        ).init()
        tensors = {rank: np.ones(512) for rank in range(16)}
        session.allreduce(tensors, byte_scale=64 * MB / (512 * 8))
        before = next(iter(session._strategies.values()))

        session.cluster.set_nic_bandwidth(1, 1.5e9)  # 100 Gbps -> 12 Gbps
        session.reprofile_now()
        session.allreduce(tensors, byte_scale=64 * MB / (512 * 8))
        after = next(iter(session._strategies.values()))

        # Instance 1's ranks (4-7) must no longer host any sub-collective
        # root after the degradation is observed.
        after_roots = {sc.root.index for sc in after.subcollectives}
        assert not after_roots & {4, 5, 6, 7}
        assert after.predicted_time > before.predicted_time

    def test_trace_shaped_training_completes(self):
        env = BenchEnvironment(make_paper_testbed(), "adapcc")
        trace = CloudTrace(
            [TracePoint(0.0, 1.0, 1.0), TracePoint(5.0, 0.5, 1.1), TracePoint(10.0, 0.9, 1.0)]
        )
        shaper = TraceShaper(env.cluster, trace, interval=0.5)
        shaper.start()
        trainer = Trainer(env.backend, GPT2, TrainerConfig(iterations=3, seed=9))
        report = trainer.run()
        shaper.stop()
        assert report.iterations == 3


class TestBackendParityOnPayloads:
    """All four backends must produce identical collective results."""

    @pytest.mark.parametrize("backend_name", ["adapcc", "nccl", "msccl", "blink"])
    def test_allreduce_payload_identical(self, backend_name):
        env = BenchEnvironment(
            [a100_server(name="x"), v100_server(name="y")], backend_name
        )
        rng = np.random.default_rng(3)
        tensors = {rank: rng.integers(0, 11, 640).astype(np.float64) for rank in env.ranks}
        result = env.backend.plan_and_run(Primitive.ALLREDUCE, tensors, env.ranks)
        expected = sum(tensors.values())
        for rank in env.ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)
