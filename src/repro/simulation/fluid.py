"""Fluid-flow network model with max-min fair bandwidth sharing.

Data movement in the simulated cluster is modelled at flow granularity: a
*transfer* pushes ``size`` bytes across a sequence of links, first paying
the path latency (the α part of the α–β model), then streaming at a rate
determined by progressive-filling max-min fairness across all concurrent
transfers, subject to:

* each link's capacity (shared by every transfer crossing it), and
* each link's optional *per-stream cap* — the maximum rate one transfer can
  achieve on that link regardless of idle capacity. This models the paper's
  observation that a single TCP channel peaks around 20 Gbps on a 100 Gbps
  NIC; launching parallel sub-collectives (more streams) recovers the
  capacity, which is exactly what AdapCC's M>1 does.

Rates are recomputed whenever the set of active transfers or a link
capacity changes; between recomputations rates are constant, so transfer
completions are exact (no time-stepping error).

Recomputation is *incremental* (DESIGN.md §11): the network maintains the
connected components of the transfer↔link sharing graph, and a flow
start/end/cancel or capacity change re-solves only the component it
touches. Untouched components keep their frozen rates — which is safe
bit-for-bit, not just mathematically, because the per-component solver is
deterministic in its inputs, so a re-solve of an unchanged component
would reproduce the frozen value exactly. ``incremental=False`` (or
``REPRO_FLUID_INCREMENTAL=0``) re-solves every component from scratch at
every recompute point; the differential suite runs both modes against
each other and against :func:`solve_rates_reference`, the original
joint progressive-filling solve over all active transfers.
"""

from __future__ import annotations

import itertools
import math
import operator
import os

import numpy as np
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.engine import Event, Simulator

_EPS = 1e-12
#: C-level sort key for the canonical (activation-order) member walks.
_BY_SEQ = operator.attrgetter("_seq")
#: Remaining-bytes tolerance under which a transfer counts as complete.
_DONE_EPS = 1e-6


class FluidLink:
    """A directed link with capacity, per-stream cap, and latency.

    Capacities are in bytes/second; latency in seconds. ``per_stream_cap``
    limits the rate of any single transfer on the link (``inf`` = no cap).
    """

    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: float = 0.0,
        per_stream_cap: float = float("inf"),
    ):
        if capacity < 0:
            raise SimulationError(f"link {name}: negative capacity")
        if latency < 0:
            raise SimulationError(f"link {name}: negative latency")
        if per_stream_cap <= 0:
            raise SimulationError(f"link {name}: per-stream cap must be positive")
        self.id = next(FluidLink._ids)
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.per_stream_cap = per_stream_cap
        #: Cumulative bytes that have crossed this link (updated lazily by
        #: the network at recompute points).
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FluidLink {self.name} cap={self.capacity:.3g}B/s lat={self.latency:.3g}s>"


class Transfer:
    """An in-flight data movement across a path of links."""

    _ids = itertools.count()

    def __init__(self, links: Sequence[FluidLink], size: float, event: Event, tag: str = ""):
        self.id = next(Transfer._ids)
        self.links = list(links)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.event = event
        self.tag = tag
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Multiplicity of each link in the path (a path may cross a shared
        #: bus twice; it then consumes that bus's capacity twice).
        self.link_multiplicity: Dict[FluidLink, int] = {}
        for link in self.links:
            self.link_multiplicity[link] = self.link_multiplicity.get(link, 0) + 1
        #: Activation sequence number (canonical intra-component solve
        #: order) and owning component, managed by the network.
        self._seq = -1
        self._comp: Optional[_Component] = None
        cap = math.inf
        for link, mult in self.link_multiplicity.items():
            stream_cap = link.per_stream_cap / mult
            if stream_cap < cap:
                cap = stream_cap
        self._min_stream_cap = cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transfer #{self.id} {self.tag or 'untagged'} "
            f"{self.remaining:.0f}/{self.size:.0f}B @{self.rate:.3g}B/s>"
        )


class _Component:
    """One connected component of the transfer↔link sharing graph.

    ``members`` and ``links`` are insertion-ordered dicts used as ordered
    sets, so every walk over them is deterministic. ``needs_split`` marks
    a component that lost a member and may therefore have disconnected;
    it is re-partitioned lazily at the next solve.
    """

    __slots__ = ("members", "links", "needs_split")

    def __init__(self) -> None:
        self.members: Dict[Transfer, None] = {}
        self.links: Dict[int, None] = {}
        self.needs_split = False


def _progressive_fill(transfers: Sequence[Transfer]) -> np.ndarray:
    """Progressive-filling max-min fair rates for ``transfers``.

    The vectorized kernel: the transfer/link incidence is flattened into
    numpy arrays once, and each filling round is O(transfers + links +
    incidences) in C. Pure in ``transfers`` — rates are returned, not
    written back — and deterministic: identical inputs produce identical
    bits, which is what lets the incremental solver freeze the rates of
    untouched components.
    """
    n = len(transfers)
    if n == 0:
        return np.zeros(0)
    caps = np.fromiter((t._min_stream_cap for t in transfers), dtype=float, count=n)
    links: List[FluidLink] = []
    link_index: Dict[int, int] = {}
    t_idx: List[int] = []
    l_idx: List[int] = []
    mults: List[float] = []
    for ti, t in enumerate(transfers):
        for link, mult in t.link_multiplicity.items():
            li = link_index.get(link.id)
            if li is None:
                li = link_index[link.id] = len(links)
                links.append(link)
            t_idx.append(ti)
            l_idx.append(li)
            mults.append(mult)
    m = len(links)
    ti_arr = np.array(t_idx, dtype=np.intp)
    li_arr = np.array(l_idx, dtype=np.intp)
    mult_arr = np.array(mults)
    residual = np.array([link.capacity for link in links])
    sat_floor = _EPS * np.maximum(1.0, residual)
    rates = np.zeros(n)
    unfrozen = np.ones(n, dtype=bool)

    while True:
        active_inc = unfrozen[ti_arr]
        users = np.bincount(
            li_arr[active_inc], weights=mult_arr[active_inc], minlength=m
        )
        used = users > _EPS
        delta = math.inf
        if used.any():
            delta = float(np.min(residual[used] / users[used]))
        headroom = caps[unfrozen] - rates[unfrozen]
        if headroom.size:
            delta = min(delta, float(headroom.min()))
        if delta < 0:
            delta = 0.0
        if delta > _EPS:
            rates[unfrozen] += delta
            residual -= delta * users

        saturated = residual <= sat_floor
        on_saturated = np.zeros(n, dtype=bool)
        hit = active_inc & saturated[li_arr]
        on_saturated[ti_arr[hit]] = True
        newly = unfrozen & (on_saturated | (rates >= caps - _EPS))
        if not newly.any():
            if delta <= _EPS:
                break  # nothing can move (e.g. zero-capacity link)
            continue
        unfrozen &= ~newly
        if not unfrozen.any():
            break
    return rates


def solve_rates_reference(transfers: Sequence[Transfer]) -> List[float]:
    """From-scratch joint max-min solve over ``transfers`` (reference).

    The original (pre-incremental) semantics: one progressive-filling run
    over *all* transfers jointly, components interleaved. The differential
    suite compares every incremental recompute against this to 1e-9 —
    per-component filling takes different float paths, so agreement is
    near-exact rather than bitwise.
    """
    return [float(r) for r in _progressive_fill(list(transfers))]


class FluidNetwork:
    """Tracks active transfers and allocates max-min fair rates.

    One instance serves a whole simulated cluster. All state changes go
    through :meth:`transfer`, :meth:`cancel` and :meth:`set_capacity`, which
    keep the completion timer consistent.
    """

    def __init__(self, sim: Simulator, incremental: Optional[bool] = None):
        self.sim = sim
        self._active: List[Transfer] = []
        self._last_update = 0.0
        self._timer_generation = 0
        self._flush_scheduled = False
        self.completed_transfers = 0
        if incremental is None:
            incremental = os.environ.get("REPRO_FLUID_INCREMENTAL", "1") not in (
                "0",
                "false",
                "off",
            )
        #: Whether recomputes re-solve only dirty components (the default)
        #: or every component from scratch (the differential reference).
        self.incremental = incremental
        #: Monotonic activation counter: the canonical order of transfers
        #: inside a component solve (== their order in ``_active``).
        self._activation_count = 0
        #: link id -> active transfers crossing it, insertion-ordered.
        self._link_users: Dict[int, Dict[Transfer, None]] = {}
        #: link id -> owning component, exact at all times.
        self._link_comp: Dict[int, _Component] = {}
        #: Components needing a re-solve, insertion-ordered (used as set).
        self._dirty: Dict[_Component, None] = {}
        #: component -> predicted absolute time of its earliest member
        #: completion (``inf`` when every member is blocked). An entry is
        #: recomputed only when the component's membership changes (the
        #: entry is popped) or some member's rate changes bitwise — an
        #: unchanged rate keeps the predicted absolute finish exact — so
        #: the cache evolves identically in incremental and from-scratch
        #: modes and the completion horizon is a min over components
        #: instead of a scan over every active transfer.
        self._comp_finish: Dict[_Component, float] = {}
        #: Whether some transfer's ``remaining`` may have crossed the
        #: completion threshold since the last finished-scan. Set when
        #: settling advances time (the only way remaining decreases) and
        #: by the force-complete path; lets activation-only flushes skip
        #: the O(active) completion scan entirely.
        self._scan_pending = False
        #: Attached observers implementing the recorder protocol —
        #: ``record(time, kind, subject, **payload)``, usually
        #: :class:`repro.simulation.records.TraceRecorder`. The network
        #: emits ``net-flow-start``/``net-flow-end``/``net-flow-cancel``
        #: events to every recorder, and a ``net-rates`` allocation
        #: snapshot per recompute instant to recorders that want it
        #: (``wants_rates`` attribute, default true), which
        #: :mod:`repro.analysis.lint_trace` checks for capacity and
        #: fairness invariants. Use :meth:`attach_recorder` /
        #: :meth:`detach_recorder`; the ``recorder`` property remains as a
        #: single-recorder compatibility view.
        self._recorders: List = []
        self._wants_rates = False
        # Telemetry reuses the same protocol rather than adding a second
        # hook: when the process-wide hub is enabled, every network traces
        # its flows as per-link spans (see repro.telemetry.bridge).
        from repro.telemetry.bridge import network_recorder

        telemetry = network_recorder()
        if telemetry is not None:
            self.attach_recorder(telemetry)

    # -- recorder attachment -------------------------------------------------

    def attach_recorder(self, recorder) -> None:
        """Attach one recorder-protocol observer (idempotent)."""
        if recorder is None:
            raise SimulationError("attach_recorder(None); use detach_recorder instead")
        if recorder not in self._recorders:
            self._recorders.append(recorder)
        self._wants_rates = any(
            getattr(rec, "wants_rates", True) for rec in self._recorders
        )

    def detach_recorder(self, recorder) -> None:
        """Detach a previously attached recorder (missing is a no-op)."""
        if recorder in self._recorders:
            self._recorders.remove(recorder)
        self._wants_rates = any(
            getattr(rec, "wants_rates", True) for rec in self._recorders
        )

    @property
    def recorder(self):
        """Compatibility view: the first attached *lint* recorder, if any.

        Telemetry recorders (``wants_rates = False``) are skipped so code
        that reads ``network.recorder`` sees what it attached, not the
        hub's bridge.
        """
        for rec in self._recorders:
            if getattr(rec, "wants_rates", True):
                return rec
        return None

    @recorder.setter
    def recorder(self, recorder) -> None:
        """Replace all attached lint recorders (``None`` detaches them).

        Telemetry attachments survive: assigning a recorder for one run
        must not silently disable tracing, and vice versa.
        """
        self._recorders = [
            rec for rec in self._recorders if not getattr(rec, "wants_rates", True)
        ]
        if recorder is not None:
            self._recorders.append(recorder)
        self._wants_rates = any(
            getattr(rec, "wants_rates", True) for rec in self._recorders
        )

    def _emit(self, kind: str, subject: str, **payload) -> None:
        for rec in self._recorders:
            rec.record(self.sim.now, kind, subject, **payload)

    # -- public API ----------------------------------------------------------

    def transfer(
        self,
        links: Sequence[FluidLink],
        size: float,
        extra_latency: float = 0.0,
        tag: str = "",
    ) -> Event:
        """Move ``size`` bytes across ``links``; returns the completion event.

        The transfer first pays ``sum(link.latency) + extra_latency``
        seconds of latency, then joins the fluid phase. The event's value is
        the :class:`Transfer` record (with start/finish times filled in).
        """
        if size < 0:
            raise SimulationError("transfer size must be non-negative")
        event = Event(self.sim)
        t = Transfer(links, size, event, tag=tag)
        if not t.links:
            # Pure-latency movement (e.g. an intra-GPU copy modelled as free):
            # complete after the latency with no fluid phase.
            def _complete(_evt: Event, transfer: Transfer = t) -> None:
                transfer.start_time = transfer.finish_time = self.sim.now
                transfer.remaining = 0.0
                self.completed_transfers += 1
                transfer.event.succeed(transfer)

            self.sim.timeout(max(0.0, extra_latency)).add_callback(_complete)
            return event
        latency = sum(link.latency for link in t.link_multiplicity) + extra_latency
        if latency > 0:

            def _after_latency(_evt: Event, transfer: Transfer = t) -> None:
                self._activate(transfer)

            self.sim.timeout(latency).add_callback(_after_latency)
        else:
            self._activate(t)
        return event

    def cancel(self, transfer: Transfer, reason: Optional[BaseException] = None) -> None:
        """Abort an active transfer, failing its completion event."""
        if transfer not in self._active:
            raise SimulationError("cancel() of a transfer that is not active")
        self._settle_progress()
        self._active.remove(transfer)
        self._component_remove(transfer)
        if self._recorders:
            self._emit(
                "net-flow-cancel",
                f"flow{transfer.id}",
                flow=transfer.id,
                tag=transfer.tag,
                remaining=transfer.remaining,
            )
        transfer.event.fail(reason or SimulationError(f"transfer {transfer.id} cancelled"))
        self._recompute()

    def set_capacity(self, link: FluidLink, capacity: float) -> None:
        """Change a link's capacity mid-simulation (tc-style shaping)."""
        if capacity < 0:
            raise SimulationError("capacity must be non-negative")
        self._settle_progress()
        link.capacity = capacity
        comp = self._link_comp.get(link.id)
        if comp is not None:
            self._dirty[comp] = None
        self._recompute()

    @property
    def active_transfers(self) -> List[Transfer]:
        """Snapshot of in-flight transfers (fluid phase only)."""
        return list(self._active)

    def link_load(self, link: FluidLink) -> float:
        """Aggregate current rate on ``link`` in bytes/second."""
        return sum(
            t.rate * t.link_multiplicity[link] for t in self._active if link in t.link_multiplicity
        )

    # -- internals -----------------------------------------------------------

    def _activate(self, transfer: Transfer) -> None:
        self._settle_progress()
        transfer.start_time = self.sim.now
        if self._recorders:
            self._emit(
                "net-flow-start",
                f"flow{transfer.id}",
                flow=transfer.id,
                tag=transfer.tag,
                size=transfer.size,
            )
        if transfer.remaining <= _DONE_EPS:
            transfer.finish_time = self.sim.now
            self.completed_transfers += 1
            if self._recorders:
                self._emit(
                    "net-flow-end",
                    f"flow{transfer.id}",
                    flow=transfer.id,
                    tag=transfer.tag,
                    size=transfer.size,
                )
            transfer.event.succeed(transfer)
            self._recompute()
            return
        self._active.append(transfer)
        self._component_add(transfer)
        self._recompute()

    def _settle_progress(self) -> None:
        """Apply progress accrued since the last recompute point."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for t in self._active:
                moved = t.rate * dt
                t.remaining = max(0.0, t.remaining - moved)
                for link, mult in t.link_multiplicity.items():
                    link.bytes_carried += moved * mult
            self._scan_pending = True
        self._last_update = self.sim.now

    def _recompute(self) -> None:
        """Schedule a rate reassignment at the current instant.

        Many transfers start or finish at the same timestamp (chunk waves
        through a pipeline); recomputing max-min rates once per instant
        instead of once per event is a large constant-factor win. The
        actual work happens in :meth:`_flush`, scheduled URGENT so it runs
        before time advances.
        """
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        flush_event = Event(self.sim)
        flush_event._ok = True
        flush_event._value = None
        flush_event._triggered = True
        flush_event.callbacks.append(self._flush)
        from repro.simulation.engine import URGENT

        self.sim._schedule(flush_event, priority=URGENT)

    def _flush(self, _event: Event) -> None:
        """Reassign rates and (re)schedule the next completion."""
        self._flush_scheduled = False
        self._settle_progress()  # no-op for dt=0; needed if time advanced
        self._assign_rates()
        self._complete_finished()
        self._timer_generation += 1
        generation = self._timer_generation
        while True:
            horizon = self._next_horizon()
            if math.isinf(horizon):
                self._record_snapshot()
                return
            if horizon > 0.0 and self.sim.now + horizon > self.sim.now:
                break
            # The next completion is below the clock's floating-point
            # resolution at the current time: those transfers are
            # numerically done — force-complete them or the timer would
            # fire forever without advancing time. The cached horizon can
            # sit an ulp off (or clamp to zero against) the live values,
            # so take the exact minimum here (this path is rare) to
            # guarantee at least one transfer crosses the threshold and
            # the loop makes progress.
            exact = math.inf
            for t in self._active:
                if t.rate > _EPS:
                    headway = t.remaining / t.rate
                    if headway < exact:
                        exact = headway
            threshold = max(exact, 0.0) * (1 + 1e-9)
            for t in list(self._active):
                if t.rate > _EPS and t.remaining / t.rate <= threshold:
                    t.remaining = 0.0
            self._scan_pending = True
            self._assign_rates()
            self._complete_finished()

        def _on_timer(_evt: Event) -> None:
            if generation != self._timer_generation:
                return  # superseded by a later recompute
            self._settle_progress()
            self._recompute()

        self.sim.timeout(horizon).add_callback(_on_timer)
        self._record_snapshot()

    def _next_horizon(self) -> float:
        """Seconds until the earliest predicted completion (``inf`` if none).

        A min over the per-component finish cache — O(components), not
        O(active transfers). Cached predictions can sit an ulp off the
        live ``remaining / rate`` value (the prediction basis is the last
        recompute, not now); the force-complete path's relative slack
        absorbs that.
        """
        finish = min(self._comp_finish.values(), default=math.inf)
        if math.isinf(finish):
            return math.inf
        remaining_time = finish - self.sim.now
        return remaining_time if remaining_time > 0.0 else 0.0

    def _record_snapshot(self) -> None:
        """Emit one ``net-rates`` allocation snapshot.

        Built only when some attached recorder wants it (telemetry-only
        attachments skip the cost of flattening the incidence lists)."""
        if not self._wants_rates:
            return
        links: Dict[int, FluidLink] = {}
        flows = []
        for t in self._active:
            incidence = []
            for link, mult in t.link_multiplicity.items():
                links[link.id] = link
                incidence.append((link.id, mult))
            flows.append((t.id, t.tag, t.rate, t.remaining, tuple(sorted(incidence))))
        link_rows = [
            (link.id, link.name, link.capacity, link.per_stream_cap)
            for _lid, link in sorted(links.items())
        ]
        for rec in self._recorders:
            if getattr(rec, "wants_rates", True):
                rec.record(
                    self.sim.now, "net-rates", "network", flows=flows, links=link_rows
                )

    def _complete_finished(self) -> None:
        if not self._scan_pending:
            return
        self._scan_pending = False
        finished = [t for t in self._active if t.remaining <= _DONE_EPS]
        if not finished:
            return
        for t in finished:
            self._active.remove(t)
            self._component_remove(t)
            t.finish_time = self.sim.now
            self.completed_transfers += 1
            if self._recorders:
                self._emit(
                    "net-flow-end",
                    f"flow{t.id}",
                    flow=t.id,
                    tag=t.tag,
                    size=t.size,
                )
            t.event.succeed(t)
        self._assign_rates()

    # -- component tracking --------------------------------------------------

    def _component_add(self, t: Transfer) -> None:
        """Register an activated transfer, merging the components it joins.

        A new transfer connects the components of every link on its path
        into exactly one component (it touches all of them itself), so a
        merge here is always exact — only removals can split.
        """
        self._activation_count += 1
        t._seq = self._activation_count
        touched: Dict[int, _Component] = {}
        for link in t.link_multiplicity:
            self._link_users.setdefault(link.id, {})[t] = None
            comp = self._link_comp.get(link.id)
            if comp is not None:
                touched[id(comp)] = comp
        if touched:
            ordered = list(touched.values())
            target = max(ordered, key=lambda c: len(c.members) + len(c.links))
            for comp in ordered:
                if comp is target:
                    continue
                for member in comp.members:
                    member._comp = target
                    target.members[member] = None
                for lid in comp.links:
                    self._link_comp[lid] = target
                    target.links[lid] = None
                if comp.needs_split:
                    # An absorbed component with a pending split stays
                    # possibly-disconnected after the merge.
                    target.needs_split = True
                self._dirty.pop(comp, None)
                self._comp_finish.pop(comp, None)
        else:
            target = _Component()
        target.members[t] = None
        t._comp = target
        for link in t.link_multiplicity:
            target.links[link.id] = None
            self._link_comp[link.id] = target
        self._dirty[target] = None
        # Membership changed: the cached finish prediction must be rebuilt
        # at the next solve.
        self._comp_finish.pop(target, None)

    def _component_remove(self, t: Transfer) -> None:
        """Unregister a finished/cancelled transfer from its component."""
        comp = t._comp
        t._comp = None
        del comp.members[t]
        for link in t.link_multiplicity:
            users = self._link_users.get(link.id)
            if users is not None:
                users.pop(t, None)
                if not users:
                    del self._link_users[link.id]
                    self._link_comp.pop(link.id, None)
                    comp.links.pop(link.id, None)
        self._comp_finish.pop(comp, None)
        if comp.members:
            comp.needs_split = True
            self._dirty[comp] = None
        else:
            self._dirty.pop(comp, None)

    def _split_component(self, comp: _Component) -> List[_Component]:
        """Re-partition a possibly-disconnected component exactly.

        Walks the component's remaining transfer↔link adjacency from the
        lowest-sequence member outward; each reachable set becomes a fresh
        component. Deterministic: seeds are taken in activation order and
        adjacency dicts are insertion-ordered.
        """
        unvisited = dict.fromkeys(sorted(comp.members, key=_BY_SEQ))
        self._comp_finish.pop(comp, None)
        parts: List[_Component] = []
        while unvisited:
            seed = next(iter(unvisited))
            del unvisited[seed]
            part = _Component()
            stack = [seed]
            while stack:
                member = stack.pop()
                part.members[member] = None
                member._comp = part
                for link in member.link_multiplicity:
                    if link.id in part.links:
                        continue
                    part.links[link.id] = None
                    self._link_comp[link.id] = part
                    for other in self._link_users[link.id]:
                        if other in unvisited:
                            del unvisited[other]
                            stack.append(other)
            parts.append(part)
        return parts

    # -- rate assignment -----------------------------------------------------

    def _assign_rates(self) -> None:
        """Re-solve max-min fair rates where they may have changed.

        Incremental mode solves each *dirty* component with the
        progressive-filling kernel and leaves every other component's
        rates frozen; from-scratch mode re-partitions and re-solves all of
        them. Both produce identical bits (see the module docstring), and
        both match the joint :func:`solve_rates_reference` to float
        round-off, because a max-min allocation decomposes exactly across
        link-disjoint components.
        """
        if self.incremental:
            if not self._dirty:
                return
            dirty = list(self._dirty)
            self._dirty.clear()
        else:
            # From-scratch mode re-solves *every* component each time. A
            # clean component's re-solve reproduces its frozen rates
            # bit-for-bit, and component tracking (merges, splits, finish
            # cache pops) is shared with incremental mode, so the two
            # modes stay exactly equivalent.
            self._dirty.clear()
            dirty = []
            seen: Dict[int, None] = {}
            for t in self._active:
                comp = t._comp
                if id(comp) not in seen:
                    seen[id(comp)] = None
                    dirty.append(comp)
        for comp in dirty:
            if not comp.members:
                continue
            if comp.needs_split:
                comp.needs_split = False
                parts = self._split_component(comp)
            else:
                parts = [comp]
            for part in parts:
                self._solve_component(part, sorted(part.members, key=_BY_SEQ))

    def _solve_component(
        self, comp: _Component, transfers: List[Transfer]
    ) -> None:
        """Assign kernel rates to one component's transfers.

        Single-transfer components — the bulk of chunk-pipeline traffic —
        skip the kernel: with one flow the filling loop collapses to a
        single round whose delta is the minimum of the per-stream and
        capacity bounds, reproduced here bit-for-bit without numpy.

        The component's cached finish prediction is rebuilt only when it
        was invalidated by a membership change or some member's rate
        actually changed; both triggers fire identically in incremental
        and from-scratch modes, so the cache (and therefore every timer
        horizon) stays bit-equal across modes.
        """
        changed = False
        if len(transfers) == 1:
            t = transfers[0]
            rate = t._min_stream_cap
            for link, mult in t.link_multiplicity.items():
                link_share = link.capacity / mult
                if link_share < rate:
                    rate = link_share
            if rate <= _EPS:
                rate = 0.0
            if rate != t.rate:
                t.rate = rate
                changed = True
        else:
            rates = _progressive_fill(transfers).tolist()
            for t, rate in zip(transfers, rates):
                if rate != t.rate:
                    t.rate = rate
                    changed = True
        if changed or comp not in self._comp_finish:
            now = self.sim.now
            finish = math.inf
            for t in transfers:
                if t.rate > _EPS:
                    predicted = now + t.remaining / t.rate
                    if predicted < finish:
                        finish = predicted
            self._comp_finish[comp] = finish
