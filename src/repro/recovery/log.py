"""Write-ahead event log and checkpoints for the recovery control plane.

The acting coordinator journals every externally visible step — ready-set
reports, ski-rental decisions, membership changes, and the prepare/commit/
rollback of strategy transitions — as :class:`LogRecord` entries before
acting on them. Records are deterministic plain values (the payloads are
built from sorted tuples, never dict iteration order), so two same-seed
chaos replays produce identical journals and the conformance suite can
compare them byte for byte via :meth:`EventLog.signature`.

Every ``checkpoint_interval`` records the log folds the coordinator's
durable state into a :class:`Checkpoint`; a newly elected coordinator
restores the latest checkpoint and replays only the suffix
(:meth:`EventLog.replay`), which is what keeps takeover cost bounded as a
run grows. Replay rebuilds a :class:`ReplayState`: the committed strategy
membership, the in-flight iteration's ready reports, and any transition
left dangling between prepare and commit (which the new coordinator must
roll back — see :mod:`repro.recovery.transitions`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryError

#: Journal record kinds the control plane emits.
RECORD_KINDS = (
    "election",
    "membership",
    "ready-report",
    "decision",
    "strategy-prepare",
    "prepare-ack",
    "strategy-commit",
    "strategy-rollback",
    "partition",
    "heal",
)


@dataclass(frozen=True)
class LogRecord:
    """One journaled control-plane step.

    ``index`` is the log-wide total order (0-based, gapless); ``epoch`` and
    ``coordinator`` identify who acted; ``payload`` is a tuple of sorted
    ``(key, value)`` pairs so equality and hashing are deterministic.
    """

    index: int
    epoch: int
    coordinator: int
    kind: str
    time: float
    payload: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise RecoveryError(f"unknown journal record kind {self.kind!r}")
        if self.index < 0 or self.epoch < 1:
            raise RecoveryError("journal indices are >= 0 and epochs >= 1")

    def get(self, key: str, default: object = None) -> object:
        """The payload value stored under ``key`` (or ``default``)."""
        for k, v in self.payload:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class Checkpoint:
    """Durable coordinator state as of one journal index (inclusive)."""

    index: int
    epoch: int
    coordinator: int
    iteration: int
    members: Tuple[int, ...]
    committed_members: Optional[Tuple[int, ...]]


@dataclass
class ReplayState:
    """What a newly elected coordinator reconstructs from the journal."""

    iteration: int = -1
    members: Tuple[int, ...] = ()
    committed_members: Optional[Tuple[int, ...]] = None
    #: rank -> delay of the in-flight iteration's last journaled ready map.
    ready_reports: Dict[int, Optional[float]] = field(default_factory=dict)
    #: Transition id left prepared but never committed or rolled back.
    dangling_prepare: Optional[int] = None
    #: Members proposed by the dangling prepare (for the rollback record).
    dangling_members: Optional[Tuple[int, ...]] = None
    #: How many suffix records the replay consumed.
    replayed_records: int = 0
    #: Whether a checkpoint anchored the replay (vs. a full-log scan).
    from_checkpoint: bool = False


def _freeze(payload: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(payload.items()))


class EventLog:
    """Append-only journal with periodic checkpoints and suffix replay."""

    def __init__(self, checkpoint_interval: int = 16):
        if checkpoint_interval < 1:
            raise RecoveryError("checkpoint interval must be >= 1")
        self.checkpoint_interval = checkpoint_interval
        self.records: List[LogRecord] = []
        self.checkpoints: List[Checkpoint] = []

    def __len__(self) -> int:
        return len(self.records)

    # -- writing ---------------------------------------------------------------

    def append(
        self,
        epoch: int,
        coordinator: int,
        kind: str,
        time: float,
        **payload: object,
    ) -> LogRecord:
        """Journal one record; the index is assigned by the log."""
        record = LogRecord(
            index=len(self.records),
            epoch=epoch,
            coordinator=coordinator,
            kind=kind,
            time=time,
            payload=_freeze(payload),
        )
        if self.records and record.epoch < self.records[-1].epoch:
            raise RecoveryError(
                f"journal epoch regressed: {record.epoch} after {self.records[-1].epoch}"
            )
        self.records.append(record)
        return record

    def checkpoint(
        self,
        epoch: int,
        coordinator: int,
        iteration: int,
        members: Tuple[int, ...],
        committed_members: Optional[Tuple[int, ...]],
    ) -> Optional[Checkpoint]:
        """Fold state into a checkpoint if the interval has elapsed."""
        since = len(self.records) - (
            self.checkpoints[-1].index + 1 if self.checkpoints else 0
        )
        if since < self.checkpoint_interval or not self.records:
            return None
        snapshot = Checkpoint(
            index=len(self.records) - 1,
            epoch=epoch,
            coordinator=coordinator,
            iteration=iteration,
            members=tuple(members),
            committed_members=(
                None if committed_members is None else tuple(committed_members)
            ),
        )
        self.checkpoints.append(snapshot)
        return snapshot

    # -- recovery --------------------------------------------------------------

    def replay(self) -> ReplayState:
        """Rebuild coordinator state: latest checkpoint + journal suffix."""
        state = ReplayState()
        start = 0
        if self.checkpoints:
            anchor = self.checkpoints[-1]
            state.iteration = anchor.iteration
            state.members = anchor.members
            state.committed_members = anchor.committed_members
            state.from_checkpoint = True
            start = anchor.index + 1
        suffix = self.records[start:]
        for record in suffix:
            if record.kind == "membership":
                state.members = tuple(record.get("members", ()))  # type: ignore[arg-type]
                fallback = state.iteration
                state.iteration = int(record.get("iteration", fallback))  # type: ignore[arg-type]
            elif record.kind == "ready-report":
                iteration = int(record.get("iteration", -1))  # type: ignore[arg-type]
                if iteration != state.iteration:
                    state.iteration = iteration
                state.ready_reports = dict(record.get("ready", ()))  # type: ignore[arg-type]
            elif record.kind == "strategy-prepare":
                transition = record.get("transition", -1)
                state.dangling_prepare = int(transition)  # type: ignore[arg-type]
                state.dangling_members = tuple(record.get("members", ()))  # type: ignore[arg-type]
            elif record.kind in ("strategy-commit", "strategy-rollback"):
                if record.kind == "strategy-commit":
                    members = record.get("members", ())
                    state.committed_members = tuple(members)  # type: ignore[arg-type]
                state.dangling_prepare = None
                state.dangling_members = None
        state.replayed_records = len(suffix)
        return state

    # -- determinism -----------------------------------------------------------

    def signature(self) -> Tuple:
        """A stable value equal across same-seed replays of one run."""
        return tuple(
            (r.index, r.epoch, r.coordinator, r.kind, r.time, r.payload)
            for r in self.records
        )
