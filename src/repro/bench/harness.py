"""Benchmark environments and measurement helpers.

A :class:`BenchEnvironment` bundles a fresh simulator + cluster + topology
+ backend for one measurement — benchmarks must not share simulators
across backends, or one system's clock advances would pollute another's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.common import Backend, make_backend
from repro.bench.report import write_bench_payload
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.simulation.engine import Simulator
from repro.synthesis.strategy import Primitive
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology
from repro.training.models import ModelSpec
from repro.training.trainer import Trainer, TrainerConfig, TrainingReport


@dataclass
class BenchEnvironment:
    """One (cluster, backend) measurement context."""

    specs: Sequence[InstanceSpec]
    backend_name: str
    backend_kwargs: Optional[dict] = None

    def __post_init__(self) -> None:
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, list(self.specs))
        self.topology = LogicalTopology.from_cluster(self.cluster)
        self.backend: Backend = make_backend(
            self.backend_name, self.topology, **(self.backend_kwargs or {})
        )

    @property
    def ranks(self) -> List[int]:
        """All global ranks of the environment's cluster."""
        return [gpu.rank for gpu in self.cluster.gpus]

    def snapshot(self) -> Dict:
        """Observability snapshot of this environment after a measurement.

        Collects the bench-payload facts the ISSUE's perf trajectory
        tracks: per-link traffic with the busiest link called out, the
        fluid network's completed-transfer count, and — when the process
        hub is enabled — the full telemetry metrics snapshot (which is
        where relay-phase and chunk counters live).
        """
        links = [
            {"name": link.name, "bytes_carried": link.bytes_carried}
            for link in self.cluster.all_links()
            if link.bytes_carried > 0
        ]
        busiest = max(links, key=lambda row: row["bytes_carried"], default=None)
        snapshot: Dict = {
            "world": len(self.ranks),
            "instances": len(self.cluster.instances),
            "backend": self.backend_name,
            "sim_seconds": self.sim.now,
            "completed_transfers": self.cluster.network.completed_transfers,
            "busiest_link": busiest,
            "links": links,
        }
        telemetry = telemetry_hub()
        if telemetry.enabled:
            snapshot["metrics"] = telemetry.metrics.snapshot()
        return snapshot


def measure_algorithm_bandwidth(
    specs: Sequence[InstanceSpec],
    backend_name: str,
    primitive: Primitive,
    tensor_bytes: float,
    payload_elements: int = 8192,
    backend_kwargs: Optional[dict] = None,
    repeats: int = 1,
    max_chunks: Optional[int] = None,
) -> float:
    """Algo.bw of one primitive on one backend (paper Sec. VI-C).

    Runs the collective with an input of ``tensor_bytes`` (scaled payload)
    and returns data size / completion time, in bytes/second. ``repeats``
    > 1 averages warm runs (the strategy is planned once). ``max_chunks``
    caps simulated chunks per sub-collective (used by AlltoAll benchmarks,
    where per-pair flows are single-hop and chunking is backend-neutral).
    """
    env = BenchEnvironment(specs, backend_name, backend_kwargs)
    ranks = env.ranks
    world = len(ranks)
    if primitive is Primitive.ALLTOALL and payload_elements % world:
        payload_elements += world - payload_elements % world
    inputs = {
        rank: np.full(payload_elements, float(rank + 1)) for rank in ranks
    }
    byte_scale = tensor_bytes / (payload_elements * 8.0)
    strategy = env.backend.plan(primitive, tensor_bytes, ranks)
    durations = []
    for _ in range(repeats):
        result = env.backend.run(
            strategy, inputs, byte_scale=byte_scale, max_chunks=max_chunks
        )
        durations.append(result.duration)
    mean_duration = sum(durations) / len(durations)
    bandwidth = tensor_bytes / mean_duration
    write_bench_payload(
        f"{primitive.value}_{backend_name}_w{len(ranks)}i{len(env.specs)}",
        {
            "kind": "algorithm_bandwidth",
            "primitive": primitive.value,
            "tensor_bytes": tensor_bytes,
            "repeats": repeats,
            "duration_seconds": mean_duration,
            "algorithm_bps": bandwidth,
            **env.snapshot(),
        },
    )
    return bandwidth


def measure_training(
    specs: Sequence[InstanceSpec],
    backend_name: str,
    model: ModelSpec,
    config: Optional[TrainerConfig] = None,
    backend_kwargs: Optional[dict] = None,
    interference_factory=None,
    shaper_factory=None,
) -> TrainingReport:
    """End-to-end training measurement for one backend.

    ``interference_factory(cluster)`` builds an
    :class:`~repro.training.interference.InterferenceModel` bound to this
    environment's cluster; ``shaper_factory(cluster)`` builds (and starts)
    a :class:`~repro.network.shaping.TraceShaper` for volatile-network
    runs.
    """
    env = BenchEnvironment(specs, backend_name, backend_kwargs)
    interference = interference_factory(env.cluster) if interference_factory else None
    if shaper_factory is not None:
        shaper = shaper_factory(env.cluster)
        shaper.start()
    trainer = Trainer(env.backend, model, config, interference=interference)
    report = trainer.run()
    write_bench_payload(
        f"training_{model.name}_{backend_name}_w{len(env.ranks)}",
        {
            "kind": "training",
            "model": model.name,
            "iterations": report.iterations,
            "global_batch": report.global_batch,
            "mean_iteration_seconds": report.mean_iteration_seconds,
            "mean_comm_seconds": report.mean_comm_seconds,
            "reconstructions": report.reconstructions,
            **env.snapshot(),
        },
    )
    return report
