"""Workload traces for multi-job fleet replay.

A :class:`Workload` is a set of concurrent jobs, each a rank subset of
one shared cluster plus a schedule of collective operations (kind,
earliest-start time, payload bytes). Two sources:

* :func:`generate_workload` — a seeded generator shaped like production
  traces from the profiling literature: training jobs issue collectives
  in *bursts* (geometric burst lengths, exponential inter-burst gaps)
  with heavy-tailed (clipped-lognormal) payload sizes and an
  AllReduce-dominated primitive mix with an AlltoAll minority (MoE-style
  expert exchange);
* :func:`load_workload` / :func:`read_workload` — profile-shaped JSON
  traces captured elsewhere.

:func:`canonical_overlap_workload` is the pinned two-job interference
scenario the ``--fleet`` analysis pass and ``tests/test_fleet.py`` score
attribution against: a steady victim job sharing the inter-server fabric
with an aggressor that sits idle, then bursts. Its
:attr:`Workload.ground_truth` carries the (victim, aggressor, window)
triples the generator *knows* because it placed the burst.

Everything draws from one ``numpy`` generator seeded explicitly, so the
same seed always yields byte-identical traces (and, downstream,
byte-identical fleet replays).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FleetError

#: Collective kinds a trace may schedule.
ALLREDUCE = "allreduce"
ALLTOALL = "alltoall"
KINDS = (ALLREDUCE, ALLTOALL)


@dataclass(frozen=True)
class CollectiveOp:
    """One scheduled collective: kind, earliest launch, payload bytes."""

    kind: str
    start: float
    size_bytes: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FleetError(f"unknown collective kind {self.kind!r}")
        if self.start < 0:
            raise FleetError("op start time must be non-negative")
        if self.size_bytes <= 0:
            raise FleetError("op payload must be positive")


@dataclass(frozen=True)
class JobTrace:
    """One job: a name, its rank subset, and its op schedule."""

    name: str
    ranks: Tuple[int, ...]
    ops: Tuple[CollectiveOp, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("job name must be non-empty")
        if len(self.ranks) < 2:
            raise FleetError(f"job {self.name!r} needs at least two ranks")
        if len(set(self.ranks)) != len(self.ranks):
            raise FleetError(f"job {self.name!r} repeats ranks")
        starts = [op.start for op in self.ops]
        if starts != sorted(starts):
            raise FleetError(f"job {self.name!r} ops are not sorted by start time")


@dataclass(frozen=True)
class InterferenceWindow:
    """Ground truth: ``aggressor`` disturbed ``victim`` during a window."""

    victim: str
    aggressor: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise FleetError("interference window must have positive length")
        if self.victim == self.aggressor:
            raise FleetError("a job cannot interfere with itself")


@dataclass(frozen=True)
class Workload:
    """Concurrent job traces sharing one cluster, plus known ground truth."""

    jobs: Tuple[JobTrace, ...]
    seed: int = 0
    ground_truth: Tuple[InterferenceWindow, ...] = ()

    def __post_init__(self) -> None:
        if not self.jobs:
            raise FleetError("a workload needs at least one job")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate job names: {sorted(names)}")
        claimed: Dict[int, str] = {}
        for job in self.jobs:
            for rank in job.ranks:
                if rank in claimed:
                    raise FleetError(
                        f"rank {rank} claimed by both {claimed[rank]!r} "
                        f"and {job.name!r}"
                    )
                claimed[rank] = job.name
        for window in self.ground_truth:
            for role in (window.victim, window.aggressor):
                if role not in names:
                    raise FleetError(f"ground truth names unknown job {role!r}")

    @property
    def job_names(self) -> List[str]:
        """Job names in replay (lexicographic) order."""
        return sorted(job.name for job in self.jobs)

    def job(self, name: str) -> JobTrace:
        """The trace of one job by name."""
        for trace in self.jobs:
            if trace.name == name:
                return trace
        raise FleetError(f"no job named {name!r}")


# -- the seeded generator --------------------------------------------------------------


@dataclass
class WorkloadSpec:
    """Tunables of :func:`generate_workload` (defaults follow the bursty,
    heavy-tailed shape production profiling traces report)."""

    #: Trace horizon: no op *starts* after this (seconds, sim clock).
    duration: float = 40.0
    #: Mean ops per burst (geometric) and mean gap between bursts
    #: (exponential), both per job.
    burst_mean_ops: float = 4.0
    gap_mean_seconds: float = 6.0
    #: Spacing between ops inside a burst (back-to-back pressure).
    intra_burst_seconds: float = 0.5
    #: Lognormal payload-size parameters, clipped to [min, max] bytes.
    size_median_bytes: float = 400e6
    size_sigma: float = 0.5
    size_min_bytes: float = 100e6
    size_max_bytes: float = 1.6e9
    #: Fraction of ops that are AllToAll (MoE-style); the rest AllReduce.
    alltoall_fraction: float = 0.2


def generate_workload(
    rank_sets: Sequence[Sequence[int]],
    seed: int = 0,
    spec: Optional[WorkloadSpec] = None,
) -> Workload:
    """A seeded bursty workload over the given per-job rank subsets.

    Jobs are named ``job0``, ``job1``, … in ``rank_sets`` order. All
    randomness comes from one ``default_rng(seed)``, consumed job by job
    in order, so the trace is a pure function of ``(rank_sets, seed,
    spec)``. No ground truth is attached — overlap in a generated trace
    is emergent, not planted.
    """
    spec = spec or WorkloadSpec()
    if spec.duration <= 0:
        raise FleetError("workload duration must be positive")
    rng = np.random.default_rng(seed)
    jobs = []
    for index, ranks in enumerate(rank_sets):
        ops: List[CollectiveOp] = []
        # Stagger job starts so bursts are not phase-locked at t=0.
        now = float(rng.exponential(spec.gap_mean_seconds / 2))
        while now < spec.duration:
            burst = int(rng.geometric(1.0 / max(spec.burst_mean_ops, 1.0)))
            for _ in range(burst):
                if now >= spec.duration:
                    break
                size = float(
                    np.clip(
                        spec.size_median_bytes
                        * np.exp(spec.size_sigma * rng.standard_normal()),
                        spec.size_min_bytes,
                        spec.size_max_bytes,
                    )
                )
                kind = (
                    ALLTOALL
                    if rng.random() < spec.alltoall_fraction
                    else ALLREDUCE
                )
                ops.append(CollectiveOp(kind=kind, start=round(now, 6), size_bytes=size))
                now += spec.intra_burst_seconds
            now += float(rng.exponential(spec.gap_mean_seconds))
        if not ops:
            # A degenerate draw (gap beyond the horizon) still yields a
            # schedulable job: one median-size AllReduce at t=0.
            ops.append(
                CollectiveOp(kind=ALLREDUCE, start=0.0, size_bytes=spec.size_median_bytes)
            )
        jobs.append(JobTrace(name=f"job{index}", ranks=tuple(ranks), ops=tuple(ops)))
    return Workload(jobs=tuple(jobs), seed=seed)


# -- pinned interference scenarios -----------------------------------------------------

#: Payload of the canonical scenario's steady (victim) AllReduce ops. With
#: the runner's default ``length=512`` float64 tensors this byte-scales to
#: the same simulated traffic the observe/critpath passes calibrate
#: against (length * 8 * 200_000).
CANONICAL_OP_BYTES = 512 * 8 * 200_000.0


def canonical_overlap_workload(
    seed: int = 11,
    victim_iterations: int = 20,
    period: float = 0.12,
    burst_start_iteration: int = 6,
    burst_ops: int = 8,
) -> Workload:
    """The pinned two-job interference scenario (cluster: 2×4 A100).

    Job ``alpha`` (ranks 0,1,4,5 — spanning both servers) runs a steady
    periodic AllReduce. Job ``beta`` (ranks 2,3,6,7 — spanning the same
    two servers, hence the same NIC↔NIC fabric) idles through alpha's
    warm-up, then fires a dense burst of equal-size AllReduces. Every
    op's traffic crosses the n0↔n1 links, so the burst visibly inflates
    alpha's iteration times — the watchdog's interference verdicts on
    alpha must attribute to beta, which is exactly the
    :attr:`Workload.ground_truth` recorded here.

    Calibration (pinned by ``tests/test_fleet.py`` and the ``--fleet``
    pass): a clean :data:`CANONICAL_OP_BYTES` AllReduce on this cluster
    takes ≈0.106 s, so ``period=0.12`` keeps the victim near-back-to-back
    and a burst of 8 aggressor ops (≈0.21 s each under fair sharing,
    launched serially) contends with roughly a dozen victim iterations —
    enough for the iteration-time CUSUM (threshold 1, drift 0.25) *and*
    at least one link signal to accumulate past threshold while the burst
    is still the ground-truth-active episode.

    ``seed`` only stamps the workload (the schedule itself is fixed); it
    flows into the replay so chunk-level noise seeds stay tied to it.
    """
    if burst_start_iteration < 5:
        raise FleetError(
            "the victim needs its detector warm-up (>= 5 clean iterations) "
            "before the burst"
        )
    if victim_iterations <= burst_start_iteration:
        raise FleetError("the burst must land inside the victim's schedule")
    victim_ops = tuple(
        CollectiveOp(kind=ALLREDUCE, start=i * period, size_bytes=CANONICAL_OP_BYTES)
        for i in range(victim_iterations)
    )
    burst_start = burst_start_iteration * period
    aggressor_ops = tuple(
        CollectiveOp(
            kind=ALLREDUCE,
            start=burst_start + j * 0.01,
            size_bytes=CANONICAL_OP_BYTES,
        )
        for j in range(burst_ops)
    )
    return Workload(
        jobs=(
            JobTrace(name="alpha", ranks=(0, 1, 4, 5), ops=victim_ops),
            JobTrace(name="beta", ranks=(2, 3, 6, 7), ops=aggressor_ops),
        ),
        seed=seed,
        ground_truth=(
            InterferenceWindow(
                victim="alpha",
                aggressor="beta",
                start=burst_start,
                end=burst_start + burst_ops * 0.01,
            ),
        ),
    )


def three_job_workload(seed: int = 11) -> Workload:
    """Three generated jobs on a 3×4 A100 cluster, pairwise sharing NICs.

    Rank subsets straddle server pairs (s0+s1, s0+s2, s1+s2) so every
    job contends with both others somewhere on the fabric. Used by the
    determinism tests and the bench fleet cell; no planted ground truth.
    """
    return generate_workload(
        rank_sets=[(0, 1, 4, 5), (2, 3, 8, 9), (6, 7, 10, 11)],
        seed=seed,
    )


# -- profile-shaped JSON traces --------------------------------------------------------


def load_workload(payload: Dict) -> Workload:
    """Build a :class:`Workload` from profile-shaped JSON.

    Expected shape (ground truth optional)::

        {"seed": 11,
         "jobs": [{"name": "alpha", "ranks": [0, 1],
                   "ops": [{"kind": "allreduce", "start": 0.0,
                            "size_bytes": 4.0e8}, ...]}, ...],
         "ground_truth": [{"victim": "alpha", "aggressor": "beta",
                           "start": 10.0, "end": 14.0}, ...]}
    """
    if not isinstance(payload, dict):
        raise FleetError(f"workload JSON must be an object, got {type(payload).__name__}")
    try:
        jobs = tuple(
            JobTrace(
                name=str(job["name"]),
                ranks=tuple(int(rank) for rank in job["ranks"]),
                ops=tuple(
                    CollectiveOp(
                        kind=str(op["kind"]),
                        start=float(op["start"]),
                        size_bytes=float(op["size_bytes"]),
                    )
                    for op in job["ops"]
                ),
            )
            for job in payload["jobs"]
        )
        truth = tuple(
            InterferenceWindow(
                victim=str(window["victim"]),
                aggressor=str(window["aggressor"]),
                start=float(window["start"]),
                end=float(window["end"]),
            )
            for window in payload.get("ground_truth", ())
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FleetError(f"malformed workload JSON: {exc!r}") from exc
    return Workload(jobs=jobs, seed=int(payload.get("seed", 0)), ground_truth=truth)


def read_workload(path: str) -> Workload:
    """Load a workload from a JSON trace file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise FleetError(f"unreadable workload trace {path!r}: {exc}") from exc
    return load_workload(payload)


def dump_workload(workload: Workload) -> Dict:
    """The JSON-ready dict form of a workload (inverse of ``load_workload``)."""
    return {
        "seed": workload.seed,
        "jobs": [
            {
                "name": job.name,
                "ranks": list(job.ranks),
                "ops": [
                    {"kind": op.kind, "start": op.start, "size_bytes": op.size_bytes}
                    for op in job.ops
                ],
            }
            for job in workload.jobs
        ],
        "ground_truth": [
            {
                "victim": window.victim,
                "aggressor": window.aggressor,
                "start": window.start,
                "end": window.end,
            }
            for window in workload.ground_truth
        ],
    }
