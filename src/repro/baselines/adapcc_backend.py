"""AdapCC as a backend: the synthesizer + profiler behind the common
benchmark interface.

``refresh()`` re-profiles the topology and drops cached strategies — the
adaptivity loop the static baselines lack. Strategies are cached per
(primitive, size, participants, root) between refreshes, matching the real
system where synthesis runs at profiling periods, not per iteration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.baselines.common import Backend, register_backend
from repro.profiling.profiler import Profiler
from repro.synthesis.optimizer import Synthesizer, SynthesizerConfig
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology


@register_backend
class AdapCCBackend(Backend):
    """The paper's system: profiled synthesis with strategy caching."""

    name = "adapcc"

    def __init__(
        self,
        topology: LogicalTopology,
        config: Optional[SynthesizerConfig] = None,
        profile_on_init: bool = True,
    ):
        super().__init__(topology)
        self.synthesizer = Synthesizer(topology, config)
        self.profiler = Profiler(topology)
        self._cache: Dict[Tuple, Strategy] = {}
        if profile_on_init:
            self.profiler.profile()

    def _plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        key = (primitive, float(tensor_size), tuple(sorted(set(participants))), root)
        if key not in self._cache:
            self._cache[key] = self.synthesizer.synthesize(
                primitive, tensor_size, list(key[2]), root=root
            )
        return self._cache[key]

    def refresh(self) -> None:
        """Re-profile links and invalidate cached strategies (Sec. IV-B)."""
        self.profiler.profile()
        self._cache.clear()
