"""Ablations of AdapCC's design decisions (DESIGN.md §4).

Not paper figures, but the design choices the paper argues for — each
ablated against the full system:

* **aggregation control** — disabling intermediate aggregation forwards
  raw flows and multiplies downstream link load (eq. 3's Reduce rule);
* **chunk-size sensitivity** — a fixed oversized chunk loses pipelining,
  a fixed undersized one pays per-chunk latency;
* **profiling staleness** — a strategy synthesized from stale estimates
  under-performs one from fresh measurements after the network changed
  (the core adaptivity claim, isolated from the trainer);
* **routing family restriction** — the full candidate portfolio at least
  matches any single family.
"""

import numpy as np
import pytest

from repro.bench import Table
from repro.bench.harness import BenchEnvironment
from repro.hardware import MB, make_hetero_cluster, make_homo_cluster
from repro.runtime import run_allreduce, run_reduce
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.synthesis.routing import TREE_FAMILIES

TENSOR = 64 * MB
PAYLOAD = 8192


def run_strategy(env, strategy):
    inputs = {r: np.ones(PAYLOAD) for r in env.ranks}
    scale = TENSOR / (PAYLOAD * 8)
    if strategy.primitive is Primitive.ALLREDUCE:
        return run_allreduce(env.topology, strategy, inputs, byte_scale=scale).duration
    return run_reduce(env.topology, strategy, inputs, byte_scale=scale).duration


def test_ablation_aggregation_control(run_once):
    """Turning intermediate aggregation off must slow Reduce down."""

    def measure():
        env = BenchEnvironment(make_hetero_cluster(), "adapcc")
        strategy = env.backend.plan(Primitive.REDUCE, TENSOR, env.ranks)
        with_agg = run_strategy(env, strategy)

        env2 = BenchEnvironment(make_hetero_cluster(), "adapcc")
        strategy2 = env2.backend.plan(Primitive.REDUCE, TENSOR, env2.ranks)
        for sc in strategy2.subcollectives:
            for node in list(sc.aggregation):
                if node != sc.root:
                    sc.aggregation[node] = False
        without_agg = run_strategy(env2, strategy2)
        return with_agg, without_agg

    with_agg, without_agg = run_once(measure)
    print(
        f"\nAblation: aggregation control — with {with_agg * 1e3:.2f} ms, "
        f"raw forwarding {without_agg * 1e3:.2f} ms "
        f"({without_agg / with_agg:.2f}x slower)"
    )
    assert without_agg > 1.2 * with_agg


def test_ablation_chunk_size(run_once):
    """The synthesizer's swept chunk beats fixed extreme choices."""

    def measure():
        results = {}
        for label, chunks in [
            ("synthesized", None),
            ("fixed 64KB", (64_000.0,)),
            ("fixed whole-partition", (TENSOR,)),
        ]:
            env = BenchEnvironment(
                make_homo_cluster(num_servers=4),
                "adapcc",
                backend_kwargs={
                    "config": SynthesizerConfig(chunk_sizes=chunks) if chunks else None
                },
            )
            strategy = env.backend.plan(Primitive.ALLREDUCE, TENSOR, env.ranks)
            results[label] = run_strategy(env, strategy)
        return results

    results = run_once(measure)
    table = Table("Ablation: chunk size (AllReduce 64 MB)", ["time (ms)"])
    for label, duration in results.items():
        table.add_row(label, [duration * 1e3])
    table.show()
    assert results["synthesized"] <= 1.05 * min(results.values())
    assert results["fixed whole-partition"] > results["synthesized"]


def test_ablation_profiling_staleness(run_once):
    """A strategy from stale estimates loses to a freshly-profiled one
    after a link degrades — adaptivity isolated from the trainer."""

    def measure():
        def degraded_env():
            env = BenchEnvironment(make_homo_cluster(num_servers=4), "adapcc")
            env.cluster.set_nic_bandwidth(2, 2.5e9)  # 100 -> 20 Gbps
            return env

        # Stale: strategy synthesized from the pre-degradation profile.
        env = degraded_env()
        stale_strategy = env.backend.plan(Primitive.ALLREDUCE, TENSOR, env.ranks)
        stale = run_strategy(env, stale_strategy)

        # Fresh: re-profile after degradation, then synthesize.
        env2 = degraded_env()
        env2.backend.refresh()
        fresh_strategy = env2.backend.plan(Primitive.ALLREDUCE, TENSOR, env2.ranks)
        fresh = run_strategy(env2, fresh_strategy)
        return stale, fresh

    stale, fresh = run_once(measure)
    print(
        f"\nAblation: profiling staleness — stale {stale * 1e3:.2f} ms, "
        f"fresh {fresh * 1e3:.2f} ms ({stale / fresh:.2f}x)"
    )
    assert fresh < stale


def test_ablation_routing_portfolio(run_once):
    """The full family portfolio at least matches every single family."""

    def measure():
        results = {}
        for family in sorted(TREE_FAMILIES):
            env = BenchEnvironment(
                make_hetero_cluster(),
                "adapcc",
                backend_kwargs={"config": SynthesizerConfig(families=(family,))},
            )
            strategy = env.backend.plan(Primitive.ALLREDUCE, TENSOR, env.ranks)
            results[family] = run_strategy(env, strategy)
        env = BenchEnvironment(make_hetero_cluster(), "adapcc")
        strategy = env.backend.plan(Primitive.ALLREDUCE, TENSOR, env.ranks)
        results["full portfolio"] = run_strategy(env, strategy)
        return results

    results = run_once(measure)
    table = Table("Ablation: routing families (hetero AllReduce 64 MB)", ["time (ms)"])
    for family, duration in sorted(results.items(), key=lambda kv: kv[1]):
        table.add_row(family, [duration * 1e3])
    table.show()
    best_single = min(v for k, v in results.items() if k != "full portfolio")
    assert results["full portfolio"] <= 1.10 * best_single
