"""Tests for the bench harness, report formatting, reconstruction model,
and the simulation trace recorder."""

import numpy as np
import pytest

from repro.bench import (
    BenchEnvironment,
    Series,
    Table,
    geometric_mean,
    measure_algorithm_bandwidth,
)
from repro.errors import ReproError
from repro.hardware import MB, make_homo_cluster
from repro.runtime.reconstruction import (
    ELASTIC_DETECT_SECONDS,
    adapcc_reconstruction_cost,
    nccl_restart_cost,
)
from repro.simulation.records import TraceRecorder
from repro.synthesis import Primitive


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestTable:
    def test_render_contains_rows_and_columns(self):
        table = Table("Title", ["a", "b"])
        table.add_row("row1", [1.5, 2.0])
        text = table.render()
        assert "Title" in text
        assert "row1" in text
        assert "1.500" in text
        assert "a" in text and "b" in text

    def test_mixed_types(self):
        table = Table("T", ["x"])
        table.add_row("r", ["str-value"])
        assert "str-value" in table.render()


class TestSeries:
    def test_render(self):
        series = Series("S", "x", "y")
        series.set_x([1, 2, 3])
        series.add("line", [0.1, 0.2, 0.3])
        text = series.render()
        assert "S" in text
        assert "line (y):" in text
        assert "0.1" in text


class TestBenchHarness:
    def test_environment_isolated_per_instantiation(self):
        env1 = BenchEnvironment(make_homo_cluster(num_servers=2), "nccl")
        env2 = BenchEnvironment(make_homo_cluster(num_servers=2), "nccl")
        assert env1.sim is not env2.sim
        assert env1.ranks == env2.ranks == list(range(8))

    def test_measure_algorithm_bandwidth_positive(self):
        bandwidth = measure_algorithm_bandwidth(
            make_homo_cluster(num_servers=2), "nccl", Primitive.ALLREDUCE, 8 * MB
        )
        assert bandwidth > 1e8  # > 100 MB/s

    def test_alltoall_payload_divisibility_handled(self):
        bandwidth = measure_algorithm_bandwidth(
            make_homo_cluster(num_servers=2),
            "nccl",
            Primitive.ALLTOALL,
            8 * MB,
            payload_elements=8190,  # not divisible by 8; harness pads
        )
        assert bandwidth > 0


class TestReconstructionModel:
    def test_adapcc_cost_sums_components(self):
        cost = adapcc_reconstruction_cost(0.1, 0.2, 0.3)
        assert cost.total == pytest.approx(0.6)
        assert cost.checkpoint_seconds == 0.0

    def test_adapcc_rejects_negative(self):
        with pytest.raises(ReproError):
            adapcc_reconstruction_cost(-0.1, 0.0, 0.0)

    def test_nccl_restart_scales_with_model_and_world(self):
        small = nccl_restart_cost(8, 100e6)
        big_model = nccl_restart_cost(8, 1000e6)
        big_world = nccl_restart_cost(64, 100e6)
        assert big_model.total > small.total
        assert big_world.total > small.total

    def test_fault_detection_adds_elastic_window(self):
        plain = nccl_restart_cost(8, 100e6)
        with_detect = nccl_restart_cost(8, 100e6, include_fault_detection=True)
        assert with_detect.total == pytest.approx(plain.total + ELASTIC_DETECT_SECONDS)

    def test_nccl_validation(self):
        with pytest.raises(ReproError):
            nccl_restart_cost(0, 100e6)
        with pytest.raises(ReproError):
            nccl_restart_cost(8, 0)

    def test_paper_savings_band(self):
        """AdapCC's reconstruction should save >70 % vs a restart for
        realistic component costs (paper: 74-91 %)."""
        adapcc = adapcc_reconstruction_cost(0.8, 0.5, 0.05)
        nccl = nccl_restart_cost(24, 528e6)
        assert 1.0 - adapcc.total / nccl.total > 0.7


class TestTraceRecorder:
    def test_record_and_filter(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "event", "a", value=1)
        recorder.record(1.0, "other", "b", value=2)
        recorder.record(2.0, "event", "a", value=3)
        assert len(recorder) == 3
        events = recorder.of_kind("event")
        assert [r.payload["value"] for r in events] == [1, 3]

    def test_series_extraction(self):
        recorder = TraceRecorder()
        for t in range(5):
            recorder.record(float(t), "sample", "s", level=t * 10)
        times, values = recorder.series("sample", "level")
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert values == [0, 10, 20, 30, 40]

    def test_iteration(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "k", "s")
        assert [r.kind for r in recorder] == ["k"]


class TestRepeatsAveraging:
    """`measure_algorithm_bandwidth(repeats>1)` averages warm runs."""

    class _StubResult:
        def __init__(self, duration):
            self.duration = duration

    class _StubBackend:
        def __init__(self, durations):
            self._durations = list(durations)
            self.plan_calls = 0
            self.run_calls = 0

        def plan(self, primitive, tensor_bytes, ranks):
            self.plan_calls += 1
            return "strategy"

        def run(self, strategy, inputs, byte_scale=None, max_chunks=None):
            self.run_calls += 1
            return TestRepeatsAveraging._StubResult(self._durations.pop(0))

    def _patch_environment(self, monkeypatch, backend):
        import repro.bench.harness as harness

        class _StubEnv:
            def __init__(self, specs, backend_name, backend_kwargs=None):
                self.specs = list(specs)
                self.backend_name = backend_name
                self.backend = backend
                self.ranks = [0, 1]

            def snapshot(self):
                return {"backend": self.backend_name}

        monkeypatch.setattr(harness, "BenchEnvironment", _StubEnv)

    def test_mean_of_warm_runs(self, monkeypatch):
        backend = self._StubBackend([1.0, 3.0])
        self._patch_environment(monkeypatch, backend)
        bandwidth = measure_algorithm_bandwidth(
            [object(), object()], "stub", Primitive.ALLREDUCE, 100.0, repeats=2
        )
        # Durations 1s and 3s average to 2s: 100 bytes / 2 s = 50 B/s.
        assert bandwidth == pytest.approx(50.0)
        assert backend.plan_calls == 1  # planned once, run repeatedly
        assert backend.run_calls == 2

    def test_single_repeat_unaveraged(self, monkeypatch):
        backend = self._StubBackend([4.0])
        self._patch_environment(monkeypatch, backend)
        bandwidth = measure_algorithm_bandwidth(
            [object()], "stub", Primitive.ALLREDUCE, 100.0, repeats=1
        )
        assert bandwidth == pytest.approx(25.0)
        assert backend.run_calls == 1


class TestComparePayloads:
    """Edge cases of the --check regression comparison."""

    @staticmethod
    def _payload(cells, figure="fig11"):
        return {"figures": {figure: {"cells": dict(cells)}}}

    def test_missing_figure_is_a_regression(self):
        from repro.bench.grid import compare_payloads

        problems = compare_payloads(
            {"figures": {}}, self._payload({"a|nccl": 1e9})
        )
        assert problems == ["fig11: missing from the current run"]

    def test_missing_cell_is_a_regression(self):
        from repro.bench.grid import compare_payloads

        problems = compare_payloads(
            self._payload({}), self._payload({"a|nccl": 1e9})
        )
        assert len(problems) == 1
        assert "cell missing" in problems[0]

    def test_cell_exactly_at_tolerance_boundary_passes(self):
        from repro.bench.grid import compare_payloads

        reference = 1e9
        boundary = reference * (1.0 - 0.10)  # exactly the tolerated loss
        problems = compare_payloads(
            self._payload({"a|nccl": boundary}),
            self._payload({"a|nccl": reference}),
            tolerance=0.10,
        )
        assert problems == []  # strict <, so the boundary itself is fine

    def test_cell_just_under_boundary_fails(self):
        from repro.bench.grid import compare_payloads

        reference = 1e9
        problems = compare_payloads(
            self._payload({"a|nccl": reference * 0.89}),
            self._payload({"a|nccl": reference}),
            tolerance=0.10,
        )
        assert len(problems) == 1
        assert "below the" in problems[0]

    def test_new_cell_in_current_run_is_accepted(self):
        from repro.bench.grid import compare_payloads

        problems = compare_payloads(
            self._payload({"a|nccl": 1e9, "b|nccl": 1e9}),
            self._payload({"a|nccl": 1e9}),
        )
        assert problems == []


class TestQuickClobberGuard:
    """--quick must never silently clobber or check the full baseline."""

    @staticmethod
    def _full_baseline(path):
        import json

        path.write_text(
            json.dumps(
                {
                    "kind": "fig11_13_aggregate",
                    "quick": False,
                    "figures": {"fig11": {"cells": {}}},
                },
                indent=2,
            )
        )

    def test_quick_write_refuses_full_baseline(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main as bench_main

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        baseline = tmp_path / "BENCH_fig11_13.json"
        self._full_baseline(baseline)
        before = baseline.read_bytes()
        rc = bench_main(
            ["--quick", "--figures", "fig11", "--output", str(baseline)]
        )
        assert rc == 1
        assert baseline.read_bytes() == before  # untouched

    def test_quick_check_refuses_full_baseline(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import main as bench_main

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        baseline = tmp_path / "BENCH_fig11_13.json"
        self._full_baseline(baseline)
        rc = bench_main(
            ["--quick", "--figures", "fig11", "--check", str(baseline)]
        )
        assert rc == 1

    def test_quick_default_output_is_the_quick_baseline(
        self, tmp_path, monkeypatch
    ):
        import json

        from repro.bench.__main__ import QUICK_BASELINE, main as bench_main

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        rc = bench_main(["--quick", "--figures", "fig11"])
        assert rc == 0
        written = json.loads((tmp_path / QUICK_BASELINE).read_text())
        assert written["quick"] is True
        assert not (tmp_path / "BENCH_fig11_13.json").exists()

    def test_quick_overwrite_of_quick_baseline_is_fine(
        self, tmp_path, monkeypatch
    ):
        from repro.bench.__main__ import main as bench_main

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        output = tmp_path / "quick.json"
        assert (
            bench_main(["--quick", "--figures", "fig11", "--output", str(output)])
            == 0
        )
        assert (
            bench_main(["--quick", "--figures", "fig11", "--output", str(output)])
            == 0
        )
