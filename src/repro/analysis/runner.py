"""Parallel, incrementally-cached execution of registered analysis passes.

The runner resolves a pass selection against the registry, consults the
content-addressed cache (each pass's declared inputs hashed together with
its name and version), runs the misses — thread-parallel for passes that
only touch their own simulator instances, sequential for ``serial``
passes that swap process-global state such as the telemetry hub — and
returns :class:`~repro.analysis.registry.PassResult` records in canonical
registry order, regardless of completion order. That ordering (plus
buffered per-pass progress notes) is what keeps reports byte-identical
across ``--jobs`` values.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.cache import AnalysisCache, fingerprint_paths, pass_fingerprint
from repro.analysis.registry import (
    PassContext,
    PassResult,
    PassSpec,
    get_pass,
    iter_passes,
)


def _package_root() -> Path:
    return Path(__file__).resolve().parents[1]


def resolve_selection(names: Optional[Sequence[str]]) -> List[PassSpec]:
    """The selected passes, in canonical registry order.

    ``None`` selects every registered pass. Unknown names raise
    ``KeyError`` (with the known names in the message).
    """
    if names is None:
        return iter_passes()
    chosen = {spec.name: spec for spec in (get_pass(name) for name in names)}
    return [spec for spec in iter_passes() if spec.name in chosen]


def run_passes(
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional[AnalysisCache] = None,
    root: Optional[Path] = None,
    targets: Optional[Dict[str, str]] = None,
) -> List[PassResult]:
    """Run the selected passes; return results in canonical order.

    ``cache=None`` disables incremental caching entirely. ``root``
    overrides the source tree for file-based passes (tests point it at
    fixture trees) and bypasses the cache, as does a per-pass ``target``
    file — both make the result depend on inputs the fingerprint does not
    cover.
    """
    specs = resolve_selection(names)
    targets = targets or {}
    package_root = _package_root()
    results: Dict[str, PassResult] = {}

    def execute(spec: PassSpec) -> PassResult:
        target = targets.get(spec.name)
        cacheable = cache is not None and root is None and target is None
        key = None
        if cacheable:
            key = pass_fingerprint(
                spec.name,
                spec.version,
                fingerprint_paths(package_root, spec.inputs),
            )
            hit = cache.load(key)
            if hit is not None:
                return PassResult(spec=spec, findings=hit, cached=True)
        notes: List[str] = []
        ctx = PassContext(root=root, target=target, echo=notes.append)
        started = time.perf_counter()
        try:
            findings = spec.run(ctx)
        except Exception:
            return PassResult(
                spec=spec,
                duration_seconds=time.perf_counter() - started,
                error=traceback.format_exc(),
                notes=notes,
            )
        result = PassResult(
            spec=spec,
            findings=list(findings),
            duration_seconds=time.perf_counter() - started,
            notes=notes,
        )
        if cacheable and key is not None:
            cache.store(key, spec.name, result.findings)
        return result

    concurrent = [spec for spec in specs if not spec.serial]
    serial = [spec for spec in specs if spec.serial]
    if jobs > 1 and len(concurrent) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for spec, result in zip(concurrent, pool.map(execute, concurrent)):
                results[spec.name] = result
    else:
        for spec in concurrent:
            results[spec.name] = execute(spec)
    for spec in serial:
        results[spec.name] = execute(spec)
    return [results[spec.name] for spec in specs]
